"""Choosing the setpoint: sweep it and find the knee (Section 6).

"To choose an appropriate setpoint, historic latency distribution
trends, SLA flexibility, and the relative importance of rapid migration
speed should all be considered."  This example sweeps setpoints on a
scaled-down tenant, prints the speed/latency tradeoff, estimates the
slack knee with the empirical estimator, and recommends the largest
setpoint that still satisfies a given SLA.

Run::

    python examples/setpoint_tuning.py
"""

from repro import EVALUATION, LatencySla
from repro.analysis import Table, format_ms, format_rate
from repro.experiments import MigrationSpec, run_single_tenant, scaled_config
from repro.migration import EmpiricalSlackEstimator
from repro.resources import MB


def main() -> None:
    sla = LatencySla(percentile=90, bound=3.0)
    config = scaled_config(EVALUATION, 0.5)
    setpoints = (0.5, 1.0, 1.5, 2.0, 2.5, 3.5, 5.0)

    table = Table(
        "Setpoint sweep (0.5 GB tenant, evaluation workload)",
        ["setpoint", "avg speed", "mean latency", "p90", "duration", "SLA ok"],
    )
    estimator = EmpiricalSlackEstimator()
    best = None
    for setpoint in setpoints:
        outcome = run_single_tenant(
            config, MigrationSpec.dynamic(setpoint), warmup=15
        )
        latencies = outcome.pooled_latencies()
        ok = sla.satisfied_by(latencies)
        estimator.add(outcome.average_migration_rate, outcome.mean_latency)
        table.add_row(
            format_ms(setpoint),
            format_rate(outcome.average_migration_rate),
            format_ms(outcome.mean_latency),
            format_ms(outcome.latency_percentile(90)),
            f"{outcome.duration:.0f} s",
            "yes" if ok else "NO",
        )
        if ok:
            best = (setpoint, outcome)

    print(table.render())

    knee = estimator.knee_rate()
    if knee is not None:
        print(f"\nestimated slack knee: ~{knee / MB:.1f} MB/s — pushing the "
              "setpoint past the knee only buys oscillation, not speed")
    if best is not None:
        setpoint, outcome = best
        print(f"recommended setpoint for SLA '{sla.describe()}': "
              f"{setpoint * 1000:.0f} ms "
              f"(migrates at {outcome.average_migration_rate / MB:.1f} MB/s)")
    else:
        print(f"no swept setpoint satisfies SLA '{sla.describe()}' — "
              "migrate during an off-peak window instead")


if __name__ == "__main__":
    main()
