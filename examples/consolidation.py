"""Consolidation: drain a lightly-loaded server to power it down.

The inverse of hotspot relief (Section 1.3: migration "can be used ...
to consolidate multiple tenants onto a relatively idle server, thereby
freeing extra servers that may be shut down").  Two tenants run on
separate servers at low load; both are migrated onto one server, the
other is left empty, and the collocated latencies are checked against
the SLA.

Run::

    python examples/consolidation.py
"""

from repro import EVALUATION, LatencySla, Slacker
from repro.analysis import summarize
from repro.resources import MB


def show_latency(slacker, tenant_id, start, end, label):
    values = slacker.latency_series(tenant_id).window_values(start, end)
    summary = summarize(values)
    print(f"  {label}: mean {summary.mean * 1000:6.0f} ms  "
          f"p95 {summary.p95 * 1000:6.0f} ms  ({summary.count} txns)")


def main() -> None:
    slacker = Slacker(EVALUATION, nodes=["rack-a", "rack-b"])
    light_rate = EVALUATION.workload.arrival_rate / 4

    slacker.add_tenant(1, node="rack-a", data_bytes=512 * MB,
                       workload=True, arrival_rate=light_rate)
    slacker.add_tenant(2, node="rack-b", data_bytes=512 * MB,
                       workload=True, arrival_rate=light_rate)

    t0 = slacker.now
    slacker.advance(45.0)
    print("before consolidation (one tenant per server):")
    show_latency(slacker, 1, t0, slacker.now, "tenant 1 on rack-a")
    show_latency(slacker, 2, t0, slacker.now, "tenant 2 on rack-b")

    # Consolidate: move tenant 2 onto rack-a.  A generous setpoint is
    # fine here — both servers have plenty of slack.
    print("\nmigrating tenant 2: rack-b -> rack-a (setpoint 1500 ms)...")
    result = slacker.migrate(2, "rack-a", setpoint=1.5)
    print(f"  done in {result.duration:.1f} s at "
          f"{result.average_rate / MB:.1f} MB/s, "
          f"downtime {result.downtime * 1000:.0f} ms")

    t1 = slacker.now
    slacker.advance(45.0)
    print("\nafter consolidation (both tenants on rack-a):")
    show_latency(slacker, 1, t1, slacker.now, "tenant 1 on rack-a")
    show_latency(slacker, 2, t1, slacker.now, "tenant 2 on rack-a")

    sla = LatencySla(percentile=95, bound=2.0)
    both_ok = all(
        sla.satisfied_by(
            slacker.latency_series(tid).window_values(t1, slacker.now)
        )
        for tid in (1, 2)
    )
    rack_b_tenants = len(slacker.cluster.node("rack-b").registry)
    print(f"\nconsolidated SLA ({sla.describe()}) satisfied: {both_ok}")
    print(f"rack-b now hosts {rack_b_tenants} tenants — "
          "ready to be powered down or repurposed")


if __name__ == "__main__":
    main()
