"""Hotspot relief: the paper's Figure 2 scenario, end to end.

Three tenants share a server under per-server SLAs.  One tenant's
workload surges (Figure 2b), the server overloads and SLA windows
start violating (Figure 2c).  The operator live-migrates the hot
tenant to a standby server with Slacker's dynamic throttle — chosen so
the migration itself does not create the Figure 3 hotspot — and the
remaining tenants recover.

Run::

    python examples/hotspot_relief.py
"""

from repro import EVALUATION, LatencySla, Slacker, SlaMonitor
from repro.analysis import summarize
from repro.resources import MB


def sla_report(slacker, monitor, tenant_ids, start, end, label):
    print(f"\n{label}")
    for tenant_id in tenant_ids:
        series = slacker.latency_series(tenant_id)
        reports = monitor.evaluate(series, start, end)
        violated = sum(1 for r in reports if not r.satisfied)
        values = series.window_values(start, end)
        summary = summarize(values)
        print(
            f"  tenant {tenant_id}: mean {summary.mean * 1000:6.0f} ms  "
            f"p95 {summary.p95 * 1000:6.0f} ms  "
            f"SLA windows violated {violated}/{len(reports)}"
        )


def main() -> None:
    slacker = Slacker(EVALUATION, nodes=["primary", "standby"])
    sla = LatencySla(percentile=95, bound=1.0)
    monitor = SlaMonitor(sla, window=10.0)
    print(f"per-server SLA: {sla.describe()}")

    # Three tenants collocated on the primary; standby is empty.
    for tenant_id in (1, 2, 3):
        slacker.add_tenant(
            tenant_id,
            node="primary",
            data_bytes=341 * MB,
            workload=True,
            arrival_rate=EVALUATION.workload.arrival_rate / 3,
        )

    # Phase 1: stable (Figure 2a).
    t0 = slacker.now
    slacker.advance(60.0)
    sla_report(slacker, monitor, (1, 2, 3), t0, slacker.now, "stable period:")

    # Phase 2: tenant 2 catches a flash crowd (Figure 2b -> 2c).
    slacker.scale_workload(2, 4.5)
    t1 = slacker.now
    slacker.advance(60.0)
    sla_report(slacker, monitor, (1, 2, 3), t1, slacker.now,
               "after tenant 2's surge (server overloading):")

    # Phase 3: migrate the hot tenant away, latency-aware.
    print("\nmigrating tenant 2 -> standby (setpoint 2000 ms)...")
    result = slacker.migrate(2, "standby", setpoint=2.0)
    print(f"  done in {result.duration:.1f} s at "
          f"{result.average_rate / MB:.1f} MB/s, "
          f"downtime {result.downtime * 1000:.0f} ms")

    # Phase 4: recovered (give the buffer pools a moment to settle).
    slacker.advance(10.0)
    t2 = slacker.now
    slacker.advance(60.0)
    sla_report(slacker, monitor, (1, 2, 3), t2, slacker.now,
               "after migration (tenant 2 on standby):")
    print(f"\nplacement: " + ", ".join(
        f"tenant {tid} on {slacker.locate(tid)}" for tid in (1, 2, 3)))


if __name__ == "__main__":
    main()
