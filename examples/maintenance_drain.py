"""Rolling maintenance: drain a server with queued, cost-checked migrations.

A production chore the paper's machinery makes routine (Section 1.3's
"system maintenance" motivation): take a server out of rotation by
migrating every tenant off it, one latency-aware migration at a time,
with the migration economics model confirming each move is worth it.

Uses the node migration *queue* (strictly serialized: concurrent
migrations from one server would each consume the slack the other's
PID is trying to discover) and the admin console for the final check.

Run::

    python examples/maintenance_drain.py
"""

from repro import EVALUATION, LatencySla, Slacker
from repro.core.sla import suggest_setpoint
from repro.experiments import scaled_config
from repro.middleware.admin import AdminConsole
from repro.placement import CostParameters, MigrationCostBenefit
from repro.resources import MB, mb_per_sec


def main() -> None:
    config = scaled_config(EVALUATION, 0.25)  # 256 MB tenants
    slacker = Slacker(config, nodes=["old-box", "new-box"])
    console = AdminConsole(slacker.cluster)
    sla = LatencySla(percentile=95, bound=2.0)

    for tenant_id in (1, 2, 3):
        slacker.add_tenant(
            tenant_id, node="old-box", workload=True,
            arrival_rate=config.workload.arrival_rate / 3,
        )

    t0 = slacker.now
    slacker.advance(40.0)
    print(console.execute("status"))

    # Pick the setpoint from the SLA and the observed baseline.
    baseline = []
    for tenant_id in (1, 2, 3):
        baseline.extend(
            slacker.latency_series(tenant_id).window_values(t0, slacker.now)
        )
    setpoint = suggest_setpoint(sla, baseline)
    print(f"\nSLA {sla.describe()}; suggested setpoint "
          f"{setpoint * 1000:.0f} ms")

    # Sanity-check the economics of the drain.
    cost_model = MigrationCostBenefit(sla, CostParameters(horizon=3600.0))
    estimate = cost_model.estimate(
        slacker.latency_series(1), now=slacker.now, lookback=40.0,
        data_bytes=config.tenant.data_bytes,
        expected_rate=mb_per_sec(10), setpoint=setpoint,
    )
    print(f"per-tenant migration cost ~{estimate.cost_of_migrating:.1f} "
          f"penalty units, ~{estimate.expected_migration_seconds:.0f} s each")

    # Queue all three drains; the node runs them strictly one at a time.
    node = slacker.cluster.node("old-box")
    print("\nqueueing 3 migrations (serialized by the node)...")
    events = [
        node.enqueue_migration(tenant_id, "new-box", setpoint=setpoint)
        for tenant_id in (1, 2, 3)
    ]
    for tenant_id, event in zip((1, 2, 3), events):
        result = slacker.env.run(until=event)
        print(f"  tenant {tenant_id}: {result.duration:5.1f} s at "
              f"{result.average_rate / MB:4.1f} MB/s, "
              f"downtime {result.downtime * 1000:4.0f} ms")

    slacker.advance(10.0)
    print()
    print(console.execute("status"))
    drained = len(slacker.cluster.node("old-box").registry) == 0
    print(f"\nold-box drained: {drained} — safe to patch/reboot/retire")


if __name__ == "__main__":
    main()
