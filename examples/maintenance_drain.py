"""Rolling maintenance: drain a server in budget-bounded migration waves.

A production chore the paper's machinery makes routine (Section 1.3's
"system maintenance" motivation): take a server out of rotation by
migrating every tenant off it with latency-aware migrations, with the
migration economics model confirming each move is worth it.

The drain runs through the placement layer's wave executor: the
planner spreads tenants across the surviving nodes (biggest first, so
the makespan tracks the largest tenant), and the per-node slack-budget
ledger admits concurrent streams only while neither endpoint's slack
is oversubscribed — the source's outbound budget is what bounds each
wave.  The admin console's ``drain`` verb drives the whole thing.

Run::

    python examples/maintenance_drain.py
"""

from repro import EVALUATION, LatencySla, Slacker
from repro.core.sla import suggest_setpoint
from repro.experiments import scaled_config
from repro.middleware.admin import AdminConsole
from repro.placement import CostParameters, MigrationCostBenefit
from repro.resources import mb_per_sec


def main() -> None:
    config = scaled_config(EVALUATION, 0.25)  # 256 MB tenants
    slacker = Slacker(config, nodes=["old-box", "new-box", "spare-box"])
    console = AdminConsole(slacker.cluster)
    sla = LatencySla(percentile=95, bound=2.0)

    for tenant_id in (1, 2, 3):
        slacker.add_tenant(
            tenant_id, node="old-box", workload=True,
            arrival_rate=config.workload.arrival_rate / 3,
        )

    t0 = slacker.now
    slacker.advance(40.0)
    print(console.execute("status"))

    # Pick the setpoint from the SLA and the observed baseline.
    baseline = []
    for tenant_id in (1, 2, 3):
        baseline.extend(
            slacker.latency_series(tenant_id).window_values(t0, slacker.now)
        )
    setpoint = suggest_setpoint(sla, baseline)
    print(f"\nSLA {sla.describe()}; suggested setpoint "
          f"{setpoint * 1000:.0f} ms")

    # Sanity-check the economics of the drain.
    cost_model = MigrationCostBenefit(sla, CostParameters(horizon=3600.0))
    estimate = cost_model.estimate(
        slacker.latency_series(1), now=slacker.now, lookback=40.0,
        data_bytes=config.tenant.data_bytes,
        expected_rate=mb_per_sec(10), setpoint=setpoint,
    )
    print(f"per-tenant migration cost ~{estimate.cost_of_migrating:.1f} "
          f"penalty units, ~{estimate.expected_migration_seconds:.0f} s each")

    # One console command: the placement manager plans drain waves and
    # the executor admits streams against the slack-budget ledger.
    print("\ndraining old-box in budget-bounded waves...")
    print(console.execute(f"drain old-box setpoint {setpoint * 1000:.0f}ms"))

    manager = console.manager
    print(f"\n{manager.stats.waves} waves; decisions:")
    for decision in manager.stats.decisions:
        extra = (f" ({decision.duration:.0f} s)"
                 if decision.outcome == "completed" else "")
        print(f"  t={decision.time:5.0f}s  {decision.proposal.reason} "
              f"-> {decision.outcome}{extra}")
    print(f"peak slack-budget use on any node: "
          f"{manager.ledger.peak_used:.2f} of {manager.ledger.capacity:.2f}")

    slacker.advance(10.0)
    print()
    print(console.execute("status"))
    drained = len(slacker.cluster.node("old-box").registry) == 0
    print(f"\nold-box drained: {drained} — safe to patch/reboot/retire")


if __name__ == "__main__":
    main()
