"""Shared-process multitenancy: de-consolidating a noisy tenant.

The paper's Section 8 future work: "one MySQL daemon handling all
tenants rather than just one", migratable because "the Percona variant
of MySQL offers table-level hot backup" (Section 6).

Three tenants share one daemon — and therefore one buffer pool.  When
tenant 2 turns scan-heavy it evicts its neighbours' hot pages (the
isolation failure the paper's process-per-tenant model avoids).  A
table-level live migration pulls tenant 2 out into a dedicated daemon
on another server: only its tablespace is scanned, only its tagged
binlog records ship, and its table write-lock handover leaves the
neighbours untouched.

Run::

    python examples/shared_process.py
"""

from repro.analysis import summarize
from repro.db import SharedProcessEngine, SharedTenantSession, TableLayout
from repro.core.config import EVALUATION
from repro.migration import SharedTenantMigration, Throttle
from repro.resources import MB, Server, mb_per_sec
from repro.simulation import Environment, RandomStreams, Trace
from repro.workload import (
    BenchmarkClient,
    PoissonArrivals,
    TransactionFactory,
    UniformChooser,
)


def latency(trace, series, start, end):
    values = trace.series(series).window_values(start, end)
    return summarize(values)


def main() -> None:
    env = Environment()
    streams = RandomStreams(42)
    consolidated = Server(env, "consolidated", params=EVALUATION.server,
                          streams=streams)
    standby = Server(env, "standby", params=EVALUATION.server, streams=streams)

    # One daemon, three tenants, ONE shared 96 MB buffer pool.
    shared = SharedProcessEngine(env, consolidated, buffer_bytes=96 * MB)
    trace = Trace()
    sessions = {}
    arrivals = {}
    for tenant_id in (1, 2, 3):
        layout = TableLayout.for_data_size(256 * MB)
        shared.add_tenant(tenant_id, layout)
        session = SharedTenantSession(shared, tenant_id)
        sessions[tenant_id] = session
        factory = TransactionFactory(
            layout,
            UniformChooser(layout.num_rows, streams.stream(f"keys-{tenant_id}")),
            streams.stream(f"ops-{tenant_id}"),
        )
        arrivals[tenant_id] = PoissonArrivals(
            1.2, streams.stream(f"arrivals-{tenant_id}")
        )
        client = BenchmarkClient(
            env, session, factory, arrivals[tenant_id],
            trace=trace, series=f"tenant-{tenant_id}",
        )
        client.start()

    t0 = env.now
    env.run(until=40.0)
    print("consolidated daemon, balanced load:")
    for tenant_id in (1, 2, 3):
        summary = latency(trace, f"tenant-{tenant_id}", t0, env.now)
        print(f"  tenant {tenant_id}: mean {summary.mean * 1000:5.0f} ms  "
              f"pool hit-ratio shared across all tenants")

    # Tenant 2 turns hot: 5x the traffic, thrashing the shared pool.
    arrivals[2].scale_rate(5.0)
    t1 = env.now
    env.run(until=env.now + 40.0)
    print("\ntenant 2 surges 5x (shared pool thrashing):")
    for tenant_id in (1, 2, 3):
        summary = latency(trace, f"tenant-{tenant_id}", t1, env.now)
        print(f"  tenant {tenant_id}: mean {summary.mean * 1000:5.0f} ms")

    # Table-level live migration of tenant 2 to its own daemon.
    print("\nmigrating tenant 2 out (table-level hot backup, 8 MB/s)...")
    throttle = Throttle(env, rate=mb_per_sec(8))
    migration = SharedTenantMigration(
        env, shared, 2, standby, throttle,
        target_buffer_bytes=128 * MB,
        on_handover=sessions[2].rebind,
    )
    result = env.run(until=env.process(migration.run()))
    throttle.stop()
    print(f"  snapshot {result.snapshot_bytes / MB:.0f} MB (tenant 2's "
          f"tablespace only), deltas {result.delta_bytes} B in "
          f"{len(result.delta_rounds)} rounds, "
          f"downtime {result.downtime * 1000:.0f} ms")
    print(f"  tenant 2 now runs in its own daemon: {result.target.name}")

    t2 = env.now
    env.run(until=env.now + 40.0)
    print("\nafter de-consolidation:")
    for tenant_id in (1, 2, 3):
        summary = latency(trace, f"tenant-{tenant_id}", t2, env.now)
        where = "standby (dedicated)" if tenant_id == 2 else "consolidated (shared)"
        print(f"  tenant {tenant_id} on {where}: "
              f"mean {summary.mean * 1000:5.0f} ms")


if __name__ == "__main__":
    main()
