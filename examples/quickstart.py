"""Quickstart: live-migrate a busy tenant with zero downtime.

Builds a two-node Slacker cluster, puts a 1 GB tenant with a live
YCSB-style workload on the first node, and migrates it to the second
with the PID-driven dynamic throttle targeting 1000 ms latency.

Run::

    python examples/quickstart.py
"""

from repro import EVALUATION, Slacker
from repro.analysis import summarize
from repro.resources import MB


def main() -> None:
    slacker = Slacker(EVALUATION, nodes=["db-01", "db-02"])

    # A tenant with an attached benchmark workload (Poisson arrivals,
    # 10-operation transactions, 85/15 read/write — the paper's mix).
    slacker.add_tenant(1, node="db-01", workload=True)
    print(f"tenant 1 lives on {slacker.locate(1)}")

    # Warm the buffer pool and reach steady state.
    slacker.advance(30.0)
    warm = summarize(slacker.latency_series(1).values)
    print(f"baseline latency: {warm.mean * 1000:.0f} ms mean, "
          f"p95 {warm.p95 * 1000:.0f} ms")

    # Live-migrate with a 1000 ms latency setpoint.  The call blocks
    # until handover; the workload keeps running the whole time.
    result = slacker.migrate(1, "db-02", setpoint=1.0)

    print(f"\nmigration finished in {result.duration:.1f} s")
    print(f"  snapshot:      {result.snapshot_bytes / MB:.0f} MB "
          f"in {result.snapshot_seconds:.1f} s")
    print(f"  delta rounds:  {len(result.delta_rounds)} "
          f"({result.delta_bytes / 1024:.0f} KB shipped)")
    print(f"  average speed: {result.average_rate / MB:.1f} MB/s")
    print(f"  downtime:      {result.downtime * 1000:.0f} ms "
          f"(freeze-and-handover window)")
    print(f"tenant 1 now lives on {slacker.locate(1)}")

    # The client kept executing against the tenant throughout.
    slacker.advance(10.0)
    client = slacker.client(1)
    print(f"\ntransactions: {client.stats.completed} completed "
          f"of {client.stats.arrived} arrived (none lost)")


if __name__ == "__main__":
    main()
