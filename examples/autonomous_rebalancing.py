"""Autonomous rebalancing: closing the paper's future-work loop.

Slacker answers *how* to migrate; Section 8 leaves "when migrations are
necessary, which tenants should be migrated, and where" as synergistic
questions.  The :mod:`repro.placement` subpackage answers them: a load
monitor snapshots every node, a hotspot detector decides *when*, a
greedy chooser decides *which/where*, and the manager executes
latency-aware migrations — no human in the loop.

This example runs three tenants on one node, lets one of them catch a
flash crowd, and watches the manager notice, migrate it away with the
PID throttle, and restore the server.

Run::

    python examples/autonomous_rebalancing.py
"""

from repro import EVALUATION, Slacker
from repro.analysis import summarize
from repro.experiments import scaled_config
from repro.placement import LatencyHotspotDetector, PlacementManager
from repro.resources import MB


def report(slacker, tenant_ids, start, end, label):
    print(f"\n{label}")
    for tenant_id in tenant_ids:
        values = slacker.latency_series(tenant_id).window_values(start, end)
        summary = summarize(values)
        location = slacker.locate(tenant_id)
        print(f"  tenant {tenant_id} on {location}: "
              f"mean {summary.mean * 1000:6.0f} ms  "
              f"p95 {summary.p95 * 1000:6.0f} ms")


def main() -> None:
    config = scaled_config(EVALUATION, 0.5)  # 512 MB tenants
    slacker = Slacker(config, nodes=["n1", "n2"])
    for tenant_id in (1, 2, 3):
        slacker.add_tenant(
            tenant_id, node="n1", workload=True,
            arrival_rate=config.workload.arrival_rate / 3,
        )

    manager = PlacementManager(
        slacker.cluster,
        slacker.trace,
        setpoint=1.5,  # migrations run with a 1500 ms latency target
        detector=LatencyHotspotDetector(latency_threshold=0.6, patience=2),
        interval=10.0,
        cooldown=30.0,
        # Wave mode: up to 2 concurrent migrations fleet-wide, each
        # admitted against the per-node slack-budget ledger.
        max_concurrent=2,
        max_streams_per_node=2,
    )
    slacker.env.process(manager.run())
    print("placement manager running: snapshot every 10 s, "
          "hot = worst tenant > 600 ms twice in a row, "
          "waves of up to 2 budget-admitted migrations")

    t0 = slacker.now
    slacker.advance(40.0)
    report(slacker, (1, 2, 3), t0, slacker.now, "stable:")

    print("\n>>> tenant 2 catches a flash crowd (5x arrivals)")
    slacker.scale_workload(2, 5.0)
    t1 = slacker.now
    slacker.advance(40.0)
    report(slacker, (1, 2, 3), t1, slacker.now, "hotspot forming:")

    # Let the manager work.
    slacker.advance(200.0)

    print("\nmanager decisions:")
    for decision in manager.stats.decisions:
        extra = (f" ({decision.duration:.0f} s, downtime "
                 f"{decision.downtime * 1000:.0f} ms)"
                 if decision.outcome == "completed" else "")
        print(f"  t={decision.time:5.0f}s  {decision.proposal.reason} "
              f"-> {decision.outcome}{extra}")

    t2 = slacker.now - 60.0
    report(slacker, (1, 2, 3), t2, slacker.now, "after autonomous relief:")


if __name__ == "__main__":
    main()
