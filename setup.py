"""Thin shim so `pip install -e .` works without network access.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
