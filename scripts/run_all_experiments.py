"""Regenerate every experiment and dump results to a directory.

Writes, for each experiment id:

* ``results/<id>.txt`` — the paper-style result table(s), and
* ``results/<id>.csv`` — the same table as CSV, plus
* ``results/<id>.latency.csv`` — raw latency series where available.

Usage::

    python scripts/run_all_experiments.py [--scale 1.0] [--out results]
                                          [--jobs 4] [--no-cache]

Sweep experiments (fig5, fig7, fig11) fan their independent points
across ``--jobs`` worker processes — results are bit-identical to a
serial run — and memoize finished points in ``<out>/.sweep-cache`` so
a re-run after an interruption (or with unchanged code) only computes
what is missing.
"""

from __future__ import annotations

import argparse
import inspect
import time
from pathlib import Path

from repro.analysis.export import series_to_csv, table_to_csv, write_csv
from repro.experiments import REGISTRY
from repro.parallel import ResultCache, WorkerPool


def _walltime() -> float:
    """Wall-clock seconds, for reporting how long a driver took.

    Scripts are SLK001-exempt by configuration, but the pragma'd helper
    pattern from ``src/repro/__main__.py`` keeps the wall-clock read
    single and auditable here too: it only feeds the per-experiment
    timing footer and never enters simulated results.
    """
    return time.time()  # slackerlint: disable=SLK001


def tables_of(result):
    if hasattr(result, "table"):
        return [result.table()]
    if hasattr(result, "table_11a"):
        return [result.table_11a(), result.table_11b()]
    return []


def latency_series_of(result):
    outcome = getattr(result, "outcome", None)
    if outcome is not None:
        return [t.latency for t in outcome.tenants]
    slacker = getattr(result, "slacker", None)
    if slacker is not None and hasattr(slacker, "tenants"):
        return [t.latency for t in slacker.tenants]
    return []


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--out", default="results")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment ids")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep experiments "
                             "(0 = all cores; results identical to serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every sweep point (skip the "
                             "on-disk result cache)")
    parser.add_argument("--obs", action="store_true",
                        help="attach the observability runtime to drivers "
                             "that support it; RunReports and span traces "
                             "land in <out>/obs/ (results are bit-identical "
                             "either way)")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    cache = None if args.no_cache else ResultCache(out_dir / ".sweep-cache")
    obs_dir = out_dir / "obs"
    if args.obs:
        obs_dir.mkdir(parents=True, exist_ok=True)

    # One warm worker pool for the whole driver run: workers spawn once
    # (forkserver, repro preloaded) and every sweep reuses them instead
    # of paying executor start-up per experiment.
    pool = WorkerPool(args.jobs) if args.jobs != 1 else None

    ids = args.only or list(REGISTRY)
    try:
        for experiment_id in ids:
            module = REGISTRY[experiment_id]
            started = _walltime()
            kwargs = {} if experiment_id == "stop-and-copy" else {"scale": args.scale}
            # Only sweep drivers accept jobs/cache/pool; pass them where
            # supported.
            parameters = inspect.signature(module.run).parameters
            if "jobs" in parameters:
                kwargs["jobs"] = args.jobs
            if "cache" in parameters:
                kwargs["cache"] = cache
            if pool is not None and "pool" in parameters:
                kwargs["pool"] = pool
            if args.obs and "obs_dir" in parameters:
                kwargs["obs_dir"] = str(obs_dir)
            if args.obs and "observe" in parameters:
                kwargs["observe"] = True
            result = module.run(**kwargs)
            elapsed = _walltime() - started

            stem = experiment_id.replace("/", "-")
            tables = tables_of(result)
            text = "\n\n".join(t.render() for t in tables)
            (out_dir / f"{stem}.txt").write_text(text + "\n")
            if tables:
                write_csv(str(out_dir / f"{stem}.csv"), table_to_csv(tables[0]))
            series = latency_series_of(result)
            if series:
                write_csv(
                    str(out_dir / f"{stem}.latency.csv"), series_to_csv(series)
                )
            print(f"{experiment_id:<18} {elapsed:6.1f} s wall -> {out_dir}/{stem}.*")
    finally:
        if pool is not None:
            pool.close()
    if pool is not None and pool.warm_hits:
        print(f"worker pool: {pool.jobs} worker(s), {pool.warm_hits} warm reuse(s)")
    if cache is not None:
        print(
            f"sweep cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"-> {cache.root}"
        )


if __name__ == "__main__":
    main()
