"""Regenerate every experiment and dump results to a directory.

Writes, for each experiment id:

* ``results/<id>.txt`` — the paper-style result table(s), and
* ``results/<id>.csv`` — the same table as CSV, plus
* ``results/<id>.latency.csv`` — raw latency series where available.

Usage::

    python scripts/run_all_experiments.py [--scale 1.0] [--out results]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.analysis.export import series_to_csv, table_to_csv, write_csv
from repro.experiments import REGISTRY


def tables_of(result):
    if hasattr(result, "table"):
        return [result.table()]
    if hasattr(result, "table_11a"):
        return [result.table_11a(), result.table_11b()]
    return []


def latency_series_of(result):
    outcome = getattr(result, "outcome", None)
    if outcome is not None:
        return [t.latency for t in outcome.tenants]
    slacker = getattr(result, "slacker", None)
    if slacker is not None and hasattr(slacker, "tenants"):
        return [t.latency for t in slacker.tenants]
    return []


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--out", default="results")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment ids")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    ids = args.only or list(REGISTRY)
    for experiment_id in ids:
        module = REGISTRY[experiment_id]
        started = time.time()
        kwargs = {} if experiment_id == "stop-and-copy" else {"scale": args.scale}
        result = module.run(**kwargs)
        elapsed = time.time() - started

        stem = experiment_id.replace("/", "-")
        tables = tables_of(result)
        text = "\n\n".join(t.render() for t in tables)
        (out_dir / f"{stem}.txt").write_text(text + "\n")
        if tables:
            write_csv(str(out_dir / f"{stem}.csv"), table_to_csv(tables[0]))
        series = latency_series_of(result)
        if series:
            write_csv(
                str(out_dir / f"{stem}.latency.csv"), series_to_csv(series)
            )
        print(f"{experiment_id:<18} {elapsed:6.1f} s wall -> {out_dir}/{stem}.*")


if __name__ == "__main__":
    main()
