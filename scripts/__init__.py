"""Operational scripts (also importable, e.g. by the benchmarks)."""
