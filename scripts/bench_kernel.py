"""Kernel + sweep benchmark: events/sec and serial-vs-parallel wall time.

Measures two things and appends them to a ``BENCH_kernel.json``
trajectory (one record per invocation, so successive commits build a
perf history):

1. **Kernel microbenchmark** — raw event-loop throughput: N generator
   processes each yielding a chain of timeouts, reported as events/sec.
2. **Reference sweep** — the 4-point Figure 5 sweep (baseline + 4/8/12
   MB/s) run serially and with ``--jobs`` workers, reported as wall
   seconds each plus the speedup.  The cache is disabled for both runs
   so the comparison is honest, and the two results are checked for
   bit-identical latency series before timings are recorded.

Optionally it also times a fleet-scale run:

3. **Fleet drain** (``--fleet``) — the 100-node/1000-tenant drain
   scenario, reported as wall seconds, kernel events/sec, and the
   events the coalesced timers *elided* (the ticks an eager one-event-
   per-tick implementation would have processed on top).

Usage::

    python scripts/bench_kernel.py [--scale 0.5] [--jobs 4]
                                   [--events 200000] [--out BENCH_kernel.json]
                                   [--skip-sweep] [--gate-pct 3]
                                   [--sweep-gate-pct 5] [--fleet]

With ``--gate-pct N`` the run also *gates*: after appending its record
it compares kernel events/sec against the most recent prior record in
the trajectory file and exits non-zero if throughput dropped by more
than N percent.  The benchmark runs with observability disabled, so
this is the backstop that keeps the obs layer's no-op path free.

``--sweep-gate-pct N`` gates parallel dispatch overhead instead: the
warm-pool parallel sweep must finish within N percent of the serial
wall time (on a multi-core box it should beat it outright), so a
regression in pool dispatch, pickling, or worker start-up fails CI.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import time
from pathlib import Path

from repro.experiments import fig5_throttle_sweep, fleet_sweep
from repro.parallel import WorkerPool
from repro.simulation.core import Environment


def _elapsed() -> float:
    """Wall-clock seconds for timing real work (never simulated time).

    Scripts are SLK001-exempt by configuration; the pragma'd helper
    keeps the wall-clock reads single and auditable regardless.
    """
    return time.perf_counter()  # slackerlint: disable=SLK001


def _utc_stamp() -> str:
    return time.strftime(  # slackerlint: disable=SLK001
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
    )


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown"


def _pump(env: Environment, count: int):
    timeout = env.timeout
    for _ in range(count):
        yield timeout(1.0)


def bench_kernel(total_events: int = 200_000, processes: int = 4) -> dict:
    """Time a pure timeout-chain workload through the event loop."""
    env = Environment()
    per_process = total_events // processes
    for _ in range(processes):
        env.process(_pump(env, per_process))
    started = _elapsed()
    env.run()
    seconds = _elapsed() - started
    # The drained run processed every event it scheduled, so the
    # kernel's processed-event counter is the exact event total.
    events = env.processed_events
    return {
        "processes": processes,
        "events": events,
        "seconds": round(seconds, 4),
        "events_per_sec": round(events / seconds),
    }


def bench_sweep(scale: float, jobs: int, chunksize: int | None = None) -> dict:
    """Time the 4-point Figure 5 sweep serially and with ``jobs`` workers.

    The parallel leg runs twice on one shared :class:`WorkerPool`: the
    first run pays worker start-up (``parallel_cold_seconds``), the
    second reuses the warm workers (``parallel_seconds``) — the number
    a multi-sweep driver actually sees per sweep, and the one the
    ``--sweep-gate-pct`` dispatch-overhead gate judges.
    """
    started = _elapsed()
    serial = fig5_throttle_sweep.run(scale=scale, jobs=1, cache=None)
    serial_seconds = _elapsed() - started

    with WorkerPool(jobs) as pool:
        started = _elapsed()
        fig5_throttle_sweep.run(
            scale=scale, jobs=jobs, cache=None, chunksize=chunksize, pool=pool
        )
        cold_seconds = _elapsed() - started

        started = _elapsed()
        parallel = fig5_throttle_sweep.run(
            scale=scale, jobs=jobs, cache=None, chunksize=chunksize, pool=pool
        )
        parallel_seconds = _elapsed() - started

    for rate, outcome in serial.outcomes.items():
        mine, theirs = outcome, parallel.outcomes[rate]
        if [tuple(p) for p in mine.tenants[0].latency] != [
            tuple(p) for p in theirs.tenants[0].latency
        ]:
            raise AssertionError(
                f"serial and jobs={jobs} sweeps diverged at rate {rate}"
            )
    return {
        "scale": scale,
        "points": len(serial.outcomes),
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_cold_seconds": round(cold_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
    }


def bench_fleet(nodes: int = 100, tenants: int = 1000) -> dict:
    """Time the fleet drain scenario once, in-process.

    Alongside wall time and events/sec, reports how many tick events
    the coalesced timers elided: ``events + elided_events`` is what the
    same bit-identical trajectory would have cost with one event per
    heartbeat/detector/refill tick.
    """
    points = fleet_sweep.sweep_points(None, nodes=nodes, tenants=tenants)
    drain = next(p for p in points if p.label == "drain")
    started = _elapsed()
    record = fleet_sweep.fleet_point(drain.config, drain.spec, **drain.kwargs)
    seconds = _elapsed() - started
    naive = record.events + record.elided
    return {
        "scenario": "drain",
        "nodes": nodes,
        "tenants": tenants,
        "ok": record.ok,
        "fingerprint": record.fingerprint,
        "sim_end": round(record.sim_end, 3),
        "seconds": round(seconds, 3),
        "events": record.events,
        "events_per_sec": round(record.events / seconds),
        "elided_events": record.elided,
        "event_reduction_pct": round(100.0 * record.elided / naive, 1)
        if naive else 0.0,
    }


def latest_kernel_rate(path: Path) -> float | None:
    """Events/sec from the most recent record in the trajectory file.

    Returns ``None`` when there is no usable prior record (first run,
    missing file, corrupt JSON) so a fresh checkout never fails a gate
    it has no baseline for.
    """
    if not path.is_file():
        return None
    try:
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None
    for run in reversed(trajectory.get("runs", [])):
        rate = run.get("kernel", {}).get("events_per_sec")
        if isinstance(rate, (int, float)) and rate > 0:
            return float(rate)
    return None


def append_record(path: Path, record: dict) -> dict:
    """Append ``record`` to the trajectory file at ``path``."""
    if path.is_file():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            trajectory = {"schema": 1, "runs": []}
    else:
        trajectory = {"schema": 1, "runs": []}
    trajectory.setdefault("runs", []).append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return trajectory


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--events", type=int, default=200_000,
                        help="timeout events for the kernel microbench")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="database scale for the reference sweep")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel sweep run")
    parser.add_argument("--chunksize", type=int, default=None,
                        help="sweep points per worker dispatch "
                             "(default: auto, ~4 chunks per worker)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="trajectory file to append to")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="only run the kernel microbench")
    parser.add_argument("--note", default=None,
                        help="free-form label stored with the record")
    parser.add_argument("--gate-pct", type=float, default=None,
                        help="fail if kernel events/sec regresses more "
                             "than this percentage vs the latest prior "
                             "record in --out")
    parser.add_argument("--sweep-gate-pct", type=float, default=None,
                        help="fail if the warm-pool parallel sweep takes "
                             "more than this percentage longer than the "
                             "serial run (dispatch-overhead gate)")
    parser.add_argument("--fleet", action="store_true",
                        help="also time the 100-node/1000-tenant fleet "
                             "drain and record events, events/sec, and "
                             "the coalescing event reduction")
    parser.add_argument("--fleet-nodes", type=int, default=100)
    parser.add_argument("--fleet-tenants", type=int, default=1000)
    args = parser.parse_args()

    baseline = (
        latest_kernel_rate(Path(args.out))
        if args.gate_pct is not None else None
    )

    kernel = bench_kernel(total_events=args.events)
    print(
        f"kernel: {kernel['events']} events in {kernel['seconds']:.3f} s "
        f"-> {kernel['events_per_sec']:,} events/sec"
    )

    record = {
        "timestamp": _utc_stamp(),
        "git_rev": _git_rev(),
        # Speedup numbers are meaningless without this: on a 1-core
        # box jobs=4 *cannot* beat serial wall-clock.
        "cpu_count": os.cpu_count(),
        "kernel": kernel,
    }
    if args.note:
        record["note"] = args.note
    if not args.skip_sweep:
        sweep = bench_sweep(
            scale=args.scale, jobs=args.jobs, chunksize=args.chunksize
        )
        if args.chunksize is not None:
            sweep["chunksize"] = args.chunksize
        record["sweep"] = sweep
        print(
            f"sweep:  {sweep['points']} points at scale {sweep['scale']:g}: "
            f"serial {sweep['serial_seconds']:.2f} s, "
            f"jobs={sweep['jobs']} cold {sweep['parallel_cold_seconds']:.2f} s, "
            f"warm {sweep['parallel_seconds']:.2f} s "
            f"-> {sweep['speedup']:.2f}x (bit-identical results)"
        )

    if args.fleet:
        fleet = bench_fleet(nodes=args.fleet_nodes, tenants=args.fleet_tenants)
        record["fleet"] = fleet
        print(
            f"fleet:  {fleet['nodes']}n/{fleet['tenants']}t drain in "
            f"{fleet['seconds']:.1f} s wall "
            f"({fleet['sim_end']:.0f} s simulated): "
            f"{fleet['events']:,} events "
            f"-> {fleet['events_per_sec']:,} events/sec, "
            f"{fleet['elided_events']:,} ticks elided "
            f"({fleet['event_reduction_pct']:g}% fewer events than "
            f"one-event-per-tick)"
        )

    append_record(Path(args.out), record)
    print(f"appended to {args.out}")

    if args.sweep_gate_pct is not None and "sweep" in record:
        sweep = record["sweep"]
        overhead_pct = 100.0 * (
            sweep["parallel_seconds"] - sweep["serial_seconds"]
        ) / sweep["serial_seconds"]
        print(
            f"sweep gate: warm parallel {sweep['parallel_seconds']:.2f} s vs "
            f"serial {sweep['serial_seconds']:.2f} s "
            f"({overhead_pct:+.1f}% overhead, limit {args.sweep_gate_pct:g}%)"
        )
        if overhead_pct > args.sweep_gate_pct:
            raise SystemExit(
                f"parallel sweep dispatch overhead {overhead_pct:.1f}% "
                f"(> {args.sweep_gate_pct:g}% allowed)"
            )

    if args.gate_pct is not None:
        if baseline is None:
            print(f"gate: no prior record in {args.out}, nothing to compare")
        else:
            drop_pct = 100.0 * (baseline - kernel["events_per_sec"]) / baseline
            print(
                f"gate: {kernel['events_per_sec']:,} vs baseline "
                f"{baseline:,.0f} events/sec ({drop_pct:+.1f}% drop, "
                f"limit {args.gate_pct:g}%)"
            )
            if drop_pct > args.gate_pct:
                raise SystemExit(
                    f"kernel throughput regressed {drop_pct:.1f}% "
                    f"(> {args.gate_pct:g}% allowed)"
                )


if __name__ == "__main__":
    main()
