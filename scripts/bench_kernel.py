"""Kernel + sweep benchmark: events/sec and serial-vs-parallel wall time.

Measures two things and appends them to a ``BENCH_kernel.json``
trajectory (one record per invocation, so successive commits build a
perf history):

1. **Kernel microbenchmark** — raw event-loop throughput: N generator
   processes each yielding a chain of timeouts, reported as events/sec.
2. **Reference sweep** — the 4-point Figure 5 sweep (baseline + 4/8/12
   MB/s) run serially and with ``--jobs`` workers, reported as wall
   seconds each plus the speedup.  The cache is disabled for both runs
   so the comparison is honest, and the two results are checked for
   bit-identical latency series before timings are recorded.

Usage::

    python scripts/bench_kernel.py [--scale 0.5] [--jobs 4]
                                   [--events 200000] [--out BENCH_kernel.json]
                                   [--skip-sweep] [--gate-pct 3]

With ``--gate-pct N`` the run also *gates*: after appending its record
it compares kernel events/sec against the most recent prior record in
the trajectory file and exits non-zero if throughput dropped by more
than N percent.  The benchmark runs with observability disabled, so
this is the backstop that keeps the obs layer's no-op path free.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import time
from pathlib import Path

from repro.experiments import fig5_throttle_sweep
from repro.simulation.core import Environment


def _elapsed() -> float:
    """Wall-clock seconds for timing real work (never simulated time).

    Scripts are SLK001-exempt by configuration; the pragma'd helper
    keeps the wall-clock reads single and auditable regardless.
    """
    return time.perf_counter()  # slackerlint: disable=SLK001


def _utc_stamp() -> str:
    return time.strftime(  # slackerlint: disable=SLK001
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
    )


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown"


def _pump(env: Environment, count: int):
    timeout = env.timeout
    for _ in range(count):
        yield timeout(1.0)


def bench_kernel(total_events: int = 200_000, processes: int = 4) -> dict:
    """Time a pure timeout-chain workload through the event loop."""
    env = Environment()
    per_process = total_events // processes
    for _ in range(processes):
        env.process(_pump(env, per_process))
    started = _elapsed()
    env.run()
    seconds = _elapsed() - started
    # _eid is the scheduling tiebreaker counter (timeouts + process
    # events); its next value is exactly how many events were scheduled.
    events = next(env._eid)
    return {
        "processes": processes,
        "events": events,
        "seconds": round(seconds, 4),
        "events_per_sec": round(events / seconds),
    }


def bench_sweep(scale: float, jobs: int, chunksize: int | None = None) -> dict:
    """Time the 4-point Figure 5 sweep serially and with ``jobs`` workers."""
    started = _elapsed()
    serial = fig5_throttle_sweep.run(scale=scale, jobs=1, cache=None)
    serial_seconds = _elapsed() - started

    started = _elapsed()
    parallel = fig5_throttle_sweep.run(
        scale=scale, jobs=jobs, cache=None, chunksize=chunksize
    )
    parallel_seconds = _elapsed() - started

    for rate, outcome in serial.outcomes.items():
        mine, theirs = outcome, parallel.outcomes[rate]
        if [tuple(p) for p in mine.tenants[0].latency] != [
            tuple(p) for p in theirs.tenants[0].latency
        ]:
            raise AssertionError(
                f"serial and jobs={jobs} sweeps diverged at rate {rate}"
            )
    return {
        "scale": scale,
        "points": len(serial.outcomes),
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
    }


def latest_kernel_rate(path: Path) -> float | None:
    """Events/sec from the most recent record in the trajectory file.

    Returns ``None`` when there is no usable prior record (first run,
    missing file, corrupt JSON) so a fresh checkout never fails a gate
    it has no baseline for.
    """
    if not path.is_file():
        return None
    try:
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None
    for run in reversed(trajectory.get("runs", [])):
        rate = run.get("kernel", {}).get("events_per_sec")
        if isinstance(rate, (int, float)) and rate > 0:
            return float(rate)
    return None


def append_record(path: Path, record: dict) -> dict:
    """Append ``record`` to the trajectory file at ``path``."""
    if path.is_file():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            trajectory = {"schema": 1, "runs": []}
    else:
        trajectory = {"schema": 1, "runs": []}
    trajectory.setdefault("runs", []).append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return trajectory


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--events", type=int, default=200_000,
                        help="timeout events for the kernel microbench")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="database scale for the reference sweep")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel sweep run")
    parser.add_argument("--chunksize", type=int, default=None,
                        help="sweep points per worker dispatch "
                             "(default: auto, ~4 chunks per worker)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="trajectory file to append to")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="only run the kernel microbench")
    parser.add_argument("--note", default=None,
                        help="free-form label stored with the record")
    parser.add_argument("--gate-pct", type=float, default=None,
                        help="fail if kernel events/sec regresses more "
                             "than this percentage vs the latest prior "
                             "record in --out")
    args = parser.parse_args()

    baseline = (
        latest_kernel_rate(Path(args.out))
        if args.gate_pct is not None else None
    )

    kernel = bench_kernel(total_events=args.events)
    print(
        f"kernel: {kernel['events']} events in {kernel['seconds']:.3f} s "
        f"-> {kernel['events_per_sec']:,} events/sec"
    )

    record = {
        "timestamp": _utc_stamp(),
        "git_rev": _git_rev(),
        # Speedup numbers are meaningless without this: on a 1-core
        # box jobs=4 *cannot* beat serial wall-clock.
        "cpu_count": os.cpu_count(),
        "kernel": kernel,
    }
    if args.note:
        record["note"] = args.note
    if not args.skip_sweep:
        sweep = bench_sweep(
            scale=args.scale, jobs=args.jobs, chunksize=args.chunksize
        )
        if args.chunksize is not None:
            sweep["chunksize"] = args.chunksize
        record["sweep"] = sweep
        print(
            f"sweep:  {sweep['points']} points at scale {sweep['scale']:g}: "
            f"serial {sweep['serial_seconds']:.2f} s, "
            f"jobs={sweep['jobs']} {sweep['parallel_seconds']:.2f} s "
            f"-> {sweep['speedup']:.2f}x (bit-identical results)"
        )

    append_record(Path(args.out), record)
    print(f"appended to {args.out}")

    if args.gate_pct is not None:
        if baseline is None:
            print(f"gate: no prior record in {args.out}, nothing to compare")
        else:
            drop_pct = 100.0 * (baseline - kernel["events_per_sec"]) / baseline
            print(
                f"gate: {kernel['events_per_sec']:,} vs baseline "
                f"{baseline:,.0f} events/sec ({drop_pct:+.1f}% drop, "
                f"limit {args.gate_pct:g}%)"
            )
            if drop_pct > args.gate_pct:
                raise SystemExit(
                    f"kernel throughput regressed {drop_pct:.1f}% "
                    f"(> {args.gate_pct:g}% allowed)"
                )


if __name__ == "__main__":
    main()
