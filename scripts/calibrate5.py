"""Fifth pass: steady-state PID accuracy + case-study with bursts."""
import time
from repro.core.config import ExperimentConfig, WorkloadConfig, TenantConfig
from repro.resources import ServerParams, DiskParams, CpuParams, NetworkParams, MB, GB, mb_per_sec
from repro.experiments import MigrationSpec, run_single_tenant

def make_cfg(lam, buf, chunk_mb=2, burst=2.5, seq=24, max_rate=24, seed=42):
    server = ServerParams(cpu=CpuParams(cores=4),
                          disk=DiskParams(seek_time=5e-3, sequential_bandwidth=seq*MB, random_bandwidth=60*MB),
                          network=NetworkParams())
    return ExperimentConfig(workload=WorkloadConfig(arrival_rate=lam, burst_factor=burst),
                            tenant=TenantConfig(data_bytes=GB, buffer_bytes=buf),
                            server=server, chunk_bytes=int(chunk_mb*MB),
                            max_migration_rate=max_rate*MB, seed=seed)

t0 = time.time()
print("== steady-state accuracy (eval: lam=4, chunk=2) ==")
cfg = make_cfg(4.0, 128*MB)
for sp in (0.5, 1.0, 1.5, 2.5, 3.5, 5.0):
    out = run_single_tenant(cfg, MigrationSpec.dynamic(sp), warmup=15)
    # steady state: from first time window latency crossed the setpoint
    ctrl = out.controller_latency_series
    cross = next((t for t, v in ctrl if v >= sp), None)
    if cross is None:
        cross = out.window_start
    vals = out.tenants[0].latency.window_values(cross, out.window_end)
    ss_mean = sum(vals)/len(vals) if vals else float("nan")
    print(f"sp={sp*1000:4.0f}: full {out.mean_latency*1000:5.0f} ({(out.mean_latency/sp-1)*100:+5.1f}%)"
          f"  steady {ss_mean*1000:5.0f} ({(ss_mean/sp-1)*100:+5.1f}%)  rate {out.average_migration_rate/MB:5.1f}  [{time.time()-t0:.0f}s]")

print("== case study with bursts (anchors 79/153/410/720-swingy/diverge) ==")
for lam in (5.5, 6.5):
    cfg = make_cfg(lam, 256*MB)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=180)
    row = [f"base:{base.mean_latency*1000:5.0f}±{base.latency_stddev*1000:4.0f}"]
    for r in (4, 8, 12, 16):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        row.append(f"{r}:{out.mean_latency*1000:6.0f}±{out.latency_stddev*1000:5.0f}")
    print(f"lam={lam}: " + " ".join(row), f"[{time.time()-t0:.0f}s]")
