"""Calibration sweep for the CASE_STUDY preset (Section 3 anchors)."""
import itertools, time
from dataclasses import replace
from repro.core import CASE_STUDY
from repro.core.config import ExperimentConfig, WorkloadConfig, TenantConfig
from repro.resources import ServerParams, DiskParams, CpuParams, NetworkParams, MB, GB, KB, mb_per_sec
from repro.experiments import MigrationSpec, run_single_tenant

def probe(seq_bw, chunk_kb, lam, seek_ms=5.0, db=GB, buf=256*MB):
    server = ServerParams(cpu=CpuParams(cores=4),
                          disk=DiskParams(seek_time=seek_ms*1e-3, sequential_bandwidth=seq_bw*MB, random_bandwidth=60*MB),
                          network=NetworkParams())
    cfg = ExperimentConfig(workload=WorkloadConfig(arrival_rate=lam),
                           tenant=TenantConfig(data_bytes=db, buffer_bytes=buf),
                           server=server, chunk_bytes=chunk_kb*KB, seed=42)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=120)
    rows = [("base", base.mean_latency*1000, base.latency_stddev*1000, base.duration)]
    for r in (4, 8, 12, 16):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        rows.append((f"{r}MB", out.mean_latency*1000, out.latency_stddev*1000, out.duration))
    return rows

t0=time.time()
for seq_bw, chunk_kb, lam in itertools.product((24, 32), (512, 1024, 2048), (7, 9, 11)):  # slackerlint: disable=SLK006 -- chunk sizes counted in KB, scaled via KB in probe()
    rows = probe(seq_bw, chunk_kb, lam)
    desc = " | ".join(f"{n}:{m:5.0f}±{s:4.0f}" for n, m, s, d in rows)
    durs = "/".join(f"{d:.0f}" for _, _, _, d in rows)
    print(f"seq={seq_bw} chunk={chunk_kb}K lam={lam}: {desc}  dur={durs}  [{time.time()-t0:.0f}s]")
