"""Third calibration pass: eval preset curve steepness + PID sweep."""
import time
from repro.core.config import ExperimentConfig, WorkloadConfig, TenantConfig
from repro.resources import ServerParams, DiskParams, CpuParams, NetworkParams, MB, GB, mb_per_sec
from repro.experiments import MigrationSpec, run_single_tenant

def make_cfg(lam, buf, chunk_mb, seq=24, max_rate=24):
    server = ServerParams(cpu=CpuParams(cores=4),
                          disk=DiskParams(seek_time=5e-3, sequential_bandwidth=seq*MB, random_bandwidth=60*MB),
                          network=NetworkParams())
    return ExperimentConfig(workload=WorkloadConfig(arrival_rate=lam),
                            tenant=TenantConfig(data_bytes=GB, buffer_bytes=buf),
                            server=server, chunk_bytes=int(chunk_mb*MB),
                            max_migration_rate=max_rate*MB, seed=42)

t0=time.time()
for chunk_mb, lam in ((8, 3.5), (8, 5.0), (16, 3.5), (16, 5.0)):
    cfg = make_cfg(lam, 128*MB, chunk_mb)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=120)
    row = [f"base:{base.mean_latency*1000:5.0f}"]
    for r in (3, 6, 9, 12, 15, 18, 21, 24):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        row.append(f"{r}:{out.mean_latency*1000:5.0f}({out.average_migration_rate/MB:4.1f})")
    print(f"chunk={chunk_mb} lam={lam}: " + " ".join(row), f"[{time.time()-t0:.0f}s]")

print("== dynamic sweep (chunk=8, lam=5) ==")
cfg = make_cfg(5.0, 128*MB, 8)
for sp in (0.5, 1.0, 1.5, 2.5, 3.5, 5.0):
    out = run_single_tenant(cfg, MigrationSpec.dynamic(sp), warmup=15)
    print(f"setpoint {sp*1000:4.0f}ms -> avg rate {out.average_migration_rate/MB:5.1f} MB/s  achieved lat {out.mean_latency*1000:5.0f}±{out.latency_stddev*1000:4.0f} ms  dur {out.duration:5.0f}s  [{time.time()-t0:.0f}s]")
