"""Second calibration pass: bursty 4MB chunks."""
import time
from repro.core.config import ExperimentConfig, WorkloadConfig, TenantConfig
from repro.resources import ServerParams, DiskParams, CpuParams, NetworkParams, MB, GB, mb_per_sec
from repro.experiments import MigrationSpec, run_single_tenant

def make_cfg(lam, buf, chunk_mb=4, seq=24):
    server = ServerParams(cpu=CpuParams(cores=4),
                          disk=DiskParams(seek_time=5e-3, sequential_bandwidth=seq*MB, random_bandwidth=60*MB),
                          network=NetworkParams())
    return ExperimentConfig(workload=WorkloadConfig(arrival_rate=lam),
                            tenant=TenantConfig(data_bytes=GB, buffer_bytes=buf),
                            server=server, chunk_bytes=int(chunk_mb*MB), seed=42)

t0=time.time()
print("== CASE STUDY candidates (anchors 79/153/410/720-swingy/diverge) ==")
for lam in (6, 7, 8):
    cfg = make_cfg(lam, 256*MB)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=120)
    row = [f"base:{base.mean_latency*1000:5.0f}±{base.latency_stddev*1000:4.0f}"]
    for r in (4, 8, 12, 16):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        row.append(f"{r}MB:{out.mean_latency*1000:6.0f}±{out.latency_stddev*1000:5.0f}({out.duration:.0f}s)")
    print(f"lam={lam}: " + " ".join(row), f"[{time.time()-t0:.0f}s]")

print("== EVAL candidates (knee ~25; latencies ~500 @5MB to ~8000 @30MB) ==")
for lam in (2.5, 3.0, 3.5):
    cfg = make_cfg(lam, 128*MB)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=120)
    row = [f"base:{base.mean_latency*1000:5.0f}"]
    for r in (5, 10, 15, 20, 25, 30):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        row.append(f"{r}:{out.mean_latency*1000:6.0f}")
    print(f"lam={lam}: " + " ".join(row), f"[{time.time()-t0:.0f}s]")
