"""Sixth pass: final preset selection."""
import time
from repro.core.config import ExperimentConfig, WorkloadConfig, TenantConfig
from repro.resources import ServerParams, DiskParams, CpuParams, NetworkParams, MB, GB, mb_per_sec
from repro.experiments import MigrationSpec, run_single_tenant

def make_cfg(lam, buf, chunk_mb=2, burst=2.5, seq=24, max_rate=24, seed=42):
    server = ServerParams(cpu=CpuParams(cores=4),
                          disk=DiskParams(seek_time=5e-3, sequential_bandwidth=seq*MB, random_bandwidth=60*MB),
                          network=NetworkParams())
    return ExperimentConfig(workload=WorkloadConfig(arrival_rate=lam, burst_factor=burst),
                            tenant=TenantConfig(data_bytes=GB, buffer_bytes=buf),
                            server=server, chunk_bytes=int(chunk_mb*MB),
                            max_migration_rate=max_rate*MB, seed=seed)

t0 = time.time()
print("== case-study candidates ==")
for lam, burst, chunk in ((6.0, 2.5, 2), (6.5, 2.0, 2), (6.0, 2.5, 4), (6.2, 2.2, 2)):
    cfg = make_cfg(lam, 256*MB, chunk_mb=chunk, burst=burst)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=180)
    row = [f"base:{base.mean_latency*1000:4.0f}"]
    for r in (4, 8, 12, 16):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        row.append(f"{r}:{out.mean_latency*1000:6.0f}±{out.latency_stddev*1000:5.0f}")
    print(f"lam={lam} burst={burst} chunk={chunk}: " + " ".join(row), f"[{time.time()-t0:.0f}s]")

print("== eval candidates: wider dynamic sweep? chunk=4 ==")
for lam, chunk in ((3.5, 4), (4.0, 4)):
    cfg = make_cfg(lam, 128*MB, chunk_mb=chunk)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=120)
    row = [f"base:{base.mean_latency*1000:4.0f}"]
    for r in (5, 10, 15, 18, 21):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        row.append(f"{r}:{out.mean_latency*1000:5.0f}")
    print(f"lam={lam} chunk={chunk} FIXED: " + " ".join(row), f"[{time.time()-t0:.0f}s]")
    drow = []
    for sp in (0.5, 1.0, 2.5, 5.0):
        out = run_single_tenant(cfg, MigrationSpec.dynamic(sp), warmup=15)
        drow.append(f"sp{sp*1000:.0f}:{out.average_migration_rate/MB:5.1f}MB/s")
    print(f"   DYN: " + " ".join(drow), f"[{time.time()-t0:.0f}s]")
