"""Fourth pass: bursty workloads; fixed curve vs slacker curve."""
import time
from repro.core.config import ExperimentConfig, WorkloadConfig, TenantConfig
from repro.resources import ServerParams, DiskParams, CpuParams, NetworkParams, MB, GB, mb_per_sec
from repro.experiments import MigrationSpec, run_single_tenant

def make_cfg(lam, buf, chunk_mb, burst=2.5, seq=24, max_rate=24):
    server = ServerParams(cpu=CpuParams(cores=4),
                          disk=DiskParams(seek_time=5e-3, sequential_bandwidth=seq*MB, random_bandwidth=60*MB),
                          network=NetworkParams())
    return ExperimentConfig(workload=WorkloadConfig(arrival_rate=lam, burst_factor=burst),
                            tenant=TenantConfig(data_bytes=GB, buffer_bytes=buf),
                            server=server, chunk_bytes=int(chunk_mb*MB),
                            max_migration_rate=max_rate*MB, seed=42)

t0=time.time()
for chunk_mb, lam in ((2, 4.0), (8, 4.0)):
    cfg = make_cfg(lam, 128*MB, chunk_mb)
    base = run_single_tenant(cfg, MigrationSpec.none(), warmup=15, baseline_duration=120)
    row = [f"base:{base.mean_latency*1000:5.0f}"]
    for r in (3, 6, 9, 12, 15, 18):
        out = run_single_tenant(cfg, MigrationSpec.fixed(mb_per_sec(r)), warmup=15)
        row.append(f"{r}:{out.mean_latency*1000:5.0f}±{out.latency_stddev*1000:5.0f}")
    print(f"FIXED chunk={chunk_mb} lam={lam}: " + " ".join(row), f"[{time.time()-t0:.0f}s]")
    for sp in (0.5, 1.0, 2.5, 5.0):
        out = run_single_tenant(cfg, MigrationSpec.dynamic(sp), warmup=15)
        print(f"  DYN sp={sp*1000:4.0f} -> rate {out.average_migration_rate/MB:5.1f}  lat {out.mean_latency*1000:5.0f}±{out.latency_stddev*1000:5.0f}  dur {out.duration:4.0f}s  [{time.time()-t0:.0f}s]")
