"""Experiment drivers: one module per paper figure, plus the shared harness.

The registry maps each experiment id (the paper's figure/section
number) to the module whose ``run()`` regenerates it; see DESIGN.md for
the full index and EXPERIMENTS.md for paper-vs-measured results.
"""

from . import (
    ext_source_target,
    fig5_throttle_sweep,
    fig6_overload,
    fig7_tradeoff,
    fig11_setpoint_sweep,
    fig12_timeseries,
    fig13a_dynamic_workload,
    fig13b_multitenant,
    stop_and_copy_downtime,
)
from .common import DEFAULT_SCALE, scaled_config
from .harness import (
    ExperimentOutcome,
    MigrationSpec,
    RateChange,
    TenantOutcome,
    attach_workload,
    run_multi_tenant,
    run_single_tenant,
)

#: Experiment id -> driver module with a ``run()`` entry point.
REGISTRY = {
    "fig5": fig5_throttle_sweep,
    "fig6": fig6_overload,
    "fig7": fig7_tradeoff,
    "fig11": fig11_setpoint_sweep,
    "fig12": fig12_timeseries,
    "fig13a": fig13a_dynamic_workload,
    "fig13b": fig13b_multitenant,
    "stop-and-copy": stop_and_copy_downtime,
    "ext-source-target": ext_source_target,
}

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentOutcome",
    "MigrationSpec",
    "RateChange",
    "REGISTRY",
    "TenantOutcome",
    "attach_workload",
    "run_multi_tenant",
    "run_single_tenant",
    "scaled_config",
]
