"""Fleet sweep: wave-scheduled migrations at datacenter scale.

The ROADMAP's north-star scenario: a :class:`~repro.middleware.cluster.FleetSpec`
fleet (default 100 nodes / 1000 heterogeneous tenants), a placement
manager running *waves* of concurrent PID-throttled migrations under
per-node slack budgets, and fleet-level SLOs — pooled p99 latency,
migration throughput, and time-to-drain — reported per run and, with
observability attached, threaded into a :class:`~repro.obs.RunReport`.

Two scenarios ride the :class:`~repro.parallel.SweepRunner`:

* ``drain`` — a maintenance drain of one node (the operational runbook
  case): the manager evacuates every tenant in budget-bounded waves
  while the rest of the fleet serves traffic;
* ``rebalance`` — continuous rebalancing: one node's tenants run hot,
  the detector trips, and the manager relieves the hotspot with
  concurrent wave migrations.

Every point is a pure function of (spec, seed): the ``fingerprint``
hashes the full observable trajectory (final census, every placement
decision, every latency sample) and must replay bit-identically across
process counts and runs — ``--check`` enforces it.  The per-node
slack-budget invariant (inbound + outbound reservations never exceed
capacity at any simulated time) is asserted on the ledger's audit
history after every run.

Run standalone::

    python -m repro.experiments.fleet_sweep --nodes 100 --tenants 1000
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms
from ..core.config import CASE_STUDY, ExperimentConfig
from ..faults import FaultInjector, FaultPlan, MessageFaults, ScheduledFault
from ..middleware.cluster import FleetSpec, SlackerCluster
from ..middleware.transport import RetryPolicy
from ..obs import Observability, RunReport
from ..parallel import SweepPoint, SweepRunner
from ..placement import LatencyHotspotDetector, PlacementManager
from ..resources.units import MB
from ..simulation import Environment, RandomStreams, Trace
from .common import scaled_config
from .harness import MigrationSpec, attach_workload

__all__ = ["FleetRecord", "fleet_point", "sweep_points", "run", "main"]

#: Task path of :func:`fleet_point` for :class:`SweepPoint`.
FLEET_TASK = "repro.experiments.fleet_sweep:fleet_point"

#: Simulated-seconds-per-hour, for the migration-throughput SLO.
_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class FleetRecord:
    """Compact, picklable outcome of one fleet scenario."""

    label: str
    #: "drain" or "rebalance".
    scenario: str
    #: Invariants that failed (empty = healthy run).
    violations: tuple[str, ...]
    #: SHA-256 over the full observable trajectory.
    fingerprint: str
    nodes: int
    tenants: int
    #: Wave-executor outcome counters.
    migrations: int
    aborted: int
    skipped: int
    waves: int
    #: Fleet SLOs.
    p99_latency: float
    migrations_per_hour: float
    #: Seconds to empty the drained node; None for rebalance points.
    time_to_drain: Optional[float]
    #: Highest per-node budget ever in use (must stay <= capacity).
    budget_peak_used: float
    drained_node: Optional[str]
    #: Tenants left on the drained node (0 = fully drained).
    remaining: int
    sim_end: float
    #: Kernel events processed during the run.  Excluded from
    #: ``fingerprint`` on purpose: tick coalescing changes how many
    #: events a trajectory costs, never the trajectory itself.
    events: int = 0
    #: Tick events the coalesced timers elided (``events + elided`` is
    #: the one-event-per-tick cost of the same trajectory).
    elided: int = 0
    #: Observability snapshot when run with ``observe=True``; excluded
    #: from ``fingerprint`` (watching must not change the trajectory).
    report: Optional[RunReport] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(pct / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def fleet_point(
    config: ExperimentConfig,
    spec: MigrationSpec,
    label: str = "",
    scenario: str = "drain",
    nodes: int = 20,
    tenants: int = 100,
    min_tenant_mb: int = 2,
    max_tenant_mb: int = 16,
    max_concurrent: int = 8,
    max_streams_per_node: int = 2,
    interval: float = 5.0,
    cooldown: float = 10.0,
    warmup: float = 20.0,
    run_limit: float = 600.0,
    arrival_rate: float = 2.0,
    active_stride: int = 10,
    hot_rate_factor: float = 8.0,
    latency_threshold: float = 0.05,
    scheduled: tuple = (),
    observe: bool = False,
) -> FleetRecord:
    """One fleet scenario: build, drive, audit, fingerprint.

    A :class:`FleetSpec` fleet is built from ``config.seed``; every
    ``active_stride``-th tenant gets a workload client (plus, for the
    rebalance scenario, every tenant of the hot node, at
    ``hot_rate_factor`` times the base ``arrival_rate``).  ``scenario``
    picks the driver: ``"drain"`` evacuates the first node,
    ``"rebalance"`` runs the autonomous manager loop against the hot
    node.  ``scheduled`` injects faults (dict-tuples as in the chaos
    sweep) on a hardened control plane — the drain-under-crash case.
    """
    if scenario not in ("drain", "rebalance"):
        raise ValueError(f"scenario must be 'drain' or 'rebalance', got {scenario!r}")
    setpoint = spec.setpoint if spec.setpoint is not None else 1.0

    streams = RandomStreams(config.seed)
    trace = Trace()
    fleet_spec = FleetSpec(
        nodes=nodes,
        tenants=tenants,
        min_tenant_bytes=min_tenant_mb * MB,
        max_tenant_bytes=max_tenant_mb * MB,
    )
    hardened = bool(scheduled)
    env = Environment()
    cluster = SlackerCluster.build_fleet(
        env,
        fleet_spec,
        streams=streams,
        trace=trace,
        retry_policy=RetryPolicy() if hardened else None,
    )
    injector = None
    if hardened:
        plan = FaultPlan(
            messages=MessageFaults(),
            scheduled=tuple(ScheduledFault(**dict(s)) for s in scheduled),
        )
        injector = FaultInjector(env, plan, streams).attach(cluster)
        # Same liveness tuning as the chaos sweep: the detector horizon
        # (interval * miss_threshold = 1.5 s) must exceed the heartbeat
        # period or every peer reads as perpetually silent.
        cluster.start_heartbeats(0.5)
        cluster.start_failure_detectors(0.5, 3.0)
    obs = Observability(env).attach(cluster) if observe else None

    names = fleet_spec.node_names()
    drain_node = names[0] if scenario == "drain" else None
    hot_node = names[1 % len(names)] if scenario == "rebalance" else None

    # Attach workload clients: a deterministic sample of the fleet,
    # plus every tenant of the hot node (they must emit the latency
    # signal the detector trips on).
    clients = []
    for tenant_id in range(tenants):
        home = cluster.locate(tenant_id)
        is_hot = hot_node is not None and home == hot_node
        if tenant_id % active_stride and not is_hot:
            continue
        node = cluster.node(home)
        tenant = node.registry.get(tenant_id)
        tag = f"tenant-{tenant_id}"
        rate = arrival_rate * (hot_rate_factor if is_hot else 1.0)
        client, _ = attach_workload(
            cluster, config, tenant, streams, trace, series=tag, arrival_rate=rate
        )
        client.start()
        node.attach_latency_series(tenant_id, trace.series(tag))
        clients.append(client)

    detector = LatencyHotspotDetector(latency_threshold=latency_threshold)
    manager = PlacementManager(
        cluster,
        trace,
        setpoint=setpoint,
        detector=detector,
        interval=interval,
        cooldown=cooldown,
        max_concurrent=max_concurrent,
        max_streams_per_node=max_streams_per_node,
        obs=obs,
    )

    drain_report = None
    if scenario == "drain":

        def driver():
            yield env.timeout(warmup)
            report = yield env.process(manager.drain(drain_node))
            return report

        proc = env.process(driver())
        env.run(until=env.any_of([proc, env.timeout(run_limit)]))
        if proc.triggered:
            drain_report = proc.value
    else:
        env.process(manager.run())
        env.run(until=run_limit)
    for client in clients:
        client.stop()

    # -- fleet SLOs ------------------------------------------------------
    pooled: list[float] = []
    for client in clients:
        series = trace.series(client.series)
        pooled.extend(series.values)
    p99 = _percentile(pooled, 99.0)
    sim_hours = env.now / _SECONDS_PER_HOUR
    migrations_per_hour = (
        manager.stats.migrations / sim_hours if sim_hours > 0 else 0.0
    )
    time_to_drain = drain_report.duration if drain_report is not None else None

    # -- invariants ------------------------------------------------------
    violations: list[str] = []
    oversubscribed = manager.ledger.oversubscriptions()
    if oversubscribed:
        worst = max(e.used_after for e in oversubscribed)
        violations.append(
            f"slack budget oversubscribed: {len(oversubscribed)} events, "
            f"worst {worst:.3f} > capacity {manager.ledger.capacity:.3f}"
        )
    if manager.ledger.active_streams():
        violations.append(
            f"{manager.ledger.active_streams()} reservations never released"
        )
    census = cluster.tenant_census()
    for tenant_id in range(tenants):
        hosts = census.get(tenant_id, [])
        if len(hosts) != 1:
            violations.append(
                f"tenant {tenant_id} hosted on {hosts!r}, expected exactly one"
            )
            break  # one example is enough; the census hash has the rest
    if scenario == "drain":
        if drain_report is None:
            violations.append("drain did not finish within the run limit")
        elif not drain_report.drained and not hardened:
            violations.append(
                f"fault-free drain left {drain_report.remaining} tenants behind"
            )

    # -- fingerprint -----------------------------------------------------
    digest = hashlib.sha256()
    census_pairs = tuple(
        (tenant_id, tuple(hosts)) for tenant_id, hosts in sorted(census.items())
    )
    decision_rows = tuple(
        (
            d.time,
            d.proposal.tenant_id,
            d.proposal.source,
            d.proposal.target,
            d.outcome,
            d.duration,
            d.downtime,
        )
        for d in manager.stats.decisions
    )
    digest.update(repr((scenario, census_pairs, decision_rows, env.now)).encode())
    for client in clients:
        series = trace.series(client.series)
        digest.update(
            repr((client.series, tuple(series.times), tuple(series.values))).encode()
        )
    if injector is not None:
        digest.update(repr(sorted(injector.stats.counters().items())).encode())

    report = None
    if obs is not None:
        obs.set_fleet_slos(
            p99_latency_seconds=p99, migrations_per_hour=migrations_per_hour
        )
        report = obs.run_report(config, spec)

    return FleetRecord(
        label=label,
        scenario=scenario,
        violations=tuple(violations),
        fingerprint=digest.hexdigest(),
        nodes=nodes,
        tenants=tenants,
        migrations=manager.stats.migrations,
        aborted=manager.stats.aborted,
        skipped=manager.stats.skipped,
        waves=manager.stats.waves,
        p99_latency=p99,
        migrations_per_hour=migrations_per_hour,
        time_to_drain=time_to_drain,
        budget_peak_used=manager.ledger.peak_used,
        drained_node=drain_node,
        remaining=drain_report.remaining if drain_report is not None else 0,
        sim_end=env.now,
        events=env.processed_events,
        elided=env.elided_events,
        report=report,
    )


# -- the sweep ----------------------------------------------------------------


def sweep_points(
    config: Optional[ExperimentConfig] = None,
    nodes: int = 20,
    tenants: int = 100,
    seed: Optional[int] = None,
    setpoint: float = 1.0,
    run_limit: float = 600.0,
    observe: bool = False,
) -> list[SweepPoint]:
    """The fleet scenarios as independent sweep points."""
    cfg = scaled_config(config or CASE_STUDY, 1.0, seed)
    spec = MigrationSpec.dynamic(setpoint)
    shared = {
        "nodes": nodes,
        "tenants": tenants,
        "run_limit": run_limit,
        **({"observe": True} if observe else {}),
    }

    def point(label: str, **kwargs) -> SweepPoint:
        return SweepPoint(
            label=label,
            config=cfg,
            spec=spec,
            task=FLEET_TASK,
            kwargs={"label": label, **shared, **kwargs},
        )

    return [
        point("drain", scenario="drain"),
        point("rebalance", scenario="rebalance"),
    ]


def run(
    nodes: int = 20,
    tenants: int = 100,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    run_limit: float = 600.0,
    observe: bool = False,
    pool=None,
) -> dict[str, FleetRecord]:
    """Run both fleet scenarios; records keyed by scenario label."""
    runner = SweepRunner(jobs=jobs, pool=pool)
    return runner.run_labelled(
        sweep_points(
            config,
            nodes=nodes,
            tenants=tenants,
            seed=seed,
            run_limit=run_limit,
            observe=observe,
        )
    )


def table(records: dict[str, FleetRecord]) -> Table:
    out = Table(
        "Fleet sweep: wave-scheduled migrations under slack budgets",
        [
            "scenario",
            "fleet",
            "migrations",
            "waves",
            "p99 latency",
            "migrations/h",
            "time-to-drain",
            "budget peak",
            "invariants",
        ],
    )
    for label, rec in records.items():
        out.add_row(
            label,
            f"{rec.nodes}n/{rec.tenants}t",
            f"{rec.migrations} (+{rec.aborted} aborted)",
            str(rec.waves),
            format_ms(rec.p99_latency),
            f"{rec.migrations_per_hour:.0f}",
            f"{rec.time_to_drain:.0f} s" if rec.time_to_drain is not None else "-",
            f"{rec.budget_peak_used:.2f}",
            "OK" if rec.ok else "; ".join(rec.violations),
        )
    out.add_note(
        "per-node slack budgets cap concurrent inbound+outbound streams; "
        "fingerprints replay bit-identically"
    )
    return out


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--tenants", type=int, default=100)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--run-limit", type=float, default=600.0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any invariant is violated or replay diverges",
    )
    parser.add_argument("--out", type=str, default=None, help="write JSON report")
    parser.add_argument(
        "--report-out",
        type=str,
        default="fleet_obs",
        help="directory for per-scenario RunReport artifacts "
        "(SLO gauges included); '-' disables",
    )
    args = parser.parse_args(argv)

    observe = args.report_out != "-"
    records = run(
        nodes=args.nodes,
        tenants=args.tenants,
        seed=args.seed,
        jobs=args.jobs,
        run_limit=args.run_limit,
        observe=observe,
    )
    print(table(records).render())

    if observe:
        os.makedirs(args.report_out, exist_ok=True)
        for label, rec in records.items():
            if rec.report is not None:
                rec.report.write(
                    os.path.join(args.report_out, f"{label}.report.json")
                )

    replay_ok = True
    if args.check:
        # Replay serially, observability off: the trajectory must be a
        # pure function of (spec, seed) — independent of job count and
        # of whether anyone was watching.
        replay = run(
            nodes=args.nodes,
            tenants=args.tenants,
            seed=args.seed,
            jobs=1,
            run_limit=args.run_limit,
            observe=False,
        )
        for label, rec in records.items():
            if replay[label].fingerprint != rec.fingerprint:
                replay_ok = False
                print(f"REPLAY DIVERGED: {label}", file=sys.stderr)

    if args.out:
        payload = {
            label: {
                "scenario": rec.scenario,
                "violations": list(rec.violations),
                "fingerprint": rec.fingerprint,
                "nodes": rec.nodes,
                "tenants": rec.tenants,
                "migrations": rec.migrations,
                "aborted": rec.aborted,
                "skipped": rec.skipped,
                "waves": rec.waves,
                "p99_latency": rec.p99_latency,
                "migrations_per_hour": rec.migrations_per_hour,
                "time_to_drain": rec.time_to_drain,
                "budget_peak_used": rec.budget_peak_used,
                "remaining": rec.remaining,
                "sim_end": rec.sim_end,
            }
            for label, rec in records.items()
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    if args.check:
        bad = [label for label, rec in records.items() if not rec.ok]
        if bad or not replay_ok:
            print(f"invariant violations in: {bad}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
