"""Figure 5: transaction latency under fixed migration throttles.

The paper's slack case study (Section 3.2): a 1 GB tenant runs its
workload (a) with no migration, then while being live-migrated at
fixed (b) 4 MB/s, (c) 8 MB/s, and (d) 12 MB/s.  Mean latency rises
with migration speed — from 79 ms baseline to 153/410/720 ms — and the
12 MB/s run shows large swings while remaining bounded.

Run standalone::

    python -m repro.experiments.fig5_throttle_sweep
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_seconds
from ..core.config import CASE_STUDY, ExperimentConfig
from ..parallel import ResultCache, SweepPoint, SweepRunner
from ..resources.units import mb_per_sec
from .common import scaled_config
from .harness import ExperimentOutcome, MigrationSpec

__all__ = ["Fig5Result", "PAPER_ANCHORS", "run", "main"]

#: Paper-reported mean latencies (ms) for Figures 5a-5d.
PAPER_ANCHORS = {0: 79.0, 4: 153.0, 8: 410.0, 12: 720.0}

#: Paper-reported run durations (seconds) for Figures 5a-5d.
PAPER_DURATIONS = {0: 180.0, 4: 281.0, 8: 164.0, 12: 130.0}


@dataclass
class Fig5Result:
    """Measured outcomes, keyed by throttle rate in MB/s (0 = baseline).

    Outcomes are :class:`~repro.parallel.record.PointRecord` instances
    (compact sweep records); :class:`ExperimentOutcome` duck-types the
    same query API, so both work here.
    """

    outcomes: dict[int, "ExperimentOutcome"]

    def mean_ms(self, rate: int) -> float:
        return self.outcomes[rate].mean_latency * 1000

    def stddev_ms(self, rate: int) -> float:
        return self.outcomes[rate].latency_stddev * 1000

    def table(self) -> Table:
        table = Table(
            "Figure 5: latency under fixed migration throttles (case study)",
            ["run", "paper mean", "measured mean", "measured std", "duration"],
        )
        for rate in sorted(self.outcomes):
            out = self.outcomes[rate]
            label = "baseline (no migration)" if rate == 0 else f"{rate} MB/s throttle"
            table.add_row(
                label,
                format_ms(PAPER_ANCHORS[rate] / 1000),
                format_ms(out.mean_latency),
                format_ms(out.latency_stddev),
                format_seconds(out.duration),
            )
        table.add_note(
            "paper durations: "
            + ", ".join(f"{r or 'base'}: {d:.0f}s" for r, d in PAPER_DURATIONS.items())
        )
        return table


def sweep_points(
    cfg: ExperimentConfig,
    scale: float = 1.0,
    rates_mb: tuple[int, ...] = (4, 8, 12),
    warmup: float = 20.0,
) -> list[SweepPoint]:
    """The Figure 5 sweep as independent points: baseline + each rate."""
    points = [
        SweepPoint(
            label=0,
            config=cfg,
            spec=MigrationSpec.none(),
            kwargs={
                "warmup": warmup,
                "baseline_duration": 180.0 * max(scale, 0.25),
            },
        )
    ]
    for rate in rates_mb:
        points.append(
            SweepPoint(
                label=rate,
                config=cfg,
                spec=MigrationSpec.fixed(mb_per_sec(rate)),
                kwargs={"warmup": warmup},
            )
        )
    return points


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    rates_mb: tuple[int, ...] = (4, 8, 12),
    warmup: float = 20.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
    pool=None,
) -> Fig5Result:
    """Run the Figure 5 sweep; ``scale`` shrinks the database for speed.

    ``jobs`` fans the independent points across worker processes
    (results are bit-identical to ``jobs=1``); ``cache`` memoizes
    points on disk; ``chunksize`` batches points per worker dispatch;
    ``pool`` dispatches onto a shared warm
    :class:`~repro.parallel.WorkerPool` instead of a per-sweep executor.
    """
    cfg = scaled_config(config or CASE_STUDY, scale, seed)
    runner = SweepRunner(jobs=jobs, cache=cache, chunksize=chunksize, pool=pool)
    points = sweep_points(cfg, scale=scale, rates_mb=rates_mb, warmup=warmup)
    return Fig5Result(outcomes=runner.run_labelled(points))


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
