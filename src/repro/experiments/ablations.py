"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one design decision of the paper and measures
the alternative:

* :func:`run_pid_forms` — velocity form (paper) vs. classical
  positional form: integral windup under a mid-migration load surge
  (Section 4.2.3's motivation for the velocity algorithm).
* :func:`run_window_sizes` — the 3 s sliding window / 1 s timestep
  choice (Section 4.2.3) against shorter and longer windows.
* :func:`run_open_vs_closed` — the open workload generator (Section
  5.1.2, after Schroeder et al.) against YCSB's closed generator under
  an over-slack migration: only the open system exposes the overload.
* :func:`run_gain_variants` — the paper's hand-tuned gains (small Ki,
  large Kd) against proportional-heavy and integral-heavy variants.

Every ablation is a sweep of independent seed-deterministic runs, so
each driver builds :class:`~repro.parallel.SweepPoint` lists over the
module-level task functions below (``pid_form_point`` etc.) and
executes them through :class:`~repro.parallel.SweepRunner` — pass
``jobs=N`` to fan the variants across processes, ``cache=`` to memoize
them on disk.  Results are bit-identical to serial runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..control.pid import PAPER_GAINS, PidGains, PositionalPidController
from ..control.window import LatencyWindow
from ..core.config import EVALUATION, ExperimentConfig
from ..migration.controller import ControllerConfig, DynamicThrottleController
from ..migration.live import LiveMigration
from ..migration.throttle import Throttle
from ..parallel import ResultCache, SweepPoint, SweepRunner
from ..resources.units import MB, mb_per_sec, to_millis
from ..simulation import Environment, RandomStreams, Trace
from ..workload.client import BenchmarkClient, ClosedBenchmarkClient
from ..middleware.cluster import SlackerCluster
from ..middleware.node import NodeConfig
from .common import scaled_config
from .harness import MigrationSpec, attach_workload, run_single_tenant

__all__ = [
    "PidFormResult",
    "run_pid_forms",
    "WindowResult",
    "run_window_sizes",
    "OpenClosedResult",
    "run_open_vs_closed",
    "GainResult",
    "run_gain_variants",
]

#: Task paths of this module's worker entry points (see repro.parallel.tasks).
PID_FORM_TASK = "repro.experiments.ablations:pid_form_point"
WINDOW_SIZE_TASK = "repro.experiments.ablations:window_size_point"
OPEN_CLOSED_TASK = "repro.experiments.ablations:open_closed_point"


# -- shared low-level run: a dynamic migration with a chosen controller -------


def _controlled_migration(
    config: ExperimentConfig,
    setpoint: float,
    controller_factory,
    warmup: float,
    surge_factor: Optional[float] = None,
    surge_at: Optional[float] = None,
):
    """Run one migration driven by a custom latency controller.

    Returns (trace, outcome dict) with the latency series, the throttle
    series, and the migration result.
    """
    streams = RandomStreams(config.seed)
    env = Environment()
    cluster = SlackerCluster(
        env,
        ["source", "target"],
        server_params=config.server,
        node_config=NodeConfig(
            buffer_bytes=config.tenant.buffer_bytes,
            max_migration_rate=config.max_migration_rate,
            chunk_bytes=config.chunk_bytes,
        ),
        streams=streams,
    )
    trace = Trace()
    source = cluster.node("source")
    tenant = source.create_tenant(1, config.tenant.data_bytes)
    client, arrivals = attach_workload(
        cluster, config, tenant, streams, trace, series="latency"
    )
    client.start()

    def experiment():
        yield env.timeout(warmup)
        start = env.now
        throttle = Throttle(env, rate=0.0)
        migration = LiveMigration(
            env,
            tenant.engine,
            cluster.node("target").server,
            throttle,
            chunk_bytes=config.chunk_bytes,
            on_handover=lambda engine: setattr(tenant, "engine", engine),
        )
        migration_proc = env.process(migration.run())
        window = LatencyWindow([trace.series("latency")])
        controller = DynamicThrottleController(
            env,
            throttle,
            [window],
            ControllerConfig(
                setpoint=setpoint, max_rate=config.max_migration_rate
            ),
            controller=controller_factory(setpoint),
            trace=trace,
            name="ablation",
        )
        env.process(controller.run(until=migration_proc))
        if surge_factor is not None:

            def surge():
                yield env.timeout(surge_at)
                arrivals.scale_rate(surge_factor)

            env.process(surge())
        result = yield migration_proc
        throttle.stop()
        controller.stop()
        return start, env.now, result

    proc = env.process(experiment())
    start, end, result = env.run(until=proc)
    client.stop()
    return trace, {"start": start, "end": end, "result": result}


def _window_mean(trace: Trace, series: str, start: float, end: float) -> float:
    values = trace.series(series).window_values(start, end)
    if not values:
        return math.nan
    return sum(values) / len(values)


# -- 1. velocity vs positional PID ------------------------------------------------


@dataclass
class PidFormResult:
    """One controller form's behaviour across a mid-migration surge."""

    form: str
    mean_latency: float
    #: Worst 3-second-window latency seen after the surge, seconds.
    post_surge_peak: float
    #: Seconds (controller steps) the window latency spent at more than
    #: twice the setpoint after the surge.
    seconds_far_above_setpoint: float
    migration_duration: float


def pid_form_point(
    config: ExperimentConfig,
    spec: MigrationSpec,
    form: str,
    surge_factor: float,
    surge_at: float,
) -> PidFormResult:
    """Worker task: one controller form's behaviour across a surge."""

    def velocity_factory(sp):
        return None  # DynamicThrottleController's default (velocity form)

    def positional_factory(sp):
        return PositionalPidController(
            PAPER_GAINS, setpoint=to_millis(sp), output_min=0.0, output_max=100.0
        )

    setpoint = spec.setpoint
    factory = velocity_factory if form == "velocity" else positional_factory
    trace, info = _controlled_migration(
        config, setpoint, factory, warmup=10.0,
        surge_factor=surge_factor, surge_at=surge_at,
    )
    start, end = info["start"], info["end"]
    window_series = trace.series("ablation:window_latency")
    post = window_series.between(start + surge_at, end)
    peak = max(post.values) if post.values else math.nan
    far_above = sum(1.0 for v in post.values if v > 2 * setpoint)
    return PidFormResult(
        form=form,
        mean_latency=_window_mean(trace, "latency", start, end),
        post_surge_peak=peak,
        seconds_far_above_setpoint=far_above,
        migration_duration=end - start,
    )


def run_pid_forms(
    scale: float = 0.5,
    config: Optional[ExperimentConfig] = None,
    setpoint: float = 1.0,
    surge_factor: float = 2.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    pool=None,
) -> dict[str, PidFormResult]:
    """Velocity (paper) vs. positional PID across a workload surge.

    The workload starts *light* (half rate) so the controller sits far
    below the setpoint for a long time — the windup trap — then surges.
    """
    base = scaled_config(config or EVALUATION, scale)
    light = replace(
        base, workload=replace(base.workload, arrival_rate=base.workload.arrival_rate / 2)
    )
    surge_at = 15.0 * max(scale, 0.25)
    points = [
        SweepPoint(
            label=form,
            config=light,
            spec=MigrationSpec.dynamic(setpoint),
            task=PID_FORM_TASK,
            kwargs={
                "form": form,
                "surge_factor": surge_factor,
                "surge_at": surge_at,
            },
        )
        for form in ("velocity", "positional")
    ]
    return SweepRunner(jobs=jobs, cache=cache, pool=pool).run_labelled(points)


# -- 2. window size / timestep -----------------------------------------------------


@dataclass
class WindowResult:
    """Controller stability at one window size."""

    window: float
    mean_latency: float
    latency_stddev: float
    throttle_stddev: float
    migration_duration: float


def window_size_point(
    config: ExperimentConfig, spec: MigrationSpec, window: float
) -> WindowResult:
    """Worker task: controller stability at one sliding-window size."""
    setpoint = spec.setpoint
    streams = RandomStreams(config.seed)
    env = Environment()
    cluster = SlackerCluster(
        env, ["source", "target"], server_params=config.server,
        node_config=NodeConfig(
            buffer_bytes=config.tenant.buffer_bytes,
            max_migration_rate=config.max_migration_rate,
            chunk_bytes=config.chunk_bytes,
            window=window,
        ),
        streams=streams,
    )
    trace = Trace()
    source = cluster.node("source")
    tenant = source.create_tenant(1, config.tenant.data_bytes)
    client, _ = attach_workload(
        cluster, config, tenant, streams, trace, series="latency"
    )
    client.start()
    source.attach_latency_series(1, trace.series("latency"))

    def experiment():
        yield env.timeout(10.0)
        start = env.now
        result = yield env.process(
            source.migrate_tenant(1, "target", setpoint=setpoint)
        )
        return start, env.now, result

    proc = env.process(experiment())
    start, end, _result = env.run(until=proc)
    client.stop()
    latencies = trace.series("latency").window_values(start, end)
    throttle = source.trace["source:mig-1:throttle_rate"]
    mean = sum(latencies) / len(latencies) if latencies else math.nan
    std = (
        math.sqrt(sum((v - mean) ** 2 for v in latencies) / len(latencies))
        if latencies
        else math.nan
    )
    return WindowResult(
        window=window,
        mean_latency=mean,
        latency_stddev=std,
        throttle_stddev=throttle.stddev(),
        migration_duration=end - start,
    )


def run_window_sizes(
    scale: float = 0.5,
    config: Optional[ExperimentConfig] = None,
    setpoint: float = 1.0,
    windows: Sequence[float] = (1.0, 3.0, 9.0),
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    pool=None,
) -> dict[float, WindowResult]:
    """Sweep the sliding-window size around the paper's 3 s choice."""
    base = scaled_config(config or EVALUATION, scale)
    points = [
        SweepPoint(
            label=window,
            config=base,
            spec=MigrationSpec.dynamic(setpoint),
            task=WINDOW_SIZE_TASK,
            kwargs={"window": window},
        )
        for window in windows
    ]
    return SweepRunner(jobs=jobs, cache=cache, pool=pool).run_labelled(points)


# -- 3. open vs closed workload generator ------------------------------------------


@dataclass
class OpenClosedResult:
    """Behaviour of one generator type under an over-slack migration."""

    generator: str
    mean_latency: float
    final_third_latency: float
    completed: int
    diverged: bool


def _open_generator_point(config: ExperimentConfig, spec: MigrationSpec):
    """Open generator: the standard harness path."""
    from ..analysis.stats import is_diverging

    outcome = run_single_tenant(config, spec, warmup=10)
    series = outcome.tenants[0].latency
    start, end = outcome.window_start, outcome.window_end
    span = end - start
    tail = series.window_values(end - span / 3, end)
    return OpenClosedResult(
        generator="open",
        mean_latency=outcome.mean_latency,
        final_third_latency=sum(tail) / len(tail) if tail else math.nan,
        completed=outcome.tenants[0].completed,
        diverged=is_diverging(series, start, end),
    )


def _closed_generator_point(config: ExperimentConfig, spec: MigrationSpec):
    """Closed generator: same tenant/migration, MPL virtual users."""
    from ..analysis.stats import is_diverging
    from ..workload.distributions import UniformChooser
    from ..workload.generator import TransactionFactory

    streams = RandomStreams(config.seed)
    env = Environment()
    cluster = SlackerCluster(
        env, ["source", "target"], server_params=config.server,
        node_config=NodeConfig(
            buffer_bytes=config.tenant.buffer_bytes,
            max_migration_rate=config.max_migration_rate,
            chunk_bytes=config.chunk_bytes,
        ),
        streams=streams,
    )
    trace = Trace()
    source = cluster.node("source")
    tenant = source.create_tenant(1, config.tenant.data_bytes)
    # Build the same factory the open client would use.
    layout = tenant.engine.layout
    factory = TransactionFactory(
        layout,
        UniformChooser(layout.num_rows, streams.stream("keys")),
        streams.stream("ops"),
        mix=config.workload.mix,
        ops_per_txn=config.workload.ops_per_txn,
    )
    client = ClosedBenchmarkClient(
        env, tenant, factory, mpl=config.workload.mpl, trace=trace, series="latency"
    )
    client.start()

    def experiment():
        yield env.timeout(10.0)
        start = env.now
        result = yield env.process(
            source.migrate_tenant(1, "target", fixed_rate=spec.rate)
        )
        return start, env.now, result

    proc = env.process(experiment())
    start, end, _ = env.run(until=proc)
    client.stop()
    series = trace.series("latency")
    span = end - start
    values = series.window_values(start, end)
    tail = series.window_values(end - span / 3, end)
    return OpenClosedResult(
        generator="closed",
        mean_latency=sum(values) / len(values) if values else math.nan,
        final_third_latency=sum(tail) / len(tail) if tail else math.nan,
        completed=len(values),
        diverged=is_diverging(series, start, end),
    )


def open_closed_point(
    config: ExperimentConfig, spec: MigrationSpec, generator: str
) -> OpenClosedResult:
    """Worker task: one generator type under an over-slack migration."""
    if generator == "open":
        return _open_generator_point(config, spec)
    return _closed_generator_point(config, spec)


def run_open_vs_closed(
    scale: float = 0.5,
    config: Optional[ExperimentConfig] = None,
    overload_rate_mb: float = 16.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    pool=None,
) -> dict[str, OpenClosedResult]:
    """Only the open generator exposes overload (Figure 6's premise).

    The closed generator couples arrivals to completions, so under the
    same over-slack migration it self-throttles: latency stays bounded
    while *throughput* silently collapses — Schroeder et al.'s trap.
    """
    from ..core.config import CASE_STUDY

    base = scaled_config(config or CASE_STUDY, scale)
    points = [
        SweepPoint(
            label=generator,
            config=base,
            spec=MigrationSpec.fixed(mb_per_sec(overload_rate_mb)),
            task=OPEN_CLOSED_TASK,
            kwargs={"generator": generator},
        )
        for generator in ("open", "closed")
    ]
    return SweepRunner(jobs=jobs, cache=cache, pool=pool).run_labelled(points)


# -- 4. gain variants ----------------------------------------------------------------


@dataclass
class GainResult:
    """One gain set's control quality."""

    label: str
    gains: PidGains
    mean_latency: float
    latency_stddev: float
    #: Standard deviation of the throttle rate (oscillation measure).
    throttle_stddev: float
    average_rate_mb: float


def run_gain_variants(
    scale: float = 0.5,
    config: Optional[ExperimentConfig] = None,
    setpoint: float = 1.0,
    variants: Optional[dict[str, PidGains]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    pool=None,
) -> dict[str, GainResult]:
    """The paper's gains vs. integral-heavy and derivative-free sets."""
    base = scaled_config(config or EVALUATION, scale)
    if variants is None:
        variants = {
            "paper (Kd large, Ki small)": PAPER_GAINS,
            "integral-heavy": PidGains(kp=0.025, ki=0.05, kd=0.0),
            "no-derivative": PidGains(kp=0.025, ki=0.005, kd=0.0),
        }
    points = [
        SweepPoint(
            label=label,
            config=replace(base, gains=gains),
            spec=MigrationSpec.dynamic(setpoint),
            kwargs={"warmup": 10},
        )
        for label, gains in variants.items()
    ]
    records = SweepRunner(jobs=jobs, cache=cache, pool=pool).run_labelled(points)
    return {
        label: GainResult(
            label=label,
            gains=gains,
            mean_latency=record.mean_latency,
            latency_stddev=record.latency_stddev,
            throttle_stddev=record.throttle_series.stddev(),
            average_rate_mb=record.average_migration_rate / MB,
        )
        for label, gains in variants.items()
        for record in (records[label],)
    }
