"""Shared experiment harness.

Builds the paper's Figure 10 setup — a Slacker cluster, one or more
tenants with independent YCSB-style clients, and an optional migration
of one tenant from the primary to the secondary server — and returns
the measurements every figure needs: the latency time series, the
throttle time series (for dynamic runs), and the migration result.

All figure drivers and benchmark targets call :func:`run_single_tenant`
or :func:`run_multi_tenant` with an :class:`ExperimentConfig` preset
(:data:`~repro.core.config.CASE_STUDY` or
:data:`~repro.core.config.EVALUATION`) plus a :class:`MigrationSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.config import ExperimentConfig
from ..middleware.cluster import SlackerCluster
from ..middleware.node import NodeConfig
from ..migration.live import LiveMigrationResult
from ..migration.on_demand import OnDemandMigration
from ..migration.stop_and_copy import (
    DumpReimportMigration,
    StopAndCopyMigration,
    StopAndCopyResult,
)
from ..migration.throttle import Throttle
from ..obs import Observability, RunReport
from ..simulation import Environment, RandomStreams, Series, Trace
from ..workload.client import BenchmarkClient
from ..workload.distributions import (
    HotspotChooser,
    LatestChooser,
    UniformChooser,
    ZipfianChooser,
)
from ..workload.generator import (
    BurstModulator,
    MarkovModulatedArrivals,
    PoissonArrivals,
    TransactionFactory,
)

__all__ = [
    "MigrationSpec",
    "RateChange",
    "TenantOutcome",
    "ExperimentOutcome",
    "PooledLatencyStats",
    "run_single_tenant",
    "run_multi_tenant",
]


@dataclass(frozen=True)
class MigrationSpec:
    """What migration (if any) an experiment performs."""

    #: "none", "fixed", "dynamic", "stop-and-copy", "dump-reimport",
    #: "fluid", or "on-demand".
    kind: str = "none"
    #: Fixed throttle rate, bytes/second (kind="fixed"/"stop-and-copy"/
    #: "fluid"; for "on-demand" it meters the background push).
    rate: Optional[float] = None
    #: Latency setpoint, seconds (kind="dynamic").
    setpoint: Optional[float] = None
    #: Override for the 100 %-output rate (kind="dynamic").
    max_rate: Optional[float] = None
    #: Number of chunks for kind="fluid" (0 = module default).
    chunks: int = 0

    def __post_init__(self) -> None:
        kinds = (
            "none",
            "fixed",
            "dynamic",
            "stop-and-copy",
            "dump-reimport",
            "fluid",
            "on-demand",
        )
        if self.kind not in kinds:
            raise ValueError(f"kind must be one of {kinds}, got {self.kind!r}")
        if self.kind == "fixed" and (self.rate is None or self.rate <= 0):
            raise ValueError("fixed migration needs a positive rate")
        if self.kind == "dynamic" and (self.setpoint is None or self.setpoint <= 0):
            raise ValueError("dynamic migration needs a positive setpoint")
        if self.kind == "fluid" and (self.rate is None or self.rate <= 0):
            raise ValueError("fluid migration needs a positive rate")
        if self.kind == "on-demand" and self.rate is not None and self.rate <= 0:
            raise ValueError("on-demand push rate must be positive when set")

    @classmethod
    def none(cls) -> "MigrationSpec":
        return cls(kind="none")

    @classmethod
    def fixed(cls, rate: float) -> "MigrationSpec":
        return cls(kind="fixed", rate=rate)

    @classmethod
    def dynamic(
        cls, setpoint: float, max_rate: Optional[float] = None
    ) -> "MigrationSpec":
        return cls(kind="dynamic", setpoint=setpoint, max_rate=max_rate)

    @classmethod
    def fluid(cls, rate: float, chunks: int = 0) -> "MigrationSpec":
        return cls(kind="fluid", rate=rate, chunks=chunks)

    @classmethod
    def on_demand(cls, rate: Optional[float] = None) -> "MigrationSpec":
        return cls(kind="on-demand", rate=rate)


@dataclass(frozen=True)
class RateChange:
    """A scheduled mid-run workload change (Figure 13a's +40 % surge)."""

    #: Seconds after the measurement window opens.
    at: float
    #: Multiplier applied to the arrival rate.
    factor: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")


@dataclass
class TenantOutcome:
    """Per-tenant measurements from one run."""

    tenant_id: int
    latency: Series
    completed: int

    def window_latencies(self, start: float, end: float) -> list[float]:
        return self.latency.window_values(start, end)


class PooledLatencyStats:
    """Pooled latency summaries over a measurement window, cached.

    Mixed into :class:`ExperimentOutcome` and the parallel runner's
    :class:`~repro.parallel.record.PointRecord`; the host class provides
    ``tenants`` (objects with ``window_latencies(start, end)``),
    ``window_start``, and ``window_end``.

    Figure drivers query ``mean_latency``, ``latency_stddev``, and a
    percentile or two off the *same* outcome, and each used to rebuild
    (and for percentiles, re-sort) the pooled list from the raw series —
    O(n) or O(n log n) per query over hundreds of thousands of samples.
    The pooled and sorted lists are computed once per outcome and
    reused; outcomes are effectively immutable once built, so the cache
    never needs invalidating.  Treat the returned lists as read-only.
    """

    def pooled_latencies(self) -> list[float]:
        """All tenants' latencies inside the measurement window, seconds.

        The list is cached on first use — do not mutate it.
        """
        cached = getattr(self, "_pooled_cache", None)
        if cached is None:
            pooled: list[float] = []
            for tenant in self.tenants:
                pooled.extend(
                    tenant.window_latencies(self.window_start, self.window_end)
                )
            self._pooled_cache = cached = pooled
        return cached

    def _sorted_latencies(self) -> list[float]:
        cached = getattr(self, "_sorted_cache", None)
        if cached is None:
            self._sorted_cache = cached = sorted(self.pooled_latencies())
        return cached

    @property
    def mean_latency(self) -> float:
        values = self.pooled_latencies()
        return sum(values) / len(values) if values else math.nan

    @property
    def latency_stddev(self) -> float:
        values = self.pooled_latencies()
        if not values:
            return math.nan
        mu = sum(values) / len(values)
        return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))

    def latency_percentile(self, pct: float) -> float:
        values = self._sorted_latencies()
        if not values:
            return math.nan
        rank = max(1, math.ceil(pct / 100.0 * len(values)))
        return values[rank - 1]

    @property
    def duration(self) -> float:
        return self.window_end - self.window_start


@dataclass
class ExperimentOutcome(PooledLatencyStats):
    """Everything a figure driver needs from one run."""

    config: ExperimentConfig
    spec: MigrationSpec
    trace: Trace
    tenants: list[TenantOutcome]
    #: Measurement window [start, end): migration span, or the
    #: configured duration for baseline runs.
    window_start: float
    window_end: float
    migration: Optional[LiveMigrationResult | StopAndCopyResult] = None
    #: Throttle-rate series recorded by the PID loop (dynamic runs).
    throttle_series: Optional[Series] = None
    controller_latency_series: Optional[Series] = None
    extras: dict = field(default_factory=dict)
    #: Metrics/span snapshot when the run was observed (``observe=True``).
    run_report: Optional[RunReport] = None

    @property
    def average_migration_rate(self) -> float:
        """Mean transfer rate over the migration, bytes/second."""
        if self.migration is None:
            return 0.0
        if isinstance(self.migration, StopAndCopyResult):
            return self.migration.bytes_copied / max(self.migration.duration, 1e-9)
        return self.migration.average_rate


def _make_chooser(kind: str, num_rows: int, rng):
    if kind == "uniform":
        return UniformChooser(num_rows, rng)
    if kind == "zipfian":
        return ZipfianChooser(num_rows, rng)
    if kind == "latest":
        return LatestChooser(num_rows, rng)
    if kind == "hotspot":
        return HotspotChooser(num_rows, rng)
    raise ValueError(f"unknown key distribution {kind!r}")


def _build_cluster(
    config: ExperimentConfig,
    streams: RandomStreams,
    retry_policy=None,
    lease_ttl=None,
) -> SlackerCluster:
    env = Environment()
    node_config = NodeConfig(
        buffer_bytes=config.tenant.buffer_bytes,
        max_migration_rate=config.max_migration_rate,
        chunk_bytes=config.chunk_bytes,
        gains=config.gains,
    )
    return SlackerCluster(
        env,
        ["source", "target"],
        server_params=config.server,
        node_config=node_config,
        streams=streams,
        retry_policy=retry_policy,
        lease_ttl=lease_ttl,
    )


def attach_workload(
    cluster: SlackerCluster,
    config: ExperimentConfig,
    tenant,
    streams: RandomStreams,
    trace: Trace,
    series: str,
    arrival_rate: Optional[float] = None,
    modulator: Optional[BurstModulator] = None,
) -> tuple[BenchmarkClient, PoissonArrivals]:
    env = cluster.env
    layout = tenant.engine.layout
    tag = f"tenant-{tenant.tenant_id}"
    chooser = _make_chooser(
        config.workload.key_distribution, layout.num_rows, streams.stream(f"{tag}:keys")
    )
    factory = TransactionFactory(
        layout,
        chooser,
        streams.stream(f"{tag}:ops"),
        mix=config.workload.mix,
        ops_per_txn=config.workload.ops_per_txn,
    )
    rate = arrival_rate or config.workload.arrival_rate
    if config.workload.burst_factor > 1.0:
        arrivals = MarkovModulatedArrivals(
            env,
            rate,
            streams.stream(f"{tag}:arrivals"),
            burst_factor=config.workload.burst_factor,
            mean_normal=config.workload.burst_mean_normal,
            mean_burst=config.workload.burst_mean_burst,
            modulator=modulator,
        )
    else:
        arrivals = PoissonArrivals(rate, streams.stream(f"{tag}:arrivals"))
    client = BenchmarkClient(
        env,
        tenant,
        factory,
        arrivals,
        mpl=config.workload.mpl,
        trace=trace,
        series=series,
    )
    return client, arrivals


def _run_migration_spec(cluster, spec, tenant_id, config):
    """Process: run the configured migration through the source node."""
    source = cluster.node("source")
    if spec.kind == "fixed":
        result = yield cluster.env.process(
            source.migrate_tenant(tenant_id, "target", fixed_rate=spec.rate)
        )
        return result
    if spec.kind == "dynamic":
        result = yield cluster.env.process(
            source.migrate_tenant(
                tenant_id,
                "target",
                setpoint=spec.setpoint,
                max_rate=spec.max_rate or config.max_migration_rate,
            )
        )
        return result
    if spec.kind == "fluid":
        result = yield cluster.env.process(
            source.migrate_tenant(
                tenant_id,
                "target",
                fixed_rate=spec.rate,
                chunks=spec.chunks or 16,
            )
        )
        return result
    if spec.kind == "on-demand":
        tenant = source.registry.get(tenant_id)
        throttle = (
            Throttle(cluster.env, rate=spec.rate) if spec.rate else None
        )
        migration = OnDemandMigration(
            cluster.env,
            tenant.engine,
            cluster.node("target").server,
            push_throttle=throttle,
            on_switch=lambda target: setattr(tenant, "engine", target),
        )
        try:
            result = yield cluster.env.process(migration.run())
        finally:
            if throttle is not None:
                throttle.stop()
        return result
    if spec.kind in ("stop-and-copy", "dump-reimport"):
        tenant = source.registry.get(tenant_id)
        cls = (
            StopAndCopyMigration
            if spec.kind == "stop-and-copy"
            else DumpReimportMigration
        )
        migration = cls(
            cluster.env,
            tenant.engine,
            cluster.node("target").server,
            chunk_bytes=config.chunk_bytes,
        )
        result = yield cluster.env.process(migration.run())
        tenant.engine = result.target
        return result
    raise ValueError(f"no migration to run for kind {spec.kind!r}")


def run_single_tenant(
    config: ExperimentConfig,
    spec: MigrationSpec,
    warmup: float = 20.0,
    cooldown: float = 5.0,
    baseline_duration: float = 180.0,
    rate_change: Optional[RateChange] = None,
    on_setup: Optional[Callable] = None,
    observe: bool = False,
    obs_trace_path: Optional[str] = None,
) -> ExperimentOutcome:
    """Run the paper's fundamental case: one tenant, one migration.

    * ``warmup`` seconds of workload run before the measurement window
      opens (cache warm-up, steady state).
    * For ``spec.kind == "none"`` the window is ``baseline_duration``
      seconds of plain workload (Figure 5a).
    * Otherwise the window spans the migration.
    * ``rate_change`` applies a mid-window arrival-rate change
      (Figure 13a).
    * ``on_setup(cluster, tenant, client)`` allows tests to customize.
    * ``observe`` attaches an :class:`~repro.obs.Observability` runtime
      and fills ``outcome.run_report``; ``obs_trace_path`` additionally
      writes the span trace as JSONL.  Observation is read-only, so the
      measured trajectories are bit-identical either way.
    """
    streams = RandomStreams(config.seed)
    cluster = _build_cluster(config, streams)
    env = cluster.env
    trace = Trace()
    obs = Observability(env).attach(cluster) if observe else None

    source = cluster.node("source")
    tenant = source.create_tenant(
        1, config.tenant.data_bytes, buffer_bytes=config.tenant.buffer_bytes
    )
    client, arrivals = attach_workload(
        cluster, config, tenant, streams, trace, series="tenant-1"
    )
    client.start()
    source.attach_latency_series(1, trace.series("tenant-1"))
    if on_setup is not None:
        on_setup(cluster, tenant, client)

    outcome_extras: dict = {}

    def experiment():
        yield env.timeout(warmup)
        window_start = env.now
        change_proc = None
        if rate_change is not None:

            def change():
                yield env.timeout(rate_change.at)
                arrivals.scale_rate(rate_change.factor)

            change_proc = env.process(change())

        migration_result = None
        if spec.kind == "none":
            yield env.timeout(baseline_duration)
        else:
            migration_result = yield env.process(
                _run_migration_spec(cluster, spec, 1, config)
            )
        window_end = env.now
        if cooldown > 0:
            yield env.timeout(cooldown)
        if change_proc is not None and change_proc.is_alive:
            change_proc.interrupt("run over")
        return window_start, window_end, migration_result

    proc = env.process(experiment())
    window_start, window_end, migration_result = env.run(until=proc)
    client.stop()

    throttle_series = None
    controller_series = None
    if spec.kind == "dynamic":
        name = "source:mig-1"
        if f"{name}:throttle_rate" in source.trace:
            throttle_series = source.trace[f"{name}:throttle_rate"]
            controller_series = source.trace[f"{name}:window_latency"]

    run_report = None
    if obs is not None:
        if obs_trace_path is not None:
            obs.finish()
            obs.tracer.write_jsonl(obs_trace_path)
        run_report = obs.run_report(config, spec, trace_path=obs_trace_path)

    return ExperimentOutcome(
        config=config,
        spec=spec,
        trace=trace,
        tenants=[
            TenantOutcome(
                tenant_id=1,
                latency=trace.series("tenant-1"),
                completed=client.stats.completed,
            )
        ],
        window_start=window_start,
        window_end=window_end,
        migration=migration_result,
        throttle_series=throttle_series,
        controller_latency_series=controller_series,
        extras=outcome_extras,
        run_report=run_report,
    )


def run_multi_tenant(
    config: ExperimentConfig,
    spec: MigrationSpec,
    num_tenants: int = 5,
    migrate_tenant_id: int = 1,
    warmup: float = 20.0,
    cooldown: float = 5.0,
    baseline_duration: float = 120.0,
    per_tenant_rate: Optional[Sequence[float]] = None,
    observe: bool = False,
    obs_trace_path: Optional[str] = None,
) -> ExperimentOutcome:
    """The Figure 13b scenario: N tenants, one migrates, all measured.

    The total server workload is split evenly across tenants unless
    ``per_tenant_rate`` gives explicit rates, matching the paper's
    "total server workload ... is the same as before".  Every tenant
    gets a full-size database and dedicated buffer pool (process-level
    multitenancy); the migration therefore moves the same volume of
    data as the single-tenant experiments.
    """
    if num_tenants < 1:
        raise ValueError(f"num_tenants must be >= 1, got {num_tenants}")
    if not 1 <= migrate_tenant_id <= num_tenants:
        raise ValueError(f"migrate_tenant_id {migrate_tenant_id} out of range")
    streams = RandomStreams(config.seed)
    cluster = _build_cluster(config, streams)
    env = cluster.env
    trace = Trace()
    obs = Observability(env).attach(cluster) if observe else None
    source = cluster.node("source")

    if per_tenant_rate is None:
        per_tenant_rate = [
            config.workload.arrival_rate / num_tenants for _ in range(num_tenants)
        ]
    if len(per_tenant_rate) != num_tenants:
        raise ValueError("per_tenant_rate length must equal num_tenants")

    # Server-level burst causes are correlated across collocated
    # tenants, so all five workloads share one burst modulator.
    modulator = None
    if config.workload.burst_factor > 1.0:
        modulator = BurstModulator(
            env,
            streams.stream("shared-bursts"),
            mean_normal=config.workload.burst_mean_normal,
            mean_burst=config.workload.burst_mean_burst,
        )
    clients = []
    for tenant_id in range(1, num_tenants + 1):
        tenant = source.create_tenant(
            tenant_id,
            config.tenant.data_bytes,
            buffer_bytes=config.tenant.buffer_bytes,
        )
        client, _ = attach_workload(
            cluster,
            config,
            tenant,
            streams,
            trace,
            series=f"tenant-{tenant_id}",
            arrival_rate=per_tenant_rate[tenant_id - 1],
            modulator=modulator,
        )
        client.start()
        source.attach_latency_series(tenant_id, trace.series(f"tenant-{tenant_id}"))
        clients.append(client)

    def experiment():
        yield env.timeout(warmup)
        window_start = env.now
        migration_result = None
        if spec.kind == "none":
            yield env.timeout(baseline_duration)
        else:
            migration_result = yield env.process(
                _run_migration_spec(cluster, spec, migrate_tenant_id, config)
            )
        window_end = env.now
        if cooldown > 0:
            yield env.timeout(cooldown)
        return window_start, window_end, migration_result

    proc = env.process(experiment())
    window_start, window_end, migration_result = env.run(until=proc)
    for client in clients:
        client.stop()

    throttle_series = None
    controller_series = None
    if spec.kind == "dynamic":
        name = f"source:mig-{migrate_tenant_id}"
        if f"{name}:throttle_rate" in source.trace:
            throttle_series = source.trace[f"{name}:throttle_rate"]
            controller_series = source.trace[f"{name}:window_latency"]

    run_report = None
    if obs is not None:
        if obs_trace_path is not None:
            obs.finish()
            obs.tracer.write_jsonl(obs_trace_path)
        run_report = obs.run_report(config, spec, trace_path=obs_trace_path)

    return ExperimentOutcome(
        config=config,
        spec=spec,
        trace=trace,
        tenants=[
            TenantOutcome(
                tenant_id=tenant_id,
                latency=trace.series(f"tenant-{tenant_id}"),
                completed=clients[tenant_id - 1].stats.completed,
            )
            for tenant_id in range(1, num_tenants + 1)
        ],
        window_start=window_start,
        window_end=window_end,
        migration=migration_result,
        throttle_series=throttle_series,
        controller_latency_series=controller_series,
        run_report=run_report,
    )
