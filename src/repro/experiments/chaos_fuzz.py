"""Seeded chaos fuzzer: hundreds of random fault plans vs. the invariants.

The chaos *sweep* checks a dozen hand-picked scenarios; this module
searches the space instead.  Each schedule seed deterministically
expands into a random :class:`~repro.faults.FaultPlan` — partition
windows (including source↔controller links that starve lease
renewals), node crashes, NIC collapses, backup aborts, message soups,
and controller outages — which is then run through the same hardened
single-tenant migration as the sweep, but driven through
:class:`~repro.placement.executor.WaveExecutor` so the slack-budget
ledger participates and its release invariant is checkable.

After every run the full invariant battery fires: exactly-once
tenancy, no handover committed under a stale/expired fencing token, no
budget reservation leaked, rollback leaves the source consistent, and
latency accounting conserved.  A failing schedule is **shrunk**: fault
atoms are greedily removed one at a time, keeping a removal whenever
the violation persists, until no single atom can be dropped — the
minimized reproducer (plus the schedule seed that replays the original
bit-identically) is emitted as JSON.

The plan is a pure function of ``schedule_seed`` (drawn from the named
``fuzz:plans`` stream), and a run is a pure function of
(config seed, plan), so every failure replays exactly::

    python -m repro.experiments.chaos_fuzz --schedules 100 --jobs 4 --check
    python -m repro.experiments.chaos_fuzz --replay 17   # one schedule, verbose
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass
from typing import Optional

from ..core.config import CASE_STUDY, ExperimentConfig
from ..faults import FaultInjector
from ..middleware.transport import RetryPolicy
from ..obs import Observability
from ..parallel import SweepPoint, SweepRunner
from ..placement.budget import SlackBudgetLedger
from ..placement.executor import WaveExecutor
from ..placement.policy import MigrationProposal
from ..simulation import RandomStreams, Trace
from .chaos_sweep import _check_invariants, _plan_from_kwargs
from .common import scaled_config
from .harness import _build_cluster, attach_workload

__all__ = [
    "FuzzRecord",
    "generate_plan",
    "fuzz_point",
    "fuzz_points",
    "run",
    "shrink",
    "reproducer",
    "main",
]

#: Task path of :func:`fuzz_point` for :class:`SweepPoint`.
FUZZ_TASK = "repro.experiments.chaos_fuzz:fuzz_point"

#: Names reachable on the bus: the two nodes plus the lease endpoint.
#: Partitioning ``source``↔``controller`` starves renewals without
#: touching the data path — the nastiest case for fencing.
_ENDPOINTS = ("source", "target", "controller")

_EPSILON = 1e-9


@dataclass(frozen=True)
class FuzzRecord:
    """Compact, picklable outcome of one fuzzed schedule."""

    label: str
    #: Seed the plan was expanded from (replays bit-identically).
    schedule_seed: int
    #: "completed", "aborted", "skipped", or "wedged".
    outcome: str
    #: Invariants that failed (empty = healthy run).
    violations: tuple[str, ...]
    #: SHA-256 over the observable trajectory; stable across replays
    #: and across jobs=1 vs jobs=N.
    fingerprint: str
    #: Number of fault atoms in the plan (shrinking's search space).
    atoms: int
    counters: tuple[tuple[str, float], ...]
    sim_end: float

    @property
    def ok(self) -> bool:
        return not self.violations

    def counter(self, name: str) -> float:
        for key, value in self.counters:
            if key == name:
                return value
        raise KeyError(name)


# -- plan generation ----------------------------------------------------------


def generate_plan(schedule_seed: int, horizon: float = 20.0) -> dict:
    """Expand a schedule seed into picklable fault-plan kwargs.

    Pure function of ``schedule_seed``: all draws come from the
    ``fuzz:plans`` stream of a :class:`RandomStreams` rooted at the
    seed, so the same seed always yields the same plan.  Returns the
    kwargs consumed by :func:`fuzz_point` — ``messages``,
    ``scheduled``, ``partitions``, ``controller_down``.
    """
    rng = RandomStreams(schedule_seed).stream("fuzz:plans")

    messages = None
    if rng.random() < 0.5:
        messages = {
            "drop_prob": round(rng.uniform(0.0, 0.15), 4),
            "dup_prob": round(rng.uniform(0.0, 0.10), 4),
            "delay_prob": round(rng.uniform(0.0, 0.30), 4),
            "delay_max": round(rng.uniform(0.005, 0.05), 4),
            "after": round(rng.uniform(0.0, horizon * 0.25), 3),
        }

    partitions = []
    for _ in range(rng.randrange(3)):
        at = round(rng.uniform(2.0, horizon * 0.6), 3)
        duration = round(rng.uniform(1.0, horizon * 0.4), 3)
        kind = rng.choice(("oneway", "oneway", "split", "flap", "gray"))
        if kind == "oneway":
            src = rng.choice(_ENDPOINTS)
            dst = rng.choice(tuple(n for n in _ENDPOINTS if n != src))
            partitions.append(
                {"at": at, "duration": duration, "kind": "oneway",
                 "src": src, "dst": dst}
            )
        elif kind == "split":
            lone = rng.choice(_ENDPOINTS)
            rest = tuple(n for n in _ENDPOINTS if n != lone)
            groups = ((lone,), rest if rng.random() < 0.5 else rest[:1])
            partitions.append(
                {"at": at, "duration": duration, "kind": "split",
                 "groups": groups}
            )
        elif kind == "flap":
            src = rng.choice(_ENDPOINTS)
            dst = rng.choice(tuple(n for n in _ENDPOINTS if n != src))
            partitions.append(
                {"at": at, "duration": duration, "kind": "flap",
                 "src": src, "dst": dst,
                 "period": round(rng.uniform(0.5, 2.0), 3),
                 "duty": round(rng.uniform(0.2, 0.8), 3)}
            )
        else:
            partitions.append(
                {"at": at, "duration": duration, "kind": "gray",
                 "node": rng.choice(_ENDPOINTS),
                 "drop_prob": round(rng.uniform(0.1, 0.6), 3),
                 "delay": round(rng.uniform(0.0, 0.03), 4)}
            )

    scheduled = []
    for _ in range(rng.randrange(3)):
        at = round(rng.uniform(3.0, horizon * 0.6), 3)
        kind = rng.choice(("crash_target", "abort_backup", "nic_rate", "nic_stall"))
        if kind == "crash_target":
            # Only the target crashes: a crashed source takes the
            # migration driver down with it, which is a different
            # experiment (the fleet healer's), not a fuzzable fault.
            scheduled.append(
                {"at": at, "kind": "crash_node", "node": "target",
                 "duration": round(rng.uniform(2.0, 8.0), 3)}
            )
        elif kind == "abort_backup":
            scheduled.append({"at": at, "kind": "abort_backup", "node": "source"})
        elif kind == "nic_rate":
            scheduled.append(
                {"at": at, "kind": "nic_rate",
                 "node": rng.choice(("source", "target")),
                 "factor": round(rng.uniform(0.2, 0.6), 3),
                 "duration": round(rng.uniform(2.0, 8.0), 3)}
            )
        else:
            scheduled.append(
                {"at": at, "kind": "nic_stall",
                 "node": rng.choice(("source", "target")),
                 "duration": round(rng.uniform(0.5, 3.0), 3)}
            )

    controller_down = None
    if rng.random() < 0.3:
        controller_down = (
            round(rng.uniform(3.0, horizon * 0.5), 3),
            round(rng.uniform(2.0, horizon * 0.4), 3),
        )

    return {
        "messages": messages,
        "scheduled": tuple(scheduled),
        "partitions": tuple(partitions),
        "controller_down": controller_down,
    }


# -- one fuzz run -------------------------------------------------------------


def fuzz_point(
    config: ExperimentConfig,
    spec=None,
    label: str = "",
    schedule_seed: int = 0,
    messages: Optional[dict] = None,
    scheduled: tuple = (),
    partitions: tuple = (),
    controller_down: Optional[tuple] = None,
    setpoint: float = 0.25,
    warmup: float = 5.0,
    run_limit: float = 240.0,
    cooldown: float = 2.0,
    heartbeat_interval: float = 0.5,
    detector_interval: float = 0.5,
    miss_threshold: float = 3.0,
    suspect_grace: float = 2.0,
    lease_ttl: float = 4.0,
    break_fencing: bool = False,
    fluid_chunks: int = 0,
    observe: bool = False,
) -> FuzzRecord:
    """One fuzzed schedule: leased cluster + random plan + invariants.

    Unlike :func:`~repro.experiments.chaos_sweep.chaos_point`, the
    migration is driven through :class:`WaveExecutor.execute_serial`
    with a dedicated :class:`SlackBudgetLedger`, so "every reservation
    released" is part of the checked surface.  ``controller_down``
    models a fail-stop controller outage (leases starve, holders must
    self-fence).  ``break_fencing=True`` disables the self-fence gate
    on every node — the deliberate bug the fuzzer must catch and
    shrink; it is only ever set by tests and the ``--break-fencing``
    demonstration flag.  ``fluid_chunks > 0`` migrates through the
    fluid chunked path instead of live, adding the exactly-once
    chunk-ownership battery to the checked invariants.
    """
    plan = _plan_from_kwargs(messages, tuple(scheduled), tuple(partitions))
    streams = RandomStreams(config.seed)
    cluster = _build_cluster(
        config, streams, retry_policy=RetryPolicy(), lease_ttl=lease_ttl
    )
    env = cluster.env
    trace = Trace()
    injector = FaultInjector(env, plan, streams).attach(cluster)
    obs = Observability(env).attach(cluster) if observe else None

    source = cluster.node("source")
    target = cluster.node("target")
    tenant = source.create_tenant(
        1, config.tenant.data_bytes, buffer_bytes=config.tenant.buffer_bytes
    )
    source_engine = tenant.engine
    client, _ = attach_workload(
        cluster, config, tenant, streams, trace, series="tenant-1"
    )
    client.start()
    source.attach_latency_series(1, trace.series("tenant-1"))
    cluster.start_heartbeats(heartbeat_interval)
    cluster.start_failure_detectors(detector_interval, miss_threshold, suspect_grace)
    if break_fencing:
        for node in cluster.nodes.values():
            node.fencing_enabled = False

    if controller_down is not None:
        down_at, down_for = controller_down

        def controller_outage():
            yield env.timeout(down_at)
            cluster.lease_manager.crash()
            yield env.timeout(down_for)
            cluster.lease_manager.restart()

        env.process(controller_outage())

    ledger = SlackBudgetLedger()
    executor = WaveExecutor(
        cluster, setpoint=setpoint, ledger=ledger, cooldown=0.0, obs=obs
    )
    proposal = MigrationProposal(
        tenant_id=1, source="source", target="target", reason="chaos-fuzz",
        chunks=fluid_chunks,
    )

    def driver():
        yield env.timeout(warmup)
        yield env.process(executor.execute_serial(proposal))

    proc = env.process(driver())
    env.run(until=env.any_of([proc, env.timeout(run_limit)]))
    if proc.triggered:
        outcome = executor.stats.decisions[-1].outcome
        # Drain late duplicates/retries through the idempotent handlers.
        env.run(until=env.now + cooldown)
    else:
        outcome = "wedged"
    client.stop()

    fluid_migration = source.last_fluid_migration if fluid_chunks else None
    violations = _check_invariants(
        outcome, cluster, tenant, source_engine, client, trace,
        # A wedged run is mid-flight by definition; the fluid battery's
        # terminal-state checks only apply once the migration resolved.
        fluid_migration=fluid_migration if outcome != "wedged" else None,
    )
    # The fuzzer's extra surface: the budget ledger must be whole again.
    leaked = ledger.reservations()
    if leaked:
        violations.append(
            f"budget reservations leaked: {[r.tenant_id for r in leaked]}"
        )
    for name in ("source", "target"):
        if abs(ledger.available(name) - ledger.capacity) > _EPSILON:
            violations.append(
                f"budget not restored on {name}: "
                f"{ledger.available(name):.6f} of {ledger.capacity:.6f} free"
            )

    counters: dict[str, float] = dict(cluster.bus.counters())
    for key, value in injector.stats.counters().items():
        counters[f"faults_{key}"] = value
    counters.update(cluster.lease_manager.stats.counters())
    counters["stale_tokens_rejected"] = (
        source.stats.stale_tokens_rejected + target.stats.stale_tokens_rejected
    )
    counters["lease_expired_aborts"] = source.stats.lease_expired_aborts
    counters["source_migrations_aborted"] = source.stats.migrations_aborted
    counters["duplicates_ignored"] = (
        source.stats.duplicates_ignored + target.stats.duplicates_ignored
    )
    counters["budget_events"] = len(ledger.history)
    if fluid_migration is not None:
        # Only present when fluid is on, so legacy fingerprints are
        # untouched.
        counters["fluid_chunk_flips"] = fluid_migration.chunk_map.flips
        counters["fluid_stale_flips_rejected"] = (
            fluid_migration.chunk_map.stale_flips_rejected
        )
        counters["fluid_writes_to_target"] = fluid_migration.router.writes_to_target
        counters["fluid_cross_hops"] = fluid_migration.router.cross_hops
        counters["fluid_foreign_serves"] = fluid_migration.router.foreign_serves
    counter_pairs = tuple(sorted(counters.items()))

    series = trace.series("tenant-1")
    digest = hashlib.sha256()
    digest.update(
        repr(
            (
                outcome,
                counter_pairs,
                tuple(series.times),
                tuple(series.values),
                env.now,
            )
        ).encode()
    )

    return FuzzRecord(
        label=label,
        schedule_seed=schedule_seed,
        outcome=outcome,
        violations=tuple(violations),
        fingerprint=digest.hexdigest(),
        atoms=_atom_count(messages, scheduled, partitions, controller_down),
        counters=counter_pairs,
        sim_end=env.now,
    )


# -- the fuzz loop ------------------------------------------------------------


def fuzz_points(
    schedules: int = 100,
    config: Optional[ExperimentConfig] = None,
    scale: float = 0.0625,
    seed: Optional[int] = None,
    first_schedule: int = 0,
    break_fencing: bool = False,
    fluid_chunks: int = 0,
) -> list[SweepPoint]:
    """One sweep point per schedule seed, plans pre-expanded in the parent."""
    cfg = scaled_config(config or CASE_STUDY, scale, seed)
    points = []
    for schedule_seed in range(first_schedule, first_schedule + schedules):
        kwargs = generate_plan(schedule_seed)
        label = f"fuzz-{schedule_seed:04d}"
        points.append(
            SweepPoint(
                label=label,
                config=cfg,
                spec=None,
                task=FUZZ_TASK,
                kwargs={
                    "label": label,
                    "schedule_seed": schedule_seed,
                    "break_fencing": break_fencing,
                    # omitted when 0 so legacy points keep their cache keys
                    **({"fluid_chunks": fluid_chunks} if fluid_chunks else {}),
                    **kwargs,
                },
            )
        )
    return points


def run(
    schedules: int = 100,
    config: Optional[ExperimentConfig] = None,
    scale: float = 0.0625,
    seed: Optional[int] = None,
    first_schedule: int = 0,
    jobs: int = 1,
    break_fencing: bool = False,
    fluid_chunks: int = 0,
    pool=None,
) -> dict[str, FuzzRecord]:
    """Fuzz ``schedules`` seeded plans; records keyed by label."""
    runner = SweepRunner(jobs=jobs, pool=pool)
    return runner.run_labelled(
        fuzz_points(
            schedules,
            config,
            scale=scale,
            seed=seed,
            first_schedule=first_schedule,
            break_fencing=break_fencing,
            fluid_chunks=fluid_chunks,
        )
    )


# -- shrinking ----------------------------------------------------------------


def _atoms(messages, scheduled, partitions, controller_down) -> list[tuple]:
    """The plan's independently-removable fault atoms, in stable order."""
    atoms: list[tuple] = []
    if messages:
        atoms.append(("messages", None))
    for index in range(len(scheduled)):
        atoms.append(("scheduled", index))
    for index in range(len(partitions)):
        atoms.append(("partitions", index))
    if controller_down is not None:
        atoms.append(("controller_down", None))
    return atoms


def _atom_count(messages, scheduled, partitions, controller_down) -> int:
    return len(_atoms(messages, scheduled, partitions, controller_down))


def _without(kwargs: dict, atom: tuple) -> dict:
    """Plan kwargs with one atom removed."""
    out = dict(kwargs)
    kind, index = atom
    if kind == "messages":
        out["messages"] = None
    elif kind == "controller_down":
        out["controller_down"] = None
    else:
        items = tuple(out[kind])
        out[kind] = items[:index] + items[index + 1 :]
    return out


def shrink(
    config: ExperimentConfig,
    kwargs: dict,
    **fixed,
) -> tuple[dict, FuzzRecord, int]:
    """Greedy fault-removal shrinking of a violating plan.

    Repeatedly re-runs the point with one atom removed; a removal is
    kept whenever *some* invariant still fails.  Loops to a fixpoint
    (no single atom can be removed), so the result is 1-minimal.
    Returns ``(minimal_kwargs, final_record, runs_spent)``.  Runs
    serially in the caller — shrinking is rare and each run is small.
    """
    current = dict(kwargs)
    record = fuzz_point(config, **current, **fixed)
    if record.ok:
        raise ValueError("shrink() needs a violating plan to start from")
    runs = 1
    shrunk = True
    while shrunk:
        shrunk = False
        for atom in _atoms(
            current.get("messages"),
            current.get("scheduled", ()),
            current.get("partitions", ()),
            current.get("controller_down"),
        ):
            candidate = _without(current, atom)
            trial = fuzz_point(config, **candidate, **fixed)
            runs += 1
            if not trial.ok:
                current, record = candidate, trial
                shrunk = True
                break
    return current, record, runs


def reproducer(
    config: ExperimentConfig,
    record: FuzzRecord,
    kwargs: dict,
    minimal_kwargs: dict,
    minimal_record: FuzzRecord,
    scale: float,
) -> dict:
    """The minimized-reproducer payload written next to a failure."""
    return {
        "label": record.label,
        "schedule_seed": record.schedule_seed,
        "config_seed": config.seed,
        "scale": scale,
        "violations": list(minimal_record.violations),
        "original_violations": list(record.violations),
        "original_atoms": record.atoms,
        "minimal_atoms": minimal_record.atoms,
        "fingerprint": minimal_record.fingerprint,
        "plan": _plan_payload(kwargs),
        "minimal_plan": _plan_payload(minimal_kwargs),
        "replay": (
            f"python -m repro.experiments.chaos_fuzz --schedules 1 "
            f"--first-schedule {record.schedule_seed} --scale {scale:g}"
            + (f" --seed {config.seed}" if config.seed is not None else "")
        ),
    }


def _plan_payload(kwargs: dict) -> dict:
    return {
        "messages": kwargs.get("messages"),
        "scheduled": [dict(s) for s in kwargs.get("scheduled", ())],
        "partitions": [
            {k: list(v) if isinstance(v, tuple) else v for k, v in dict(p).items()}
            for p in kwargs.get("partitions", ())
        ],
        "controller_down": (
            list(kwargs["controller_down"])
            if kwargs.get("controller_down") is not None
            else None
        ),
        "break_fencing": bool(kwargs.get("break_fencing", False)),
    }


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schedules", type=int, default=100)
    parser.add_argument("--first-schedule", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.0625)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any invariant violation",
    )
    parser.add_argument(
        "--break-fencing",
        action="store_true",
        help="disable self-fencing on every node: the deliberate bug "
        "the fuzzer must catch (demonstration / CI self-test)",
    )
    parser.add_argument(
        "--fluid-chunks",
        type=int,
        default=0,
        help="migrate through the fluid chunked path with this many "
        "chunks (0 = live migration), adding the exactly-once "
        "chunk-ownership battery to the checked invariants",
    )
    parser.add_argument("--out", type=str, default=None, help="write JSON report")
    parser.add_argument(
        "--repro-out",
        type=str,
        default=None,
        help="directory for minimized-reproducer JSON files",
    )
    args = parser.parse_args(argv)

    cfg = scaled_config(CASE_STUDY, args.scale, args.seed)
    records = run(
        schedules=args.schedules,
        scale=args.scale,
        seed=args.seed,
        first_schedule=args.first_schedule,
        jobs=args.jobs,
        break_fencing=args.break_fencing,
        fluid_chunks=args.fluid_chunks,
    )

    outcomes: dict[str, int] = {}
    for rec in records.values():
        outcomes[rec.outcome] = outcomes.get(rec.outcome, 0) + 1
    failures = {label: rec for label, rec in records.items() if not rec.ok}
    print(
        f"chaos fuzz: {len(records)} schedules, outcomes {outcomes}, "
        f"{len(failures)} invariant failure(s)"
    )

    repros = {}
    for label, rec in sorted(failures.items()):
        kwargs = dict(generate_plan(rec.schedule_seed))
        kwargs["break_fencing"] = args.break_fencing
        if args.fluid_chunks:
            kwargs["fluid_chunks"] = args.fluid_chunks
        minimal, min_rec, runs = shrink(cfg, kwargs)
        payload = reproducer(cfg, rec, kwargs, minimal, min_rec, args.scale)
        repros[label] = payload
        print(
            f"  {label}: {rec.atoms} atoms -> {min_rec.atoms} "
            f"({runs} shrink runs): {'; '.join(min_rec.violations)}"
        )
        if args.repro_out:
            os.makedirs(args.repro_out, exist_ok=True)
            path = os.path.join(args.repro_out, f"{label}.repro.json")
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"  wrote {path}")

    if args.out:
        payload = {
            label: {
                "schedule_seed": rec.schedule_seed,
                "outcome": rec.outcome,
                "violations": list(rec.violations),
                "fingerprint": rec.fingerprint,
                "atoms": rec.atoms,
                "sim_end": rec.sim_end,
            }
            for label, rec in records.items()
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    if args.check and failures:
        print(f"invariant violations in: {sorted(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
