"""Figure 12: the throttle reacting to the workload (1000 ms setpoint).

"It is evident that the throttling speed is roughly an inverse of
transaction latency.  During brief bursts of high latency ... Slacker
decreases migration speed, sometimes even pausing migration entirely
... during periods of low latency ... Slacker capitalizes on the
opportunity to increase migration speed."  (Section 5.4)

The driver reports the two time series (throttle speed and windowed
latency, downsampled), their Pearson correlation (expected strongly
negative), and whether the throttle ever paused.

Run standalone::

    python -m repro.experiments.fig12_timeseries
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_rate
from ..core.config import EVALUATION, ExperimentConfig
from ..parallel import SINGLE_TENANT, SweepPoint, SweepRunner
from ..resources.units import MB
from ..simulation.trace import Series
from .common import scaled_config
from .harness import ExperimentOutcome, MigrationSpec

__all__ = ["Fig12Result", "run", "main"]

#: The setpoint the paper's Figure 12 uses.
DEFAULT_SETPOINT = 1.0

#: Throttle rates below this fraction of max count as "paused".
PAUSE_FRACTION = 0.02


def pearson(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation of two equal-length samples."""
    n = len(xs)
    if n != len(ys):
        raise ValueError("samples must have equal length")
    if n < 2:
        return math.nan
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return math.nan
    return cov / math.sqrt(vx * vy)


@dataclass
class Fig12Result:
    """Throttle/latency co-evolution measurements."""

    outcome: ExperimentOutcome
    setpoint: float
    correlation: float
    paused_steps: int
    total_steps: int
    max_rate: float

    @property
    def throttle(self) -> Series:
        return self.outcome.throttle_series

    @property
    def window_latency(self) -> Series:
        return self.outcome.controller_latency_series

    def timeseries_rows(
        self, step: float = 5.0
    ) -> list[tuple[float, float, float]]:
        """(t, throttle MB/s, window latency ms) samples every ``step`` s."""
        rows = []
        start = self.outcome.window_start
        end = self.outcome.window_end
        t = start
        while t < end:
            rates = self.throttle.window_values(t, t + step)
            lats = self.window_latency.window_values(t, t + step)
            if rates and lats:
                rows.append(
                    (
                        t - start,
                        sum(rates) / len(rates) / MB,
                        1000 * sum(lats) / len(lats),
                    )
                )
            t += step
        return rows

    def table(self) -> Table:
        table = Table(
            f"Figure 12: throttle vs. latency time series "
            f"({self.setpoint * 1000:.0f} ms setpoint)",
            ["t (s)", "throttle", "window latency"],
        )
        for t, rate_mb, lat_ms in self.timeseries_rows():
            table.add_row(f"{t:5.0f}", format_rate(rate_mb * MB), format_ms(lat_ms / 1000))
        table.add_note(
            f"throttle-latency correlation {self.correlation:+.2f} "
            "(paper: throttle is 'roughly an inverse' of latency)"
        )
        table.add_note(
            f"paused (rate < {PAUSE_FRACTION:.0%} of max) in "
            f"{self.paused_steps}/{self.total_steps} controller steps"
        )
        return table


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    setpoint: float = DEFAULT_SETPOINT,
    warmup: float = 20.0,
    obs_dir: Optional[str] = None,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Fig12Result:
    """Run the Figure 12 dynamic migration and analyse its series.

    ``obs_dir`` enables the observability runtime and writes
    ``fig12.report.json`` plus the span trace ``fig12.trace.jsonl``
    into that directory; the measured series are bit-identical either
    way (observation is read-only).  The run dispatches through the
    :class:`SweepRunner`, sharing ``run all``'s warm worker pool.
    """
    cfg = scaled_config(config or EVALUATION, scale, seed)
    trace_path = None
    if obs_dir is not None:
        os.makedirs(obs_dir, exist_ok=True)
        trace_path = os.path.join(obs_dir, "fig12.trace.jsonl")
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)
    [outcome] = runner.run(
        [
            SweepPoint(
                label="fig12",
                config=cfg,
                spec=MigrationSpec.dynamic(setpoint),
                task=SINGLE_TENANT,
                kwargs={
                    "warmup": warmup,
                    "observe": obs_dir is not None,
                    "obs_trace_path": trace_path,
                },
            )
        ]
    )
    if obs_dir is not None and outcome.run_report is not None:
        outcome.run_report.write(os.path.join(obs_dir, "fig12.report.json"))
    throttle = outcome.throttle_series
    latency = outcome.controller_latency_series
    # Correlate throttle and latency over the *steady-state* window
    # (after the controller first reaches the setpoint): during the
    # initial ramp both rise together, which would mask the inverse
    # relationship the paper's figure shows.
    cross = next(
        (t for t, v in latency if v >= setpoint), outcome.window_start
    )
    steady_throttle = throttle.between(cross, outcome.window_end)
    steady_latency = latency.between(cross, outcome.window_end)
    n = min(len(steady_throttle), len(steady_latency))
    correlation = pearson(
        list(steady_throttle.values[:n]), list(steady_latency.values[:n])
    )
    max_rate = cfg.max_migration_rate
    paused = sum(1 for v in throttle.values if v < PAUSE_FRACTION * max_rate)
    return Fig12Result(
        outcome=outcome,
        setpoint=setpoint,
        correlation=correlation,
        paused_steps=paused,
        total_steps=len(throttle),
        max_rate=max_rate,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    import argparse

    from ..analysis.plot import ascii_chart

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="database scale factor (1.0 = paper-sized run)",
    )
    parser.add_argument(
        "--obs",
        type=str,
        default=None,
        metavar="DIR",
        help="attach the observability runtime; write fig12.report.json "
        "and fig12.trace.jsonl into DIR",
    )
    args = parser.parse_args()

    result = run(scale=args.scale, obs_dir=args.obs)
    print(result.table().render())
    print()
    print(
        ascii_chart(
            result.throttle,
            result.window_latency,
            width=72,
            height=12,
        )
    )
    print(" (throttle * runs inversely to window latency o)")


if __name__ == "__main__":  # pragma: no cover
    main()
