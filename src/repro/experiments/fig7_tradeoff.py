"""Figure 7: the migration-speed / workload-performance tradeoff.

Plots (as rows) the mean transaction latency, its standard deviation,
and the migration duration for each fixed throttle of the case study.
"Increasing the migration speed increases both average latency and
latency instability" while the migration finishes sooner — the
tradeoff the setpoint lets an operator choose along.

The **extended** sweep (``--extended``) adds a method axis: at each
fixed rate it runs live, stop-and-copy, on-demand, and fluid chunked
migration of the same tenant, and reports the p99.9 tail next to the
mean — the tail is where the methods separate.  Live's single freeze
stalls *every* write for the whole final-delta window and lands
squarely in the p99.9; fluid's per-chunk freezes are each ~1/N as long
and block only the ~1/N of traffic whose write set touches the frozen
chunk, so at equal migration time fluid's tail is strictly better.
Each extended point rides the :class:`~repro.parallel.SweepRunner`; the
sweep fingerprint hashes every latency sample and must replay
bit-identically (``--check``).

Run standalone::

    python -m repro.experiments.fig7_tradeoff
    python -m repro.experiments.fig7_tradeoff --extended --scale 0.1 --check
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_seconds
from ..core.config import CASE_STUDY, ExperimentConfig
from ..parallel import SweepPoint, SweepRunner
from ..parallel.record import PointRecord
from ..parallel.tasks import SINGLE_TENANT
from ..resources.units import MB
from .common import scaled_config
from .fig5_throttle_sweep import PAPER_ANCHORS, Fig5Result
from .fig5_throttle_sweep import run as run_fig5
from .harness import MigrationSpec

__all__ = [
    "Fig7Result",
    "ExtendedFig7Result",
    "extended_points",
    "run",
    "run_extended",
    "main",
]

#: Paper-reported migration durations (s) per rate; 0 MB/s has none.
PAPER_DURATION_S = {4: 281.0, 8: 164.0, 12: 130.0}


@dataclass
class Fig7Result:
    """Speed/performance tradeoff rows derived from the Figure 5 runs."""

    fig5: Fig5Result

    def rows(self) -> list[tuple[int, float, float, Optional[float]]]:
        """(rate MB/s, mean ms, stddev ms, duration s or None) per run."""
        out = []
        for rate in sorted(self.fig5.outcomes):
            outcome = self.fig5.outcomes[rate]
            duration = outcome.duration if rate != 0 else None
            out.append(
                (
                    rate,
                    outcome.mean_latency * 1000,
                    outcome.latency_stddev * 1000,
                    duration,
                )
            )
        return out

    def table(self) -> Table:
        table = Table(
            "Figure 7: migration speed vs. workload performance",
            [
                "speed",
                "paper mean",
                "measured mean",
                "measured std",
                "migration duration",
            ],
        )
        for rate, mean_ms, std_ms, duration in self.rows():
            table.add_row(
                "no migration" if rate == 0 else f"{rate} MB/s",
                format_ms(PAPER_ANCHORS[rate] / 1000),
                format_ms(mean_ms / 1000),
                format_ms(std_ms / 1000),
                format_seconds(duration) if duration is not None else "-",
            )
        table.add_note(
            "both mean latency and latency variance rise with speed; "
            "duration falls — the slack tradeoff of Section 3.3"
        )
        return table


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    fig5: Optional[Fig5Result] = None,
    jobs: int = 1,
    cache=None,
) -> Fig7Result:
    """Derive the tradeoff from (or re-run) the Figure 5 sweep.

    ``jobs``/``cache`` are forwarded to the Figure 5 sweep runner; a
    shared ``cache`` means fig5 and fig7 together simulate each point
    exactly once.
    """
    if fig5 is None:
        fig5 = run_fig5(
            scale=scale, config=config or CASE_STUDY, seed=seed,
            jobs=jobs, cache=cache,
        )
    return Fig7Result(fig5=fig5)


# -- extended sweep: method x rate, with the p99.9 tail axis ------------------

#: Fixed rates of the extended sweep, MB/s (the case-study throttles).
EXTENDED_RATES_MB = (4, 8, 12)

#: Methods compared at each rate, in presentation order.
EXTENDED_METHODS = ("live", "stop-and-copy", "on-demand", "fluid")

#: Chunk count for the fluid points (the module default).
DEFAULT_FLUID_CHUNKS = 16


def _extended_spec(method: str, rate: float, chunks: int) -> MigrationSpec:
    if method == "live":
        return MigrationSpec.fixed(rate)
    if method == "stop-and-copy":
        return MigrationSpec(kind="stop-and-copy", rate=rate)
    if method == "on-demand":
        return MigrationSpec.on_demand(rate)
    if method == "fluid":
        return MigrationSpec.fluid(rate, chunks=chunks)
    raise ValueError(f"unknown extended method {method!r}")


def extended_points(
    config: Optional[ExperimentConfig] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    chunks: int = DEFAULT_FLUID_CHUNKS,
) -> list[SweepPoint]:
    """Every (method, rate) pair as an independent sweep point."""
    cfg = scaled_config(config or CASE_STUDY, scale, seed)
    return [
        SweepPoint(
            label=f"{method}@{rate}MB",
            config=cfg,
            spec=_extended_spec(method, rate * MB, chunks),
            task=SINGLE_TENANT,
        )
        for rate in EXTENDED_RATES_MB
        for method in EXTENDED_METHODS
    ]


@dataclass
class ExtendedFig7Result:
    """Method x rate records of the extended tradeoff sweep."""

    records: dict[str, PointRecord]
    chunks: int = DEFAULT_FLUID_CHUNKS

    def record(self, method: str, rate: int) -> PointRecord:
        return self.records[f"{method}@{rate}MB"]

    def rows(self) -> list[tuple[str, int, float, float, float, float, float]]:
        """(method, rate MB/s, duration, downtime, mean, p99, p99.9)."""
        out = []
        for rate in EXTENDED_RATES_MB:
            for method in EXTENDED_METHODS:
                rec = self.record(method, rate)
                migration = rec.migration
                out.append(
                    (
                        method,
                        rate,
                        migration.duration,
                        migration.downtime,
                        rec.mean_latency,
                        rec.latency_percentile(99.0),
                        rec.latency_percentile(99.9),
                    )
                )
        return out

    def violations(self) -> list[str]:
        """The sweep's headline claim, as a checkable invariant.

        At every matched rate, fluid must beat live on the p99.9 tail —
        per-chunk freezes hit ~1/N of traffic for ~1/N as long, so the
        tail has to come down even though the bytes moved are the same.
        """
        out = []
        for rate in EXTENDED_RATES_MB:
            live = self.record("live", rate).latency_percentile(99.9)
            fluid = self.record("fluid", rate).latency_percentile(99.9)
            if fluid >= live:
                out.append(
                    f"fluid p99.9 {fluid * 1000:.2f} ms >= live "
                    f"{live * 1000:.2f} ms at {rate} MB/s"
                )
        return out

    def fingerprint(self) -> str:
        """SHA-256 over every point's full latency trajectory."""
        digest = hashlib.sha256()
        for label in sorted(self.records):
            rec = self.records[label]
            migration = rec.migration
            digest.update(
                repr(
                    (
                        label,
                        migration.kind,
                        migration.duration,
                        migration.downtime,
                        migration.total_bytes,
                        rec.window_start,
                        rec.window_end,
                    )
                ).encode()
            )
            for tenant in rec.tenants:
                digest.update(
                    repr(
                        (
                            tenant.tenant_id,
                            tenant.completed,
                            tuple(tenant.latency.times),
                            tuple(tenant.latency.values),
                        )
                    ).encode()
                )
        return digest.hexdigest()

    def table(self) -> Table:
        table = Table(
            "Figure 7 (extended): migration method vs. tail latency "
            f"(fluid: {self.chunks} chunks)",
            [
                "speed",
                "method",
                "duration",
                "downtime",
                "mean",
                "p99",
                "p99.9",
            ],
        )
        for method, rate, duration, downtime, mean, p99, p999 in self.rows():
            table.add_row(
                f"{rate} MB/s",
                method,
                format_seconds(duration),
                format_ms(downtime),
                format_ms(mean),
                format_ms(p99),
                format_ms(p999),
            )
        table.add_note(
            "fluid hands the tenant over chunk by chunk: each freeze is "
            "~1/N as long and blocks ~1/N of the writes, so the p99.9 "
            "drops below live's at equal migration time"
        )
        return table


def run_extended(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    chunks: int = DEFAULT_FLUID_CHUNKS,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> ExtendedFig7Result:
    """Run the method x rate sweep through the shared sweep runner."""
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)
    records = runner.run_labelled(
        extended_points(config, scale=scale, seed=seed, chunks=chunks)
    )
    return ExtendedFig7Result(records=records, chunks=chunks)


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--extended",
        action="store_true",
        help="run the method x rate sweep with the p99.9 tail axis",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--chunks", type=int, default=DEFAULT_FLUID_CHUNKS)
    parser.add_argument(
        "--check",
        action="store_true",
        help="(extended) exit non-zero unless fluid beats live on p99.9 "
        "at every rate and a serial replay reproduces the fingerprint",
    )
    parser.add_argument("--out", type=str, default=None, help="write JSON report")
    args = parser.parse_args(argv)

    if not args.extended:
        print(run(scale=args.scale, seed=args.seed, jobs=args.jobs).table().render())
        return 0

    result = run_extended(
        scale=args.scale, seed=args.seed, chunks=args.chunks, jobs=args.jobs
    )
    print(result.table().render())
    fingerprint = result.fingerprint()
    print(f"fingerprint: {fingerprint}")

    if args.out:
        payload = {
            "chunks": result.chunks,
            "fingerprint": fingerprint,
            "rows": [
                {
                    "method": method,
                    "rate_mb": rate,
                    "duration": duration,
                    "downtime": downtime,
                    "mean_latency": mean,
                    "p99_latency": p99,
                    "p999_latency": p999,
                }
                for method, rate, duration, downtime, mean, p99, p999 in result.rows()
            ],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    if args.check:
        failures = result.violations()
        replay = run_extended(
            scale=args.scale, seed=args.seed, chunks=args.chunks, jobs=1
        )
        if replay.fingerprint() != fingerprint:
            failures.append("REPLAY DIVERGED: serial replay fingerprint differs")
        if failures:
            for failure in failures:
                print(failure, file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
