"""Figure 7: the migration-speed / workload-performance tradeoff.

Plots (as rows) the mean transaction latency, its standard deviation,
and the migration duration for each fixed throttle of the case study.
"Increasing the migration speed increases both average latency and
latency instability" while the migration finishes sooner — the
tradeoff the setpoint lets an operator choose along.

Run standalone::

    python -m repro.experiments.fig7_tradeoff
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_seconds
from ..core.config import CASE_STUDY, ExperimentConfig
from .fig5_throttle_sweep import PAPER_ANCHORS, Fig5Result
from .fig5_throttle_sweep import run as run_fig5

__all__ = ["Fig7Result", "run", "main"]

#: Paper-reported migration durations (s) per rate; 0 MB/s has none.
PAPER_DURATION_S = {4: 281.0, 8: 164.0, 12: 130.0}


@dataclass
class Fig7Result:
    """Speed/performance tradeoff rows derived from the Figure 5 runs."""

    fig5: Fig5Result

    def rows(self) -> list[tuple[int, float, float, Optional[float]]]:
        """(rate MB/s, mean ms, stddev ms, duration s or None) per run."""
        out = []
        for rate in sorted(self.fig5.outcomes):
            outcome = self.fig5.outcomes[rate]
            duration = outcome.duration if rate != 0 else None
            out.append(
                (
                    rate,
                    outcome.mean_latency * 1000,
                    outcome.latency_stddev * 1000,
                    duration,
                )
            )
        return out

    def table(self) -> Table:
        table = Table(
            "Figure 7: migration speed vs. workload performance",
            [
                "speed",
                "paper mean",
                "measured mean",
                "measured std",
                "migration duration",
            ],
        )
        for rate, mean_ms, std_ms, duration in self.rows():
            table.add_row(
                "no migration" if rate == 0 else f"{rate} MB/s",
                format_ms(PAPER_ANCHORS[rate] / 1000),
                format_ms(mean_ms / 1000),
                format_ms(std_ms / 1000),
                format_seconds(duration) if duration is not None else "-",
            )
        table.add_note(
            "both mean latency and latency variance rise with speed; "
            "duration falls — the slack tradeoff of Section 3.3"
        )
        return table


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    fig5: Optional[Fig5Result] = None,
    jobs: int = 1,
    cache=None,
) -> Fig7Result:
    """Derive the tradeoff from (or re-run) the Figure 5 sweep.

    ``jobs``/``cache`` are forwarded to the Figure 5 sweep runner; a
    shared ``cache`` means fig5 and fig7 together simulate each point
    exactly once.
    """
    if fig5 is None:
        fig5 = run_fig5(
            scale=scale, config=config or CASE_STUDY, seed=seed,
            jobs=jobs, cache=cache,
        )
    return Fig7Result(fig5=fig5)


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
