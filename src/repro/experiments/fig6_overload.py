"""Figure 6: exceeding slack — a 16 MB/s migration overloads the server.

"This migration speed results in an over-capacity server that can no
longer handle the steady-state query load over time.  As a result,
transactions queue faster than they can be serviced, causing latency
to continuously increase until migration completes."  (Section 3.2)

The driver measures the latency trend over the migration window and
reports the first/middle/final thirds, the least-squares slope, and
the divergence verdict.

Run standalone::

    python -m repro.experiments.fig6_overload
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_seconds
from ..analysis.stats import is_diverging, trend_slope
from ..core.config import CASE_STUDY, ExperimentConfig
from ..parallel import SINGLE_TENANT, SweepPoint, SweepRunner
from ..resources.units import mb_per_sec
from .common import scaled_config
from .harness import ExperimentOutcome, MigrationSpec

__all__ = ["Fig6Result", "run", "main"]

#: The over-slack rate the paper uses, MB/s.
OVERLOAD_RATE_MB = 16

#: Paper's reported mean latency for the 16 MB/s run (ms).
PAPER_MEAN_MS = 20254.0


@dataclass
class Fig6Result:
    """Overload-run measurements."""

    outcome: ExperimentOutcome
    thirds_ms: tuple[float, float, float]
    slope_ms_per_s: float
    diverging: bool

    def table(self) -> Table:
        table = Table(
            f"Figure 6: {OVERLOAD_RATE_MB} MB/s migration (slack exceeded)",
            ["metric", "paper", "measured"],
        )
        out = self.outcome
        table.add_row("mean latency", format_ms(PAPER_MEAN_MS / 1000),
                      format_ms(out.mean_latency))
        table.add_row("duration", format_seconds(95.0), format_seconds(out.duration))
        first, middle, last = self.thirds_ms
        table.add_row("first third mean", "rising", format_ms(first / 1000))
        table.add_row("middle third mean", "rising", format_ms(middle / 1000))
        table.add_row("final third mean", "rising", format_ms(last / 1000))
        table.add_row("latency trend", "continuously increasing",
                      f"{self.slope_ms_per_s:+.0f} ms/s")
        table.add_row("diverging?", "yes", "yes" if self.diverging else "no")
        return table


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    rate_mb: int = OVERLOAD_RATE_MB,
    warmup: float = 20.0,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Fig6Result:
    """Run the overload experiment; ``scale`` shrinks the database.

    The single point dispatches through the :class:`SweepRunner`, so
    ``python -m repro run all`` shares one warm worker pool and result
    cache across every figure — one driver, one code path.
    """
    cfg = scaled_config(config or CASE_STUDY, scale, seed)
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)
    [outcome] = runner.run(
        [
            SweepPoint(
                label="fig6",
                config=cfg,
                spec=MigrationSpec.fixed(mb_per_sec(rate_mb)),
                task=SINGLE_TENANT,
                kwargs={"warmup": warmup},
            )
        ]
    )
    series = outcome.tenants[0].latency
    start, end = outcome.window_start, outcome.window_end
    span = end - start
    thirds = []
    for i in range(3):
        values = series.window_values(start + i * span / 3, start + (i + 1) * span / 3)
        thirds.append(1000 * sum(values) / len(values) if values else float("nan"))
    slope = trend_slope(series, start, end) * 1000  # ms of latency per second
    return Fig6Result(
        outcome=outcome,
        thirds_ms=tuple(thirds),
        slope_ms_per_s=slope,
        diverging=is_diverging(series, start, end),
    )


def main() -> None:  # pragma: no cover - CLI entry point
    from ..analysis.plot import sparkline

    result = run()
    print(result.table().render())
    series = result.outcome.tenants[0].latency
    print()
    print("latency over the migration (diverging):")
    print(" " + sparkline(series.values, width=72))


if __name__ == "__main__":  # pragma: no cover
    main()
