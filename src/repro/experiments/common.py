"""Shared helpers for the figure drivers.

``scaled_config`` shrinks an experiment preset for fast runs: database
size and buffer pool scale together so the buffer-pool miss ratio — and
therefore the workload's disk demand per transaction — is preserved,
and with it the latency-vs-migration-rate behaviour.  Only durations
change.  Benches run at ``scale≈0.25``; the full figures at 1.0.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.config import ExperimentConfig
from ..resources.units import MB

__all__ = ["scaled_config", "DEFAULT_SCALE"]

#: Scale used by the pytest benches (fast, shape-preserving).
DEFAULT_SCALE = 0.25


def scaled_config(
    config: ExperimentConfig, scale: float = 1.0, seed: int | None = None
) -> ExperimentConfig:
    """A copy of ``config`` with tenant data and buffer scaled together."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    tenant = replace(
        config.tenant,
        data_bytes=max(1 * MB, int(config.tenant.data_bytes * scale)),
        buffer_bytes=max(1 * MB, int(config.tenant.buffer_bytes * scale)),
    )
    out = replace(config, tenant=tenant)
    if seed is not None:
        out = out.with_seed(seed)
    return out
