"""Figure 11: fixed throttles vs. Slacker's dynamic throttle.

The paper's core evaluation (Sections 5.2–5.4):

* **11a** — mean latency against average migration speed, for a sweep
  of fixed throttle rates and for Slacker runs with setpoints from
  500 ms to 5000 ms.  Fixed latency explodes past the slack knee;
  Slacker's speed rises with the setpoint and then plateaus near the
  knee ("migration speed will never exceed the available slack"), and
  at equal speed Slacker's latency sits *below* the fixed curve.
* **11b** — achieved latency against the setpoint: once the controller
  locks on (steady state), achieved latency tracks the setpoint
  closely, and Slacker's latency variance at a given speed is lower
  than a fixed throttle's.

Run standalone::

    python -m repro.experiments.fig11_setpoint_sweep
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.report import Table, format_ms, format_rate
from ..core.config import EVALUATION, ExperimentConfig
from ..parallel import ResultCache, SweepPoint, SweepRunner
from ..resources.units import MB, mb_per_sec
from .common import scaled_config
from .harness import ExperimentOutcome, MigrationSpec

__all__ = ["FixedPoint", "SlackerPoint", "Fig11Result", "run", "main"]

#: Paper's Slacker anchor points: setpoint ms -> average speed MB/s.
PAPER_SLACKER_SPEEDS = {500: 6.1, 1000: 12.6, 2500: 18.7, 3500: 23.0}

#: Fixed rates swept (MB/s).  The paper sweeps 5-30 on faster disks;
#: our effective disk tops out lower, so the sweep is scaled (~0.6x).
DEFAULT_FIXED_RATES = (3, 6, 9, 12, 15, 18)

#: Setpoints swept, seconds (paper: 500 ms to 5000 ms in 500 ms steps).
DEFAULT_SETPOINTS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)


@dataclass(frozen=True)
class FixedPoint:
    """One fixed-throttle run."""

    rate_mb: float
    achieved_rate_mb: float
    mean_latency: float
    latency_stddev: float
    duration: float


@dataclass(frozen=True)
class SlackerPoint:
    """One dynamic-throttle run."""

    setpoint: float
    average_rate_mb: float
    mean_latency: float
    latency_stddev: float
    #: Mean latency after the controller first reached the setpoint.
    steady_latency: float
    duration: float

    @property
    def steady_error_fraction(self) -> float:
        """(steady latency - setpoint) / setpoint."""
        return self.steady_latency / self.setpoint - 1.0


def steady_state_latency(outcome: ExperimentOutcome, setpoint: float) -> float:
    """Mean latency from the first time the controller's window latency
    reached the setpoint (excludes the ramp-up transient)."""
    series = outcome.controller_latency_series
    cross = None
    if series is not None:
        cross = next((t for t, v in series if v >= setpoint), None)
    if cross is None:
        cross = outcome.window_start
    values: list[float] = []
    for tenant in outcome.tenants:
        values.extend(tenant.latency.window_values(cross, outcome.window_end))
    if not values:
        return math.nan
    return sum(values) / len(values)


@dataclass
class Fig11Result:
    """Both curves of Figure 11."""

    fixed: list[FixedPoint]
    slacker: list[SlackerPoint]

    def knee_rate_mb(self) -> Optional[float]:
        """Fixed-curve knee: sharpest latency acceleration (MB/s)."""
        from ..migration.slack import EmpiricalSlackEstimator

        estimator = EmpiricalSlackEstimator()
        for point in self.fixed:
            estimator.add(point.rate_mb * MB, point.mean_latency)
        knee = estimator.knee_rate()
        return knee / MB if knee is not None else None

    def plateau_rate_mb(self) -> float:
        """Highest Slacker average speed across the setpoint sweep."""
        return max(point.average_rate_mb for point in self.slacker)

    def fixed_latency_at(self, rate_mb: float) -> float:
        """Piecewise-linear interpolation of the fixed curve, seconds."""
        points = sorted(self.fixed, key=lambda p: p.rate_mb)
        if rate_mb <= points[0].rate_mb:
            return points[0].mean_latency
        for a, b in zip(points, points[1:]):
            if a.rate_mb <= rate_mb <= b.rate_mb:
                frac = (rate_mb - a.rate_mb) / (b.rate_mb - a.rate_mb)
                return a.mean_latency + frac * (b.mean_latency - a.mean_latency)
        return points[-1].mean_latency

    def table_11a(self) -> Table:
        table = Table(
            "Figure 11a: latency vs. average migration speed",
            ["curve", "point", "avg speed", "mean latency", "std"],
        )
        for point in self.fixed:
            table.add_row(
                "fixed",
                f"{point.rate_mb:g} MB/s set",
                format_rate(point.achieved_rate_mb * MB),
                format_ms(point.mean_latency),
                format_ms(point.latency_stddev),
            )
        for point in self.slacker:
            table.add_row(
                "slacker",
                f"{point.setpoint * 1000:.0f} ms setpoint",
                format_rate(point.average_rate_mb * MB),
                format_ms(point.mean_latency),
                format_ms(point.latency_stddev),
            )
        knee = self.knee_rate_mb()
        if knee is not None:
            table.add_note(f"fixed-curve knee ~{knee:.0f} MB/s (paper: ~25 MB/s)")
        table.add_note(
            f"slacker plateau {self.plateau_rate_mb():.1f} MB/s "
            "(paper: ~23 MB/s; rates scale ~0.6x on our slower disk)"
        )
        return table

    def table_11b(self) -> Table:
        table = Table(
            "Figure 11b: setpoint vs. achieved latency",
            ["setpoint", "achieved (full run)", "achieved (steady)", "error", "std"],
        )
        for point in self.slacker:
            table.add_row(
                format_ms(point.setpoint),
                format_ms(point.mean_latency),
                format_ms(point.steady_latency),
                f"{point.steady_error_fraction * 100:+.1f}%",
                format_ms(point.latency_stddev),
            )
        table.add_note(
            "paper: achieved within 10% of setpoint; ours holds within "
            "~10% over the controllable range, and undershoots (safe "
            "direction) where the setpoint exceeds reachable latency"
        )
        return table


def sweep_points(
    cfg: ExperimentConfig,
    fixed_rates_mb: Sequence[float] = DEFAULT_FIXED_RATES,
    setpoints: Sequence[float] = DEFAULT_SETPOINTS,
    warmup: float = 20.0,
) -> list[SweepPoint]:
    """Both Figure 11 curves as one flat list of independent points."""
    points = [
        SweepPoint(
            label=("fixed", rate),
            config=cfg,
            spec=MigrationSpec.fixed(mb_per_sec(rate)),
            kwargs={"warmup": warmup},
        )
        for rate in fixed_rates_mb
    ]
    points.extend(
        SweepPoint(
            label=("slacker", setpoint),
            config=cfg,
            spec=MigrationSpec.dynamic(setpoint),
            kwargs={"warmup": warmup},
        )
        for setpoint in setpoints
    )
    return points


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    fixed_rates_mb: Sequence[float] = DEFAULT_FIXED_RATES,
    setpoints: Sequence[float] = DEFAULT_SETPOINTS,
    warmup: float = 20.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    pool=None,
) -> Fig11Result:
    """Run both sweeps of Figure 11.

    This is the repo's biggest sweep (16 full simulations at the
    defaults), so it benefits most from ``jobs > 1``; results stay
    bit-identical to a serial run.  ``pool`` reuses a shared warm
    :class:`~repro.parallel.WorkerPool` across sweeps.
    """
    cfg = scaled_config(config or EVALUATION, scale, seed)
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)
    outcomes = runner.run_labelled(
        sweep_points(
            cfg,
            fixed_rates_mb=fixed_rates_mb,
            setpoints=setpoints,
            warmup=warmup,
        )
    )
    fixed = [
        FixedPoint(
            rate_mb=rate,
            achieved_rate_mb=outcome.average_migration_rate / MB,
            mean_latency=outcome.mean_latency,
            latency_stddev=outcome.latency_stddev,
            duration=outcome.duration,
        )
        for rate in fixed_rates_mb
        for outcome in (outcomes[("fixed", rate)],)
    ]
    slacker = [
        SlackerPoint(
            setpoint=setpoint,
            average_rate_mb=outcome.average_migration_rate / MB,
            mean_latency=outcome.mean_latency,
            latency_stddev=outcome.latency_stddev,
            steady_latency=steady_state_latency(outcome, setpoint),
            duration=outcome.duration,
        )
        for setpoint in setpoints
        for outcome in (outcomes[("slacker", setpoint)],)
    ]
    return Fig11Result(fixed=fixed, slacker=slacker)


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.table_11a().render())
    print()
    print(result.table_11b().render())


if __name__ == "__main__":  # pragma: no cover
    main()
