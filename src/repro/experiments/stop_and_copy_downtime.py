"""Section 2.3.1: stop-and-copy downtime scales with database size.

"The obvious downside of stop-and-copy is the downtime resulting from
stopping the server.  As verified in our own experimentation, the
length of this period is proportional to the database size."

The driver sweeps database sizes for both stop-and-copy variants
(file-level copy and mysqldump-style dump/reimport) and contrasts
them with live migration's sub-second freeze window.

Run standalone::

    python -m repro.experiments.stop_and_copy_downtime
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..analysis.report import Table, format_seconds
from ..core.config import EVALUATION, ExperimentConfig
from ..parallel import SINGLE_TENANT, SweepPoint, SweepRunner
from ..resources.units import MB, mb_per_sec
from .common import scaled_config
from .harness import MigrationSpec

__all__ = ["DowntimePoint", "StopAndCopyResultSet", "run", "main"]

#: Database sizes swept, MB.
DEFAULT_SIZES_MB = (128, 256, 512)


@dataclass(frozen=True)
class DowntimePoint:
    """Downtime of one method at one database size."""

    method: str
    size_mb: int
    downtime: float
    duration: float


@dataclass
class StopAndCopyResultSet:
    """The full sweep."""

    points: list[DowntimePoint]

    def downtimes(self, method: str) -> list[tuple[int, float]]:
        """(size MB, downtime s) for one method, sorted by size."""
        rows = [(p.size_mb, p.downtime) for p in self.points if p.method == method]
        return sorted(rows)

    def table(self) -> Table:
        table = Table(
            "Section 2.3.1: migration downtime by method and database size",
            ["method", "db size", "downtime", "total duration"],
        )
        for point in sorted(self.points, key=lambda p: (p.method, p.size_mb)):
            table.add_row(
                point.method,
                f"{point.size_mb} MB",
                format_seconds(point.downtime),
                format_seconds(point.duration),
            )
        table.add_note(
            "paper: stop-and-copy downtime proportional to size; live "
            "migration freeze 'well under 1 second in all experiments'"
        )
        return table


def run(
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    sizes_mb: Sequence[int] = DEFAULT_SIZES_MB,
    warmup: float = 10.0,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> StopAndCopyResultSet:
    """Sweep db sizes across stop-and-copy, dump-reimport, and live.

    The (size x method) grid is embarrassingly parallel, so the whole
    sweep dispatches through the :class:`SweepRunner` — with ``jobs``
    or a shared warm ``pool`` the points fan out across workers.
    """
    base = config or EVALUATION
    sweep: list[SweepPoint] = []
    labels: list[tuple[str, int]] = []
    for size_mb in sizes_mb:
        scale = size_mb * MB / base.tenant.data_bytes
        cfg = scaled_config(base, scale, seed)
        # A milder workload keeps the copy from queueing behind an
        # overloaded disk; downtime scaling is the point here.
        cfg = replace(
            cfg, workload=replace(cfg.workload, arrival_rate=1.0, burst_factor=1.0)
        )
        for method, spec in (
            ("stop-and-copy", MigrationSpec(kind="stop-and-copy")),
            ("dump-reimport", MigrationSpec(kind="dump-reimport")),
            ("live (8 MB/s)", MigrationSpec.fixed(mb_per_sec(8))),
        ):
            labels.append((method, size_mb))
            sweep.append(
                SweepPoint(
                    label=f"{method}@{size_mb}",
                    config=cfg,
                    spec=spec,
                    task=SINGLE_TENANT,
                    kwargs={"warmup": warmup, "cooldown": 1.0},
                )
            )
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)
    records = runner.run(sweep)
    points = [
        DowntimePoint(
            method=method,
            size_mb=size_mb,
            downtime=record.migration.downtime,
            duration=record.migration.duration,
        )
        for (method, size_mb), record in zip(labels, records)
    ]
    return StopAndCopyResultSet(points=points)


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
