"""Chaos sweep: live migrations under deterministic fault injection.

Each point runs the paper's fundamental case — one tenant migrated
from ``source`` to ``target`` — on a *hardened* control plane (retry
policy on the bus, heartbeats, failure detectors) while a
:class:`~repro.faults.FaultPlan` mistreats it: dropped/duplicated/
delayed control messages, node crashes, NIC collapses, mid-stream
backup aborts.  After the run a battery of **invariants** is checked:

* the run terminates (no wedged migration);
* the tenant lives on exactly one node (exactly-once census) and the
  frontend agrees with the hosting node's registry;
* a *completed* migration left the tenant on the target, the source
  engine stopped with its successor wired for forwarding;
* an *aborted* migration rolled back: tenant ``ACTIVE`` on the source,
  source engine ``RUNNING`` (never left frozen);
* latency accounting is exact: one sample per completed transaction.

Every fault is drawn from ``simulation.rng`` streams, so a point is a
pure function of (config seed, plan) and replays bit-identically — the
``fingerprint`` field hashes the full observable trajectory, and the
sweep asserts serial and ``--jobs N`` runs agree.

Run standalone::

    python -m repro.experiments.chaos_sweep --scale 0.125 --jobs 2 --check
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms
from ..core.config import CASE_STUDY, ExperimentConfig
from ..db.engine import EngineState
from ..faults import (
    FaultInjector,
    FaultPlan,
    MessageFaults,
    PartitionFault,
    ScheduledFault,
)
from ..middleware.tenant import TenantStatus
from ..migration.fluid import check_fluid_invariants
from ..migration.live import MigrationAborted
from ..obs import Observability, RunReport
from ..parallel import SweepPoint, SweepRunner
from ..resources.units import mb_per_sec
from ..simulation import RandomStreams, Trace
from .common import scaled_config
from .harness import MigrationSpec, _build_cluster, _run_migration_spec, attach_workload
from ..middleware.transport import RetryPolicy

__all__ = ["ChaosRecord", "chaos_point", "sweep_points", "run", "main"]

#: Task path of :func:`chaos_point` for :class:`SweepPoint`.
CHAOS_TASK = "repro.experiments.chaos_sweep:chaos_point"


@dataclass(frozen=True)
class ChaosRecord:
    """Compact, picklable outcome of one chaos point."""

    label: str
    #: "completed", "aborted", or "wedged" (the latter is a violation).
    outcome: str
    abort_reason: str
    #: Invariants that failed (empty = healthy run).
    violations: tuple[str, ...]
    #: SHA-256 over the full observable trajectory; identical across
    #: replays of the same (seed, plan) and across jobs=1 vs jobs=N.
    fingerprint: str
    #: Bus + injector + node counters, sorted (name, value) pairs.
    counters: tuple[tuple[str, float], ...]
    completed: int
    arrived: int
    mean_latency: float
    sim_end: float
    #: Observability snapshot when the point ran with ``observe=True``.
    #: Deliberately *excluded* from ``fingerprint``: the fingerprint
    #: hashes the simulated trajectory, which must not change whether
    #: or not anyone was watching.
    report: Optional[RunReport] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def counter(self, name: str) -> float:
        for key, value in self.counters:
            if key == name:
                return value
        raise KeyError(name)


def _plan_from_kwargs(
    messages: Optional[dict], scheduled: tuple, partitions: tuple = ()
) -> FaultPlan:
    return FaultPlan(
        messages=MessageFaults(**messages) if messages else MessageFaults(),
        scheduled=tuple(ScheduledFault(**dict(s)) for s in scheduled),
        partitions=tuple(PartitionFault(**dict(p)) for p in partitions),
    )


def chaos_point(
    config: ExperimentConfig,
    spec: MigrationSpec,
    label: str = "",
    messages: Optional[dict] = None,
    scheduled: tuple = (),
    partitions: tuple = (),
    warmup: float = 5.0,
    run_limit: float = 240.0,
    cooldown: float = 2.0,
    heartbeat_interval: float = 0.5,
    detector_interval: float = 0.5,
    miss_threshold: float = 3.0,
    suspect_grace: float = 0.0,
    lease_ttl: Optional[float] = None,
    observe: bool = False,
) -> ChaosRecord:
    """One chaos run: hardened cluster + fault plan + invariant checks.

    ``messages``, ``scheduled``, and ``partitions`` are plain
    dicts/dict-tuples (so sweep points pickle); they are rehydrated
    into a :class:`FaultPlan` here.  ``lease_ttl`` enables migration
    ownership leases with fencing tokens; ``suspect_grace`` inserts the
    failure detector's suspect state.  ``observe=True`` attaches the
    observability runtime and fills ``record.report`` — without
    changing the fingerprint, since observation is read-only.
    """
    plan = _plan_from_kwargs(messages, tuple(scheduled), tuple(partitions))
    streams = RandomStreams(config.seed)
    cluster = _build_cluster(
        config, streams, retry_policy=RetryPolicy(), lease_ttl=lease_ttl
    )
    env = cluster.env
    trace = Trace()
    injector = FaultInjector(env, plan, streams).attach(cluster)
    obs = Observability(env).attach(cluster) if observe else None

    source = cluster.node("source")
    target = cluster.node("target")
    tenant = source.create_tenant(
        1, config.tenant.data_bytes, buffer_bytes=config.tenant.buffer_bytes
    )
    source_engine = tenant.engine
    client, _ = attach_workload(
        cluster, config, tenant, streams, trace, series="tenant-1"
    )
    client.start()
    source.attach_latency_series(1, trace.series("tenant-1"))
    cluster.start_heartbeats(heartbeat_interval)
    cluster.start_failure_detectors(detector_interval, miss_threshold, suspect_grace)

    def driver():
        yield env.timeout(warmup)
        try:
            yield env.process(_run_migration_spec(cluster, spec, 1, config))
        except MigrationAborted as exc:
            return ("aborted", str(exc))
        return ("completed", "")

    proc = env.process(driver())
    env.run(until=env.any_of([proc, env.timeout(run_limit)]))
    if proc.triggered:
        outcome, abort_reason = proc.value
        # Cooldown: late duplicates and retries drain, exercising the
        # idempotent handlers after the terminal state is reached.
        env.run(until=env.now + cooldown)
    else:
        outcome, abort_reason = "wedged", ""
    client.stop()

    violations = _check_invariants(
        outcome, cluster, tenant, source_engine, client, trace
    )

    counters: dict[str, float] = dict(cluster.bus.counters())
    for key, value in injector.stats.counters().items():
        counters[f"faults_{key}"] = value
    counters["source_migrations_aborted"] = source.stats.migrations_aborted
    counters["source_notify_failures"] = source.stats.notify_failures
    counters["source_peers_declared_dead"] = source.stats.peers_declared_dead
    counters["duplicates_ignored"] = (
        source.stats.duplicates_ignored + target.stats.duplicates_ignored
    )
    if cluster.lease_manager is not None:
        counters.update(cluster.lease_manager.stats.counters())
        counters["stale_tokens_rejected"] = (
            source.stats.stale_tokens_rejected + target.stats.stale_tokens_rejected
        )
        counters["lease_expired_aborts"] = source.stats.lease_expired_aborts
    counter_pairs = tuple(sorted(counters.items()))

    series = trace.series("tenant-1")
    digest = hashlib.sha256()
    digest.update(
        repr(
            (
                outcome,
                abort_reason,
                counter_pairs,
                tuple(series.times),
                tuple(series.values),
                env.now,
            )
        ).encode()
    )

    return ChaosRecord(
        label=label,
        outcome=outcome,
        abort_reason=abort_reason,
        violations=tuple(violations),
        fingerprint=digest.hexdigest(),
        counters=counter_pairs,
        completed=client.stats.completed,
        arrived=client.stats.arrived,
        mean_latency=series.mean() if len(series) else 0.0,
        sim_end=env.now,
        report=obs.run_report(config, spec) if obs is not None else None,
    )


def _check_invariants(
    outcome: str, cluster, tenant, source_engine, client, trace,
    fluid_migration=None,
) -> list[str]:
    violations: list[str] = []
    if outcome == "wedged":
        violations.append("migration neither completed nor aborted (wedged)")

    census = cluster.tenant_census()
    hosts = census.get(1, [])
    if len(hosts) != 1:
        violations.append(f"tenant 1 hosted on {hosts!r}, expected exactly one node")
    located = cluster.locate(1)
    if hosts and located != hosts[0]:
        violations.append(
            f"frontend says tenant 1 is on {located!r}, registry says {hosts[0]!r}"
        )

    if outcome == "completed":
        if hosts != ["target"]:
            violations.append(f"completed migration left tenant on {hosts!r}")
        if source_engine.state is not EngineState.STOPPED:
            violations.append(
                f"completed migration left source engine {source_engine.state}"
            )
        elif source_engine.successor is None:
            violations.append("stopped source engine has no successor wired")
    elif outcome == "aborted":
        if hosts != ["source"]:
            violations.append(f"aborted migration left tenant on {hosts!r}")
        if tenant.status is not TenantStatus.ACTIVE:
            violations.append(f"aborted migration left tenant status {tenant.status}")
        if source_engine.state is not EngineState.RUNNING:
            violations.append(
                f"aborted migration left source engine {source_engine.state}"
            )
    if source_engine.is_frozen:
        violations.append("source engine left frozen")

    samples = len(trace.series("tenant-1"))
    if samples != client.stats.completed:
        violations.append(
            f"latency accounting mismatch: {samples} samples, "
            f"{client.stats.completed} completions"
        )

    manager = cluster.lease_manager
    if manager is not None:
        # No handover may ever commit under an expired or superseded
        # lease — the controller's audit log is ground truth.
        for record in manager.commit_log:
            if not record.valid:
                violations.append(
                    f"handover committed under invalid lease token "
                    f"{record.token} for tenant {record.tenant_id} "
                    f"at t={record.at:g}"
                )
        held = manager.outstanding()
        if held:
            violations.append(
                f"leases still held after terminal state: {held}"
            )

    if fluid_migration is not None:
        # Chunked handover adds its own surface: every chunk owned
        # exactly once, no page ever served by a non-owner, write
        # accounting conserved across the dual-resident window.
        violations.extend(check_fluid_invariants(fluid_migration))
    return violations


# -- the sweep ----------------------------------------------------------------


def sweep_points(
    config: Optional[ExperimentConfig] = None,
    scale: float = 0.125,
    seed: Optional[int] = None,
    rate_mb: int = 8,
    observe: bool = False,
) -> list[SweepPoint]:
    """The chaos scenarios as independent sweep points."""
    cfg = scaled_config(config or CASE_STUDY, scale, seed)
    spec = MigrationSpec.fixed(mb_per_sec(rate_mb))
    extra = {"observe": True} if observe else {}

    def point(label: str, **kwargs) -> SweepPoint:
        return SweepPoint(
            label=label,
            config=cfg,
            spec=spec,
            task=CHAOS_TASK,
            kwargs={"label": label, **extra, **kwargs},
        )

    return [
        point("baseline"),
        point("drop-05", messages={"drop_prob": 0.05}),
        point("drop-20", messages={"drop_prob": 0.20, "dup_prob": 0.05}),
        point(
            "dup-delay",
            messages={
                "dup_prob": 0.2,
                "delay_prob": 0.3,
                "delay_max": 0.05,
                "reorder_prob": 0.05,
            },
        ),
        point(
            "crash-target",
            scheduled=(
                {"at": 9.0, "kind": "crash_node", "node": "target", "duration": 8.0},
            ),
        ),
        point(
            "abort-backup",
            scheduled=({"at": 8.0, "kind": "abort_backup", "node": "source"},),
        ),
        point(
            "nic-collapse",
            scheduled=(
                {
                    "at": 7.0,
                    "kind": "nic_rate",
                    "node": "target",
                    "factor": 0.25,
                    "duration": 8.0,
                },
            ),
        ),
        # Partition + lease scenarios (PR 9): one-way silence, a full
        # split, a flapping link, a gray node — with leases + the
        # suspect-grace detector guarding the handover.
        point(
            "oneway-target-source",
            partitions=(
                {
                    "at": 8.0,
                    "duration": 6.0,
                    "kind": "oneway",
                    "src": "target",
                    "dst": "source",
                },
            ),
            lease_ttl=4.0,
            suspect_grace=2.0,
        ),
        point(
            "split-mid-migration",
            partitions=(
                {
                    "at": 9.0,
                    "duration": 5.0,
                    "kind": "split",
                    "groups": (("source",), ("target",)),
                },
            ),
            lease_ttl=4.0,
            suspect_grace=2.0,
        ),
        point(
            "flap-source-target",
            partitions=(
                {
                    "at": 7.0,
                    "duration": 10.0,
                    "kind": "flap",
                    "src": "source",
                    "dst": "target",
                    "period": 1.0,
                    "duty": 0.4,
                },
            ),
            lease_ttl=4.0,
            suspect_grace=2.0,
        ),
        point(
            "gray-target",
            partitions=(
                {
                    "at": 6.0,
                    "duration": 8.0,
                    "kind": "gray",
                    "node": "target",
                    "drop_prob": 0.4,
                    "delay": 0.02,
                },
            ),
            lease_ttl=4.0,
            suspect_grace=2.0,
        ),
    ]


def run(
    scale: float = 0.125,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    observe: bool = False,
    pool=None,
) -> dict[str, ChaosRecord]:
    """Run all chaos scenarios; records keyed by scenario label."""
    runner = SweepRunner(jobs=jobs, pool=pool)
    return runner.run_labelled(
        sweep_points(config, scale=scale, seed=seed, observe=observe)
    )


def table(records: dict[str, ChaosRecord]) -> Table:
    out = Table(
        "Chaos sweep: migration under fault injection",
        ["scenario", "outcome", "invariants", "mean latency", "txns", "drops/dups"],
    )
    for label, rec in records.items():
        drops = rec.counter("messages_dropped") + rec.counter("messages_dropped_dead")
        out.add_row(
            label,
            rec.outcome + (f" ({rec.abort_reason})" if rec.abort_reason else ""),
            "OK" if rec.ok else "; ".join(rec.violations),
            format_ms(rec.mean_latency),
            str(rec.completed),
            f"{int(drops)}/{int(rec.counter('messages_duplicated'))}",
        )
    out.add_note(
        "all faults drawn from seeded rng streams; fingerprints replay bit-identically"
    )
    return out


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.125)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any invariant is violated or replay diverges",
    )
    parser.add_argument("--out", type=str, default=None, help="write JSON report")
    parser.add_argument(
        "--obs-out",
        type=str,
        default=None,
        help="run with observability attached and write one "
        "<label>.report.json per scenario into this directory",
    )
    args = parser.parse_args(argv)

    observe = args.obs_out is not None
    records = run(scale=args.scale, seed=args.seed, jobs=args.jobs, observe=observe)
    print(table(records).render())

    if args.obs_out:
        os.makedirs(args.obs_out, exist_ok=True)
        for label, rec in records.items():
            if rec.report is not None:
                rec.report.write(os.path.join(args.obs_out, f"{label}.report.json"))

    replay_ok = True
    if args.check:
        # Replay serially and compare fingerprints: the whole sweep must
        # be a pure function of (seed, plan), regardless of job count —
        # and of whether observability was attached.
        replay = run(scale=args.scale, seed=args.seed, jobs=1, observe=False)
        for label, rec in records.items():
            if replay[label].fingerprint != rec.fingerprint:
                replay_ok = False
                print(f"REPLAY DIVERGED: {label}", file=sys.stderr)

    if args.out:
        payload = {
            label: {
                "outcome": rec.outcome,
                "abort_reason": rec.abort_reason,
                "violations": list(rec.violations),
                "fingerprint": rec.fingerprint,
                "completed": rec.completed,
                "arrived": rec.arrived,
                "mean_latency": rec.mean_latency,
                "sim_end": rec.sim_end,
                "counters": {k: v for k, v in rec.counters},
            }
            for label, rec in records.items()
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    if args.check:
        bad = [label for label, rec in records.items() if not rec.ok]
        if bad or not replay_ok:
            print(f"invariant violations in: {bad}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
