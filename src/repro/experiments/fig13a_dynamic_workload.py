"""Figure 13a: adapting to a long-term workload change.

"We begin a migration and workload as before, then increase the query
arrival rate by 40% after one minute ... In the case of the fixed
throttle, performance rapidly degrades as the database is unable to
handle both the migration and the new workload ... In the case of
Slacker, migration speed is simply decreased to fit within the reduced
slack, and latency is maintained close to the setpoint (1500 ms)."

The fixed comparator runs at the Slacker run's overall average speed
("a fixed throttle that achieves an equivalent migration speed").

Run standalone::

    python -m repro.experiments.fig13a_dynamic_workload
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_rate
from ..core.config import EVALUATION, ExperimentConfig
from ..parallel import SINGLE_TENANT, SweepPoint, SweepRunner
from ..resources.units import MB
from .common import scaled_config
from .harness import ExperimentOutcome, MigrationSpec, RateChange

__all__ = ["Fig13aResult", "run", "main"]

#: Paper's setpoint for this experiment.
DEFAULT_SETPOINT = 1.5

#: Paper's surge: +40 % arrival rate.
DEFAULT_SURGE = 1.4

#: Surge time after the migration starts, seconds (paper: 60 s into a
#: longer run; scaled runs move it earlier so it lands mid-migration).
DEFAULT_SURGE_AT = 30.0


def _phase_mean(outcome: ExperimentOutcome, start_off: float, end_off: float) -> float:
    values = outcome.tenants[0].latency.window_values(
        outcome.window_start + start_off,
        min(outcome.window_start + end_off, outcome.window_end),
    )
    if not values:
        return math.nan
    return sum(values) / len(values)


@dataclass
class Fig13aResult:
    """Slacker vs. equal-speed fixed throttle across a workload surge."""

    slacker: ExperimentOutcome
    fixed: ExperimentOutcome
    setpoint: float
    surge_at: float
    equivalent_rate: float

    def phase_means(self, outcome: ExperimentOutcome) -> tuple[float, float]:
        """(pre-surge mean, post-surge mean), seconds."""
        pre = _phase_mean(outcome, 0.0, self.surge_at)
        post = _phase_mean(outcome, self.surge_at, float("inf"))
        return pre, post

    def table(self) -> Table:
        table = Table(
            "Figure 13a: +40% workload surge mid-migration "
            f"({self.setpoint * 1000:.0f} ms setpoint)",
            ["run", "speed", "pre-surge latency", "post-surge latency", "std"],
        )
        for label, outcome in (("slacker", self.slacker), ("fixed", self.fixed)):
            pre, post = self.phase_means(outcome)
            table.add_row(
                label,
                format_rate(outcome.average_migration_rate),
                format_ms(pre),
                format_ms(post),
                format_ms(outcome.latency_stddev),
            )
        table.add_note(
            "paper: fixed throttle degrades after the surge; Slacker "
            "sheds migration speed and holds the setpoint"
        )
        return table


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    setpoint: float = DEFAULT_SETPOINT,
    surge_factor: float = DEFAULT_SURGE,
    surge_at: float = DEFAULT_SURGE_AT,
    warmup: float = 20.0,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Fig13aResult:
    """Run Slacker and the equal-speed fixed comparator.

    The fixed comparator's rate is the Slacker run's measured average,
    so the two points are inherently sequential; each still dispatches
    through the :class:`SweepRunner`, sharing ``run all``'s warm
    worker pool and result cache.
    """
    cfg = scaled_config(config or EVALUATION, scale, seed)
    surge_at = surge_at * max(scale, 0.25)
    change = RateChange(at=surge_at, factor=surge_factor)
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)

    def point(label: str, spec: MigrationSpec) -> SweepPoint:
        return SweepPoint(
            label=label,
            config=cfg,
            spec=spec,
            task=SINGLE_TENANT,
            kwargs={"warmup": warmup, "rate_change": change},
        )

    [slacker] = runner.run([point("slacker", MigrationSpec.dynamic(setpoint))])
    equivalent_rate = slacker.average_migration_rate
    [fixed] = runner.run([point("fixed", MigrationSpec.fixed(equivalent_rate))])
    return Fig13aResult(
        slacker=slacker,
        fixed=fixed,
        setpoint=setpoint,
        surge_at=surge_at,
        equivalent_rate=equivalent_rate,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(result.table().render())
    print(f"\nequivalent fixed rate: {result.equivalent_rate / MB:.1f} MB/s")


if __name__ == "__main__":  # pragma: no cover
    main()
