"""Figure 13b: migrating one of five collocated tenants.

"We evaluate a 5-tenant scenario by creating five tenant databases and
running five independent workloads ... We then migrate only a single
tenant, while the other four continue to execute their workloads ...
As in the single tenant case ... latency is maintained close to the
setpoint, and absolute latency is significantly below the fixed
throttle case."  (Section 5.6)

Slacker's PID input here is the latency average across *all* tenants
on the server — the per-server SLA model of Section 5.6.

Run standalone::

    python -m repro.experiments.fig13b_multitenant
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_rate
from ..analysis.stats import summarize
from ..core.config import EVALUATION, ExperimentConfig
from ..parallel import MULTI_TENANT, SweepPoint, SweepRunner
from .common import scaled_config
from .harness import ExperimentOutcome, MigrationSpec

__all__ = ["Fig13bResult", "run", "main"]

#: Setpoint for the multi-tenant run, seconds.
DEFAULT_SETPOINT = 1.5

#: Number of collocated tenants (paper: 5).
DEFAULT_TENANTS = 5


@dataclass
class Fig13bResult:
    """Slacker vs. equal-speed fixed throttle on a 5-tenant server."""

    slacker: ExperimentOutcome
    fixed: ExperimentOutcome
    setpoint: float
    num_tenants: int

    def per_tenant_means(self, outcome: ExperimentOutcome) -> list[float]:
        """Mean latency per tenant inside the measurement window."""
        means = []
        for tenant in outcome.tenants:
            summary = summarize(
                tenant.window_latencies(outcome.window_start, outcome.window_end)
            )
            means.append(summary.mean)
        return means

    def table(self) -> Table:
        table = Table(
            f"Figure 13b: migrating 1 of {self.num_tenants} tenants "
            f"({self.setpoint * 1000:.0f} ms setpoint)",
            ["run", "speed", "server-wide latency", "std", "per-tenant means"],
        )
        for label, outcome in (("slacker", self.slacker), ("fixed", self.fixed)):
            per_tenant = ", ".join(
                f"{m * 1000:.0f}" for m in self.per_tenant_means(outcome)
            )
            table.add_row(
                label,
                format_rate(outcome.average_migration_rate),
                format_ms(outcome.mean_latency),
                format_ms(outcome.latency_stddev),
                per_tenant + " ms",
            )
        table.add_note(
            "paper: server-wide latency near the setpoint and below the "
            "equal-speed fixed throttle"
        )
        return table


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    setpoint: float = DEFAULT_SETPOINT,
    num_tenants: int = DEFAULT_TENANTS,
    warmup: float = 20.0,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Fig13bResult:
    """Run the multi-tenant migration and its fixed comparator.

    The comparator's rate comes from the Slacker run, so the points
    are sequential; both dispatch through the :class:`SweepRunner`,
    sharing ``run all``'s warm worker pool and result cache.
    """
    cfg = scaled_config(config or EVALUATION, scale, seed)
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)

    def point(label: str, spec: MigrationSpec) -> SweepPoint:
        return SweepPoint(
            label=label,
            config=cfg,
            spec=spec,
            task=MULTI_TENANT,
            kwargs={"num_tenants": num_tenants, "warmup": warmup},
        )

    [slacker] = runner.run([point("slacker", MigrationSpec.dynamic(setpoint))])
    [fixed] = runner.run(
        [point("fixed", MigrationSpec.fixed(slacker.average_migration_rate))]
    )
    return Fig13bResult(
        slacker=slacker, fixed=fixed, setpoint=setpoint, num_tenants=num_tenants
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
