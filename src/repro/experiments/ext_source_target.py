"""Section 6 extension: throttling both source and target.

"A migration similarly impacts the target server and may interfere
with preexisting tenants.  We have implemented a version of Slacker
that accounts for this case by considering transaction latencies on
both the source and target server — at each timestep, the PID
controller is simply provided the max of the source and target
latencies."

The experiment places a busy tenant on the *target* server, migrates a
tenant into it, and compares source-only control against
max(source, target) control: with both-ends control, the target
tenant's latency is held near the setpoint instead of being collateral
damage.

Run standalone::

    python -m repro.experiments.ext_source_target
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from ..analysis.report import Table, format_ms, format_rate
from ..core.config import EVALUATION, ExperimentConfig
from ..middleware.cluster import SlackerCluster
from ..middleware.node import NodeConfig
from ..parallel import SweepPoint, SweepRunner
from ..simulation import Environment, RandomStreams, Trace
from .common import scaled_config
from .harness import attach_workload

__all__ = ["SourceTargetResult", "variant_point", "run", "main"]

#: Task path of :func:`variant_point` for :class:`SweepPoint`.
VARIANT_TASK = "repro.experiments.ext_source_target:variant_point"

#: Setpoint used for both variants, seconds.
DEFAULT_SETPOINT = 1.0


@dataclass
class SourceTargetResult:
    """One variant's measurements."""

    both_ends: bool
    source_latency_mean: float
    target_latency_mean: float
    migration_rate: float
    duration: float


@dataclass
class SourceTargetComparison:
    """Source-only vs. max(source, target) control."""

    source_only: SourceTargetResult
    both_ends: SourceTargetResult
    setpoint: float

    def table(self) -> Table:
        table = Table(
            "Section 6 extension: throttle by max(source, target) latency "
            f"({self.setpoint * 1000:.0f} ms setpoint)",
            ["controller input", "speed", "source tenant", "target tenant"],
        )
        for result in (self.source_only, self.both_ends):
            table.add_row(
                "max(source, target)" if result.both_ends else "source only",
                format_rate(result.migration_rate),
                format_ms(result.source_latency_mean),
                format_ms(result.target_latency_mean),
            )
        table.add_note(
            "paper: whichever server has the least slack determines the rate"
        )
        return table


def _run_variant(
    config: ExperimentConfig, setpoint: float, both_ends: bool, warmup: float
) -> SourceTargetResult:
    streams = RandomStreams(config.seed)
    env = Environment()
    cluster = SlackerCluster(
        env,
        ["source", "target"],
        server_params=config.server,
        node_config=NodeConfig(
            buffer_bytes=config.tenant.buffer_bytes,
            max_migration_rate=config.max_migration_rate,
            chunk_bytes=config.chunk_bytes,
            throttle_both_ends=both_ends,
        ),
        streams=streams,
    )
    trace = Trace()
    source = cluster.node("source")
    target = cluster.node("target")

    moving = source.create_tenant(1, config.tenant.data_bytes)
    moving_client, _ = attach_workload(
        cluster, config, moving, streams, trace, series="tenant-1"
    )
    moving_client.start()
    source.attach_latency_series(1, trace.series("tenant-1"))

    # A pre-existing busy tenant on the target server: migration writes
    # land on its disk.  Its workload runs hotter than the mover's.
    resident = target.create_tenant(2, config.tenant.data_bytes)
    resident_client, _ = attach_workload(
        cluster,
        config,
        resident,
        streams,
        trace,
        series="tenant-2",
        arrival_rate=config.workload.arrival_rate * 1.5,
    )
    resident_client.start()
    target.attach_latency_series(2, trace.series("tenant-2"))

    def experiment():
        yield env.timeout(warmup)
        start = env.now
        result = yield env.process(
            source.migrate_tenant(1, "target", setpoint=setpoint)
        )
        return start, env.now, result

    proc = env.process(experiment())
    start, end, migration = env.run(until=proc)

    def window_mean(series_name: str) -> float:
        values = trace.series(series_name).window_values(start, end)
        if not values:
            return math.nan
        return sum(values) / len(values)

    return SourceTargetResult(
        both_ends=both_ends,
        source_latency_mean=window_mean("tenant-1"),
        target_latency_mean=window_mean("tenant-2"),
        migration_rate=migration.average_rate,
        duration=migration.duration,
    )


def variant_point(
    config: ExperimentConfig,
    spec=None,
    setpoint: float = DEFAULT_SETPOINT,
    both_ends: bool = False,
    warmup: float = 20.0,
) -> SourceTargetResult:
    """One controller variant as a sweep task (compact picklable result)."""
    return _run_variant(config, setpoint, both_ends=both_ends, warmup=warmup)


def run(
    scale: float = 1.0,
    config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    setpoint: float = DEFAULT_SETPOINT,
    warmup: float = 20.0,
    jobs: int = 1,
    cache=None,
    pool=None,
) -> SourceTargetComparison:
    """Run both controller variants against a loaded target server.

    The two variants are independent simulations, dispatched together
    through the :class:`SweepRunner` so they fan out across ``run
    all``'s shared warm worker pool.
    """
    cfg = scaled_config(config or EVALUATION, scale, seed)
    # Slow the target disk so the incoming snapshot writes genuinely
    # contend with the resident tenant there.
    disk = replace(cfg.server.disk, sequential_bandwidth=cfg.server.disk.sequential_bandwidth / 2)
    cfg = replace(cfg, server=replace(cfg.server, disk=disk))
    runner = SweepRunner(jobs=jobs, cache=cache, pool=pool)
    source_only, both_ends = runner.run(
        [
            SweepPoint(
                label="source-only",
                config=cfg,
                spec=None,
                task=VARIANT_TASK,
                kwargs={"setpoint": setpoint, "both_ends": False, "warmup": warmup},
            ),
            SweepPoint(
                label="both-ends",
                config=cfg,
                spec=None,
                task=VARIANT_TASK,
                kwargs={"setpoint": setpoint, "both_ends": True, "warmup": warmup},
            ),
        ]
    )
    return SourceTargetComparison(
        source_only=source_only,
        both_ends=both_ends,
        setpoint=setpoint,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(run().table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
