"""Service-level agreements over transaction latency.

The paper's SLA examples are percentile-latency bounds — "e.g., the
95th percentile of queries has a max latency of 1 second" (Section 3),
and the case study checks runs against "an SLA specifying a max 500 ms
latency in the 99th percentile" and "1000 ms latency in the 90th
percentile" (Section 3.2).  :class:`LatencySla` expresses exactly
those, and :class:`SlaMonitor` does windowed violation accounting with
a per-violation penalty, the provider-cost model of Section 1.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..simulation.trace import Series

__all__ = ["LatencySla", "SlaWindowReport", "SlaMonitor", "suggest_setpoint"]


@dataclass(frozen=True)
class LatencySla:
    """'percentile of transactions must finish within bound seconds'."""

    #: Percentile in (0, 100].
    percentile: float
    #: Latency bound, seconds.
    bound: float

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")
        if self.bound <= 0:
            raise ValueError(f"bound must be positive, got {self.bound}")

    def satisfied_by(self, latencies: Sequence[float]) -> bool:
        """True if the sample meets the SLA (vacuously true if empty)."""
        if not latencies:
            return True
        ordered = sorted(latencies)
        rank = max(1, math.ceil(self.percentile / 100.0 * len(ordered)))
        return ordered[rank - 1] <= self.bound

    def violation_fraction(self, latencies: Sequence[float]) -> float:
        """Fraction of transactions exceeding the bound."""
        if not latencies:
            return 0.0
        over = sum(1 for latency in latencies if latency > self.bound)
        return over / len(latencies)

    def describe(self) -> str:
        """Human-readable form, e.g. 'p99 <= 500 ms'."""
        return f"p{self.percentile:g} <= {self.bound * 1000:g} ms"


@dataclass(frozen=True)
class SlaWindowReport:
    """SLA evaluation of one accounting window."""

    start: float
    end: float
    transactions: int
    satisfied: bool


class SlaMonitor:
    """Evaluates an SLA over fixed accounting windows of a latency series."""

    def __init__(self, sla: LatencySla, window: float = 10.0, penalty: float = 1.0):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if penalty < 0:
            raise ValueError(f"penalty must be >= 0, got {penalty}")
        self.sla = sla
        self.window = window
        self.penalty = penalty

    def evaluate(self, series: Series, start: float, end: float) -> list[SlaWindowReport]:
        """Chop [start, end) into windows and check each one."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        reports: list[SlaWindowReport] = []
        t = start
        while t < end:
            window_end = min(end, t + self.window)
            values = series.window_values(t, window_end)
            reports.append(
                SlaWindowReport(
                    start=t,
                    end=window_end,
                    transactions=len(values),
                    satisfied=self.sla.satisfied_by(values),
                )
            )
            t = window_end
        return reports

    def total_penalty(self, series: Series, start: float, end: float) -> float:
        """Penalty cost: one ``penalty`` per violated window."""
        reports = self.evaluate(series, start, end)
        return self.penalty * sum(1 for report in reports if not report.satisfied)


def suggest_setpoint(
    sla: LatencySla,
    baseline_latencies: Sequence[float],
    safety_factor: float = 0.8,
    min_headroom: float = 2.0,
) -> float:
    """A reasonable controller setpoint for an SLA (paper Section 6).

    The paper warns against the greedy choice (setpoint = the SLA
    bound): percentile SLAs punish *variance*, and the migration's
    bursts spread latency well above its mean.  The suggestion is the
    smaller of

    * ``safety_factor`` x the SLA bound (keep the mean clearly under
      the bound so the tail stays under it too), and

    while never dropping below ``min_headroom`` x the observed baseline
    mean — a setpoint below that cannot be distinguished from the
    baseline noise floor and would keep the migration near-paused.
    """
    if not 0 < safety_factor <= 1:
        raise ValueError(f"safety_factor must be in (0, 1], got {safety_factor}")
    if min_headroom < 1:
        raise ValueError(f"min_headroom must be >= 1, got {min_headroom}")
    cap = safety_factor * sla.bound
    if not baseline_latencies:
        return cap
    baseline_mean = sum(baseline_latencies) / len(baseline_latencies)
    floor = min_headroom * baseline_mean
    # The floor wins when the baseline is already close to the bound —
    # the caller should then question whether migrating now is wise.
    return max(cap, floor)
