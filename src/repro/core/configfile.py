"""Loading experiment configurations from TOML files.

Lets users define custom scenarios without writing Python::

    # myconfig.toml
    preset = "evaluation"      # start from a preset ...
    seed = 7

    [workload]                 # ... and override what differs
    arrival_rate = 5.0
    burst_factor = 2.0

    [tenant]
    data_bytes = 536870912     # 512 MB

    [migration]
    max_rate_mb = 20.0
    chunk_mb = 2.0

Then ``load_config("myconfig.toml")`` or, from the CLI,
``python -m repro run fig5 --config myconfig.toml``.
"""

from __future__ import annotations

import tomllib
from dataclasses import replace
from pathlib import Path
from typing import Any

from ..resources.units import MB
from .config import CASE_STUDY, EVALUATION, ExperimentConfig

__all__ = ["ConfigFileError", "load_config", "config_from_dict"]

#: Preset names accepted in the ``preset`` key.
PRESETS = {"evaluation": EVALUATION, "case-study": CASE_STUDY}

#: Allowed keys per section (unknown keys are errors, not typos-to-ignore).
_WORKLOAD_KEYS = {
    "arrival_rate",
    "ops_per_txn",
    "mpl",
    "key_distribution",
    "burst_factor",
    "burst_mean_normal",
    "burst_mean_burst",
}
_TENANT_KEYS = {"data_bytes", "buffer_bytes", "row_size"}
_MIGRATION_KEYS = {"max_rate_mb", "chunk_mb"}


class ConfigFileError(Exception):
    """Raised for malformed or unknown configuration content."""


def _check_keys(section: str, mapping: dict, allowed: set[str]) -> None:
    unknown = set(mapping) - allowed
    if unknown:
        raise ConfigFileError(
            f"unknown key(s) in [{section}]: {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def config_from_dict(payload: dict[str, Any]) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from a parsed TOML document."""
    top_allowed = {"preset", "seed", "workload", "tenant", "migration"}
    _check_keys("top level", payload, top_allowed)

    preset_name = payload.get("preset", "evaluation")
    if preset_name not in PRESETS:
        raise ConfigFileError(
            f"unknown preset {preset_name!r}; choose from {sorted(PRESETS)}"
        )
    config = PRESETS[preset_name]

    if "seed" in payload:
        config = config.with_seed(int(payload["seed"]))

    workload_overrides = payload.get("workload", {})
    if workload_overrides:
        _check_keys("workload", workload_overrides, _WORKLOAD_KEYS)
        try:
            config = replace(
                config, workload=replace(config.workload, **workload_overrides)
            )
        except (TypeError, ValueError) as exc:
            raise ConfigFileError(f"bad [workload] values: {exc}") from exc

    tenant_overrides = payload.get("tenant", {})
    if tenant_overrides:
        _check_keys("tenant", tenant_overrides, _TENANT_KEYS)
        try:
            config = replace(
                config, tenant=replace(config.tenant, **tenant_overrides)
            )
        except (TypeError, ValueError) as exc:
            raise ConfigFileError(f"bad [tenant] values: {exc}") from exc

    migration_overrides = payload.get("migration", {})
    if migration_overrides:
        _check_keys("migration", migration_overrides, _MIGRATION_KEYS)
        updates = {}
        if "max_rate_mb" in migration_overrides:
            rate = float(migration_overrides["max_rate_mb"])
            if rate <= 0:
                raise ConfigFileError("migration.max_rate_mb must be positive")
            updates["max_migration_rate"] = rate * MB
        if "chunk_mb" in migration_overrides:
            chunk = float(migration_overrides["chunk_mb"])
            if chunk <= 0:
                raise ConfigFileError("migration.chunk_mb must be positive")
            updates["chunk_bytes"] = int(chunk * MB)
        config = replace(config, **updates)

    return config


def load_config(path: str | Path) -> ExperimentConfig:
    """Load an :class:`ExperimentConfig` from a TOML file."""
    path = Path(path)
    try:
        payload = tomllib.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigFileError(f"no such config file: {path}") from None
    except tomllib.TOMLDecodeError as exc:
        raise ConfigFileError(f"{path}: {exc}") from exc
    return config_from_dict(payload)
