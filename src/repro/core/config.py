"""Experiment configuration presets.

Two calibrated presets correspond to the paper's two testbed setups:

* :data:`CASE_STUDY` — the Section 3 slack case study: a 1 GB tenant
  under a moderately heavy mixed workload.  Anchors: baseline mean
  latency ≈ 79 ms; stable under 4 MB/s and 8 MB/s migrations with
  rising mean latency; heavy oscillation at 12 MB/s; divergence
  (latency grows without bound) at 16 MB/s.
* :data:`EVALUATION` — the Section 5 evaluation setup, which the paper
  notes has "a lower query arrival rate and smaller buffer size" than
  the case study, yielding more slack.  Anchors: fixed-throttle knee
  around 25 MB/s; Slacker average speeds rising from ≈ 6 MB/s at a
  500 ms setpoint to a plateau of ≈ 23 MB/s past a 3500 ms setpoint.

Absolute milliseconds depend on the authors' exact hardware; the
presets are calibrated so the anchors land close and the orderings and
crossovers (which every bench asserts) match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..control.pid import PAPER_GAINS, PidGains
from ..resources.cpu import CpuParams
from ..resources.disk import DiskParams
from ..resources.network import NetworkParams
from ..resources.server import ServerParams
from ..resources.units import GB, KB, MB
from ..workload.mix import SLACKER_MIX, OperationMix

__all__ = [
    "WorkloadConfig",
    "TenantConfig",
    "ExperimentConfig",
    "CASE_STUDY",
    "EVALUATION",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """One tenant's client workload."""

    #: Mean Poisson arrival rate, transactions/second.
    arrival_rate: float = 8.0
    #: Operations per transaction (paper: 10).
    ops_per_txn: int = 10
    #: Operation mix (paper: 85 % read / 15 % write).
    mix: OperationMix = field(default_factory=lambda: SLACKER_MIX)
    #: Multiprogramming level (paper: 10).
    mpl: int = 10
    #: Key distribution: "uniform", "zipfian", "latest", or "hotspot".
    key_distribution: str = "uniform"
    #: Burst-state rate multiplier (1.0 = plain Poisson, no bursts).
    burst_factor: float = 1.0
    #: Mean dwell time in the normal state, seconds.
    burst_mean_normal: float = 20.0
    #: Mean dwell time in the burst state, seconds.
    burst_mean_burst: float = 5.0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {self.arrival_rate}")
        if self.ops_per_txn <= 0 or self.mpl <= 0:
            raise ValueError("ops_per_txn and mpl must be positive")
        if self.key_distribution not in ("uniform", "zipfian", "latest", "hotspot"):
            raise ValueError(f"unknown key_distribution {self.key_distribution!r}")
        if self.burst_factor < 1:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        if self.burst_mean_normal <= 0 or self.burst_mean_burst <= 0:
            raise ValueError("burst dwell times must be positive")

    def scaled_rate(self, factor: float) -> "WorkloadConfig":
        """Copy with the arrival rate multiplied by ``factor``."""
        return replace(self, arrival_rate=self.arrival_rate * factor)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant database."""

    #: Data directory size (paper: 1 GB pre-populated database).
    data_bytes: int = 1 * GB
    #: InnoDB buffer pool size (paper evaluation: 128 MB).
    buffer_bytes: int = 128 * MB
    #: Row size, bytes (YCSB-style ~1 KB records).
    row_size: int = 1 * KB

    def __post_init__(self) -> None:
        if self.data_bytes <= 0 or self.buffer_bytes <= 0 or self.row_size <= 0:
            raise ValueError("tenant sizes must be positive")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one experiment run needs."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    tenant: TenantConfig = field(default_factory=TenantConfig)
    server: ServerParams = field(default_factory=ServerParams)
    #: Migration chunk size, bytes.
    chunk_bytes: int = 256 * KB
    #: Full-speed rate that 100 % PID output maps to, bytes/second.
    max_migration_rate: float = 32.0 * MB
    #: PID gains (paper values).
    gains: PidGains = PAPER_GAINS
    #: Root RNG seed.
    seed: int = 42

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """Copy with a different seed (for replication studies)."""
        return replace(self, seed=seed)

    def with_arrival_rate(self, rate: float) -> "ExperimentConfig":
        """Copy with a different workload arrival rate."""
        return replace(self, workload=replace(self.workload, arrival_rate=rate))


def _disk_of_the_era() -> DiskParams:
    """The testbed's effective disk: ~5 ms positioning time and an
    effective snapshot scan rate of 24 MB/s (XtraBackup's page-verifying
    scan of InnoDB files, not a raw read of the platter)."""
    return DiskParams(
        seek_time=5.0e-3,
        sequential_bandwidth=24.0 * MB,
        random_bandwidth=60.0 * MB,
    )


def _server_of_the_era() -> ServerParams:
    return ServerParams(
        cpu=CpuParams(cores=4),
        disk=_disk_of_the_era(),
        network=NetworkParams(),
    )


#: Transfer chunk: the xtrabackup -> pv -> nc pipe moves data in
#: multi-megabyte buffer flushes, which is what makes migration I/O
#: bursty at second granularity (the paper's "brief latency blips").
_CHUNK_BYTES = 2 * MB

#: Section 3 case study: heavier workload, larger buffer, less slack —
#: migration slack is exhausted between 12 and 16 MB/s (Figures 5, 6).
CASE_STUDY = ExperimentConfig(
    workload=WorkloadConfig(arrival_rate=6.5, burst_factor=2.0),
    tenant=TenantConfig(data_bytes=1 * GB, buffer_bytes=256 * MB),
    server=_server_of_the_era(),
    chunk_bytes=_CHUNK_BYTES,
    max_migration_rate=24.0 * MB,
    seed=42,
)

#: Section 5 evaluation: lower base arrival rate, burstier, 128 MB
#: buffer — more slack, with the fixed-throttle knee at the top of the
#: sweep range (Figures 11-13).  Our knee sits near 15 MB/s where the
#: paper's testbed reached ~25 MB/s (our effective disk is slower);
#: rates scale by ~0.6x, orderings and crossovers are preserved.
EVALUATION = ExperimentConfig(
    workload=WorkloadConfig(
        arrival_rate=3.2,
        burst_factor=3.5,
        burst_mean_normal=25.0,
        burst_mean_burst=6.0,
    ),
    tenant=TenantConfig(data_bytes=1 * GB, buffer_bytes=128 * MB),
    server=_server_of_the_era(),
    chunk_bytes=_CHUNK_BYTES,
    max_migration_rate=24.0 * MB,
    seed=42,
)
