"""Core public API: configuration presets, SLAs, and the Slacker facade."""

from .config import (
    CASE_STUDY,
    EVALUATION,
    ExperimentConfig,
    TenantConfig,
    WorkloadConfig,
)
from .configfile import ConfigFileError, config_from_dict, load_config
from .sla import LatencySla, SlaMonitor, SlaWindowReport
from .slacker import Slacker

__all__ = [
    "CASE_STUDY",
    "ConfigFileError",
    "EVALUATION",
    "ExperimentConfig",
    "LatencySla",
    "Slacker",
    "SlaMonitor",
    "SlaWindowReport",
    "TenantConfig",
    "WorkloadConfig",
    "config_from_dict",
    "load_config",
]
