"""The Slacker facade: the library's high-level entry point.

Wraps cluster construction, tenant creation, workload attachment, and
migration into a small API so that downstream users (and the examples)
can write the paper's scenarios in a few lines:

>>> from repro import Slacker, EVALUATION          # doctest: +SKIP
>>> slacker = Slacker(EVALUATION, nodes=["a", "b"])
>>> tenant = slacker.add_tenant(1, node="a", workload=True)
>>> slacker.advance(20.0)                           # warm up
>>> result = slacker.migrate(1, "b", setpoint=1.0)  # PID-throttled
>>> result.downtime < 1.0
True
"""

from __future__ import annotations

from typing import Optional

from ..experiments.harness import attach_workload
from ..middleware.cluster import SlackerCluster
from ..middleware.node import NodeConfig
from ..analysis.report import Table, format_ms
from ..middleware.tenant import Tenant
from ..migration.live import LiveMigrationResult
from ..simulation import Environment, RandomStreams, Series, Trace
from ..workload.client import BenchmarkClient
from .config import EVALUATION, ExperimentConfig

__all__ = ["Slacker"]


class Slacker:
    """A running Slacker deployment inside one simulation environment."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        nodes: Optional[list[str]] = None,
        seed: Optional[int] = None,
    ):
        self.config = config or EVALUATION
        if seed is not None:
            self.config = self.config.with_seed(seed)
        node_names = nodes or ["server-1", "server-2"]
        self.streams = RandomStreams(self.config.seed)
        self.env = Environment()
        self.trace = Trace()
        self.cluster = SlackerCluster(
            self.env,
            node_names,
            server_params=self.config.server,
            node_config=NodeConfig(
                buffer_bytes=self.config.tenant.buffer_bytes,
                max_migration_rate=self.config.max_migration_rate,
                chunk_bytes=self.config.chunk_bytes,
            ),
            streams=self.streams,
        )
        self._clients: dict[int, BenchmarkClient] = {}
        self._arrivals: dict[int, object] = {}

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self.env.now

    def advance(self, seconds: float) -> None:
        """Run the simulation forward by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.env.run(until=self.env.now + seconds)

    # -- tenants and workloads ---------------------------------------------------

    def node_names(self) -> list[str]:
        """Names of the cluster's nodes."""
        return sorted(self.cluster.nodes)

    def add_tenant(
        self,
        tenant_id: int,
        node: str,
        data_bytes: Optional[int] = None,
        workload: bool = False,
        arrival_rate: Optional[float] = None,
    ) -> Tenant:
        """Create a tenant on ``node``; optionally attach a benchmark workload."""
        slacker_node = self.cluster.node(node)
        tenant = slacker_node.create_tenant(
            tenant_id,
            data_bytes or self.config.tenant.data_bytes,
            buffer_bytes=self.config.tenant.buffer_bytes,
        )
        if workload:
            client, arrivals = attach_workload(
                self.cluster,
                self.config,
                tenant,
                self.streams,
                self.trace,
                series=f"tenant-{tenant_id}",
                arrival_rate=arrival_rate,
            )
            client.start()
            slacker_node.attach_latency_series(
                tenant_id, self.trace.series(f"tenant-{tenant_id}")
            )
            self._clients[tenant_id] = client
            self._arrivals[tenant_id] = arrivals
        return tenant

    def delete_tenant(self, tenant_id: int) -> None:
        """Stop a tenant's workload (if any) and delete the tenant."""
        client = self._clients.pop(tenant_id, None)
        if client is not None:
            client.stop()
        self._arrivals.pop(tenant_id, None)
        node = self.cluster.locate(tenant_id)
        if node is not None:
            self.cluster.node(node).delete_tenant(tenant_id)

    def locate(self, tenant_id: int) -> Optional[str]:
        """Node currently hosting a tenant (via the frontend)."""
        return self.cluster.locate(tenant_id)

    def latency_series(self, tenant_id: int) -> Series:
        """The latency series recorded for a tenant's workload."""
        return self.trace.series(f"tenant-{tenant_id}")

    def client(self, tenant_id: int) -> BenchmarkClient:
        """The benchmark client attached to a tenant."""
        return self._clients[tenant_id]

    def scale_workload(self, tenant_id: int, factor: float) -> None:
        """Multiply a tenant's arrival rate by ``factor`` (live)."""
        arrivals = self._arrivals.get(tenant_id)
        if arrivals is None:
            raise KeyError(f"tenant {tenant_id} has no attached workload")
        arrivals.scale_rate(factor)

    def report(
        self,
        window: float = 60.0,
        sla: Optional["LatencySla"] = None,
    ) -> str:
        """A cluster status report over the trailing ``window`` seconds.

        One row per tenant: location, throughput, mean/p95 latency, and
        (when an SLA is given) whether the window satisfied it.
        """
        from .sla import LatencySla  # local import avoids a cycle at load

        columns = ["tenant", "node", "txns", "mean", "p95"]
        if sla is not None:
            columns.append(sla.describe())
        table = Table(
            f"cluster report (last {window:g} s, t={self.now:.0f} s)", columns
        )
        start = max(0.0, self.now - window)
        for location in self.cluster.frontend.tenants():
            series_name = f"tenant-{location.tenant_id}"
            values = (
                self.trace[series_name].window_values(start, self.now)
                if series_name in self.trace
                else []
            )
            mean = sum(values) / len(values) if values else None
            p95 = sorted(values)[max(0, int(len(values) * 0.95) - 1)] if values else None
            row = [
                location.tenant_id,
                location.node,
                len(values),
                format_ms(mean),
                format_ms(p95),
            ]
            if sla is not None:
                row.append("ok" if sla.satisfied_by(values) else "VIOLATED")
            table.add_row(*row)
        return table.render()

    # -- migration ----------------------------------------------------------------

    def migrate(
        self,
        tenant_id: int,
        target: str,
        setpoint: Optional[float] = None,
        fixed_rate: Optional[float] = None,
    ) -> LiveMigrationResult:
        """Migrate a tenant (blocking: runs the simulation to completion).

        Give ``setpoint`` (seconds) for a PID-managed dynamic throttle,
        or ``fixed_rate`` (bytes/second) for a fixed throttle.
        """
        source_name = self.cluster.locate(tenant_id)
        if source_name is None:
            raise KeyError(f"unknown tenant {tenant_id}")
        source = self.cluster.node(source_name)
        proc = self.env.process(
            source.migrate_tenant(
                tenant_id, target, setpoint=setpoint, fixed_rate=fixed_rate
            )
        )
        return self.env.run(until=proc)
