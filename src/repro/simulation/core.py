"""Discrete-event simulation kernel.

This module implements a small, self-contained process-based
discrete-event simulator in the style of SimPy.  Simulated activities
are Python generators ("processes") that ``yield`` events; the
:class:`Environment` advances virtual time from event to event.

The kernel is the substrate on which the rest of the reproduction is
built: servers, disks, database engines, workload clients, and the
Slacker migration controller are all processes scheduled by an
:class:`Environment`.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

#: Bound once at import so the scheduling hot path pays a module-global
#: lookup instead of two attribute lookups per event.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
]

#: Sentinel marking an event that has not been triggered yet.
_PENDING = object()

#: Scheduling priority for "urgent" events (processed before normal
#: events that share the same timestamp).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch the exception and continue; the
    ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` *triggers* it, scheduling it on the environment's
    event queue.  When the environment pops the event it becomes
    *processed* and all registered callbacks fire.

    Event subclasses declare ``__slots__``: millions of events are
    allocated per run, and slotted instances are both smaller and
    faster to create than dict-backed ones.  Subclasses outside the
    kernel may omit ``__slots__`` and regain a ``__dict__``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # A failed event whose exception was consumed (e.g. thrown into
        # a waiting process) is "defused" and will not crash the run.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has invoked the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, else None."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers after a fixed ``delay`` of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the kernel's most-allocated event, and they are
        # born already triggered, so the generic Event.__init__ path
        # (start pending, then flip state) is pure overhead: assign the
        # final state directly instead of going through succeed()'s
        # pending-state check.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._schedule(self, delay=delay)


class _Initialize(Event):
    """Immediate event used to start a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, priority=URGENT)


class Process(Event):
    """A process wraps a generator and is itself an event.

    The process event triggers when the generator returns (successfully,
    with the generator's return value) or raises (as a failure).  Other
    processes may therefore ``yield`` a process to wait for it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting for.
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not exited."""
        return self._value is _PENDING

    @property
    def name(self) -> str:
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process or a process from within itself is
        an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=URGENT)
        # Detach from the event we were waiting on so that its later
        # processing does not resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        # Hot path: every generator step goes through here, so hoist the
        # attribute loads (generator, its bound send/throw) out of the loop.
        env = self.env
        env._active_process = self
        generator = self._generator
        send = generator.send
        throw = generator.throw
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = throw(event._value)
            except StopIteration as exc:
                self._target = None
                self.succeed(exc.value)
                break
            except BaseException as exc:
                self._target = None
                self.fail(exc)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    throw(error)
                except StopIteration as exc:
                    self.succeed(exc.value)
                except BaseException as exc:
                    self.fail(exc)
                break

            if next_event.callbacks is not None:
                # Not yet processed: park until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: loop and feed its value in immediately.
            event = next_event

        env._active_process = None


class Condition(Event):
    """Waits for a combination of events (used by :class:`AllOf`/:class:`AnyOf`).

    The condition's value is a dict mapping each *triggered* event to
    its value, in trigger order.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that triggers once *all* events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evts, count: count >= len(evts), events)


class AnyOf(Condition):
    """Condition that triggers once *any* event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evts, count: count >= 1, events)


class Environment:
    """Execution environment that advances simulated time event by event."""

    __slots__ = ("_now", "_queue", "_eid", "_active_process")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time (seconds, by convention in this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling / execution -------------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        _heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        time, _, _, event = _heappop(self._queue)
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # Nobody handled this failure: crash the simulation loudly,
            # per "errors should never pass silently".
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (run up to
        that simulated time), or an :class:`Event` (run until it is
        processed, returning its value).
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            self._schedule(stop_event, priority=URGENT, delay=at - self._now)
            stop_event.callbacks.append(self._stop_callback)

        # Inlined step() loop: the body below matches step() exactly but
        # keeps the queue and heappop in locals, which measurably raises
        # events/sec on long runs (see scripts/bench_kernel.py).  The
        # queue list is only ever mutated, never rebound, so the alias
        # stays valid across the whole run.
        queue = self._queue
        try:
            while queue:
                time, _, _, event = _heappop(queue)
                self._now = time
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
        except StopSimulation:
            if isinstance(until, Event):
                if until._ok:
                    return until._value
                raise until._value
            return None
        if isinstance(until, Event) and not until.processed:
            raise SimulationError("run() queue drained before `until` event fired")
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()
