"""Discrete-event simulation kernel.

This module implements a small, self-contained process-based
discrete-event simulator in the style of SimPy.  Simulated activities
are Python generators ("processes") that ``yield`` events; the
:class:`Environment` advances virtual time from event to event.

The kernel is the substrate on which the rest of the reproduction is
built: servers, disks, database engines, workload clients, and the
Slacker migration controller are all processes scheduled by an
:class:`Environment`.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

#: Bound once at import so the scheduling hot path pays a module-global
#: lookup instead of two attribute lookups per event.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "Environment",
    "HeapEnvironment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
]

#: Sentinel marking an event that has not been triggered yet.
_PENDING = object()

#: Scheduling priority for "urgent" events (processed before normal
#: events that share the same timestamp).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch the exception and continue; the
    ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` *triggers* it, scheduling it on the environment's
    event queue.  When the environment pops the event it becomes
    *processed* and all registered callbacks fire.

    Event subclasses declare ``__slots__``: millions of events are
    allocated per run, and slotted instances are both smaller and
    faster to create than dict-backed ones.  Subclasses outside the
    kernel may omit ``__slots__`` and regain a ``__dict__``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # A failed event whose exception was consumed (e.g. thrown into
        # a waiting process) is "defused" and will not crash the run.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has invoked the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, else None."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers after a fixed ``delay`` of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the kernel's most-allocated event, and they are
        # born already triggered, so the generic Event.__init__ path
        # (start pending, then flip state) is pure overhead: assign the
        # final state directly instead of going through succeed()'s
        # pending-state check.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._schedule(self, delay=delay)


#: Allocator for the fused timeout factories — bound once so the hot
#: path pays a single global load instead of two loads plus an
#: attribute lookup per event.
_new_timeout = Timeout.__new__


class _Initialize(Event):
    """Immediate event used to start a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, priority=URGENT)


class Process(Event):
    """A process wraps a generator and is itself an event.

    The process event triggers when the generator returns (successfully,
    with the generator's return value) or raises (as a failure).  Other
    processes may therefore ``yield`` a process to wait for it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting for.
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not exited."""
        return self._value is _PENDING

    @property
    def name(self) -> str:
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process or a process from within itself is
        an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=URGENT)
        # Detach from the event we were waiting on so that its later
        # processing does not resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        # Hot path: every generator step goes through here, so hoist the
        # attribute loads (generator, its bound send/throw) out of the loop.
        env = self.env
        env._active_process = self
        generator = self._generator
        send = generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._target = None
                self.succeed(exc.value)
                break
            except BaseException as exc:
                self._target = None
                self.fail(exc)
                break

            # Duck-typed event check: anything without a ``callbacks``
            # attribute is not an Event.  (One attribute load replaces
            # the old isinstance + double ``callbacks`` load.)
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    generator.throw(error)
                except StopIteration as exc:
                    self.succeed(exc.value)
                except BaseException as exc:
                    self.fail(exc)
                break

            if callbacks is not None:
                # Not yet processed: park until it fires.
                callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: loop and feed its value in immediately.
            event = next_event

        env._active_process = None


class Condition(Event):
    """Waits for a combination of events (used by :class:`AllOf`/:class:`AnyOf`).

    The condition's value is a dict mapping each *triggered* event to
    its value, in trigger order.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that triggers once *all* events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evts, count: count >= len(evts), events)


class AnyOf(Condition):
    """Condition that triggers once *any* event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda evts, count: count >= 1, events)


class Environment:
    """Execution environment that advances simulated time event by event.

    Scheduling uses a **calendar queue** tuned for this repo's workload
    mix — dense clusters of same-timestamp events (token refills,
    transport hops, co-resuming processes) plus a thin stream of
    far-future timers (heartbeats, monitors):

    * normal-priority events live in per-timestamp FIFO **buckets**
      (``dict`` keyed by exact event time) with a heap of distinct
      bucket times, so the common case — another event at an existing
      timestamp — is one dict lookup and one ``list.append``, with no
      per-event sequence counter and no 4-tuple allocation;
    * urgent events (process starts, interrupts, ``run(until=t)``
      stops) are rare and keep a conventional ``(time, seq, event)``
      heap.

    Ordering is **bit-identical** to the previous single-``heapq``
    scheduler's ``(time, priority, sequence)`` order: bucket FIFO order
    *is* sequence order for events sharing a (time, priority) key, the
    urgent heap is consulted before same-time normal buckets (priority
    0 < 1), and urgent arrivals preempt the remainder of a same-time
    bucket exactly as a lower heap key would.  :class:`HeapEnvironment`
    keeps the original scheduler verbatim, and
    ``tests/test_calendar_queue.py`` replays experiment seeds through
    both and asserts identical trajectories.
    """

    __slots__ = (
        "_now",
        "_times",
        "_buckets",
        "_urgent",
        "_eid",
        "_active_process",
        "_processed",
        "_elided",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: Heap of bucket timestamps (may hold duplicates; stale entries
        #: whose bucket has drained are skipped on pop).
        self._times: list[float] = []
        #: time -> FIFO list of normal-priority events at that time.
        self._buckets: dict[float, list[Event]] = {}
        #: Heap of (time, seq, event) for URGENT-priority events.
        self._urgent: list[tuple[float, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        #: Events processed so far (see :attr:`processed_events`).
        self._processed = 0
        #: Tick events coalescing avoided (see :attr:`elided_events`).
        self._elided = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds, by convention in this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Total events processed since construction.

        For a run that drains the queue this equals the number of
        events ever scheduled — the figure ``scripts/bench_kernel.py``
        reports as events/sec.
        """
        return self._processed

    @property
    def elided_events(self) -> int:
        """Tick events the coalesced-timer users never scheduled.

        Lazy periodic consumers (:class:`~repro.simulation.timers.
        PeriodicTicker` skips, the throttle's settle-on-interaction
        replay) report every conceptual tick they advanced past without
        putting an event on the queue.  ``processed_events +
        elided_events`` is therefore what the same trajectory would
        have cost with one event per tick — the denominator for the
        coalescing win ``scripts/bench_kernel.py --fleet`` records.
        """
        return self._elided

    def note_elided(self, count: int) -> None:
        """Record ``count`` conceptual ticks handled without events."""
        self._elided += count

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now.

        Timeouts are the kernel's most-allocated event, so creation and
        scheduling are fused here: one call, no ``__init__`` chain, and
        direct bucket insertion (timeouts are always NORMAL priority).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = _new_timeout(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = delay
        time = self._now + delay
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [event]
            _heappush(self._times, time)
        else:
            bucket.append(event)
        return event

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event that triggers at absolute time ``when``.

        Unlike ``timeout(when - now)``, the event fires at *exactly*
        ``when`` — no float drift from the subtract-then-add round
        trip.  This is the primitive the coalesced periodic-timer API
        (:class:`~repro.simulation.timers.PeriodicTicker`) builds on:
        skipping k ticks in one event must land on the identical float
        timestamp the k chained ``timeout(interval)`` calls would have.
        """
        if when < self._now:
            raise ValueError(f"when={when} is in the past (now={self._now})")
        event = _new_timeout(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = when - self._now
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [event]
            _heappush(self._times, when)
        else:
            bucket.append(event)
        return event

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling / execution -------------------------------------------

    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        time = self._now + delay
        if priority == NORMAL:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = [event]
                _heappush(self._times, time)
            else:
                bucket.append(event)
        else:
            _heappush(self._urgent, (time, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        times, buckets = self._times, self._buckets
        while times and times[0] not in buckets:
            _heappop(times)  # stale duplicate: bucket already drained
        next_normal = times[0] if times else None
        next_urgent = self._urgent[0][0] if self._urgent else None
        if next_normal is None and next_urgent is None:
            return float("inf")
        if next_normal is None:
            return next_urgent
        if next_urgent is None:
            return next_normal
        return next_urgent if next_urgent <= next_normal else next_normal

    def _pop_next(self) -> Optional[Event]:
        """Remove and return the next event in schedule order, if any."""
        urgent, times, buckets = self._urgent, self._times, self._buckets
        while times and times[0] not in buckets:
            _heappop(times)
        if urgent and (not times or urgent[0][0] <= times[0]):
            time, _, event = _heappop(urgent)
            self._now = time
            return event
        if not times:
            return None
        time = times[0]
        bucket = buckets[time]
        event = bucket.pop(0)
        if not bucket:
            del buckets[time]
            _heappop(times)
        self._now = time
        return event

    def step(self) -> None:
        """Process the next scheduled event."""
        event = self._pop_next()
        if event is None:
            raise SimulationError("no scheduled events")
        self._processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # Nobody handled this failure: crash the simulation loudly,
            # per "errors should never pass silently".
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (run up to
        that simulated time), or an :class:`Event` (run until it is
        processed, returning its value).
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            self._schedule(stop_event, priority=URGENT, delay=at - self._now)
            stop_event.callbacks.append(self._stop_callback)

        # Inlined event loop over locals.  Two levels: the outer loop
        # picks the next (time, priority) key; the inner loop walks one
        # normal bucket FIFO, re-checking the urgent heap before every
        # event so a same-time urgent arrival (a process started or
        # interrupted by a callback) preempts the bucket's remainder
        # exactly as its lower (time, 0, seq) heap key used to.  A
        # bucket stays in the dict while it is walked — concurrent
        # same-time schedules append to it and are picked up by the
        # indexed walk, in sequence order; ``finally`` trims the
        # consumed prefix so an exception (including StopSimulation)
        # leaves the queue consistent for a later run()/step().
        urgent = self._urgent
        times = self._times
        buckets = self._buckets
        processed = 0
        try:
            while True:
                if urgent:
                    tu = urgent[0][0]
                    while times and times[0] not in buckets:
                        _heappop(times)
                    if not times or tu <= times[0]:
                        time, _, event = _heappop(urgent)
                        self._now = time
                        processed += 1
                        callbacks, event.callbacks = event.callbacks, None
                        if len(callbacks) == 1:  # overwhelmingly common
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event._defused:
                            raise event._value
                        continue
                else:
                    while times and times[0] not in buckets:
                        _heappop(times)
                    if not times:
                        break
                time = _heappop(times)
                bucket = buckets.get(time)
                if bucket is None:
                    continue  # stale duplicate entry
                self._now = time
                i = 0
                try:
                    while True:
                        if urgent and urgent[0][0] <= time:
                            break  # same-time urgent preempts the rest
                        try:
                            event = bucket[i]
                        except IndexError:
                            break  # bucket drained
                        i += 1
                        callbacks, event.callbacks = event.callbacks, None
                        if len(callbacks) == 1:  # overwhelmingly common
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event._defused:
                            raise event._value
                finally:
                    processed += i
                    if i >= len(bucket):
                        del buckets[time]
                    else:
                        del bucket[:i]
                        _heappush(times, time)
        except StopSimulation:
            if isinstance(until, Event):
                if until._ok:
                    return until._value
                raise until._value
            return None
        finally:
            self._processed += processed
        if isinstance(until, Event) and not until.processed:
            raise SimulationError("run() queue drained before `until` event fired")
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()


class HeapEnvironment(Environment):
    """The original single-``heapq`` scheduler, kept verbatim.

    Reference implementation for the calendar queue's A/B bit-identity
    fixture: ``tests/test_calendar_queue.py`` replays the same seeds
    through an :class:`Environment` and a :class:`HeapEnvironment` and
    asserts identical trajectories.  Not used by any experiment path.
    """

    __slots__ = ("_heap_queue",)

    def __init__(self, initial_time: float = 0.0):
        super().__init__(initial_time)
        self._heap_queue: list[tuple[float, int, int, Event]] = []

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event that triggers at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"when={when} is in the past (now={self._now})")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = when - self._now
        _heappush(self._heap_queue, (when, NORMAL, next(self._eid), event))
        return event

    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        _heappush(
            self._heap_queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap_queue[0][0] if self._heap_queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap_queue:
            raise SimulationError("no scheduled events")
        time, _, _, event = _heappop(self._heap_queue)
        self._now = time
        self._processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires."""
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            self._schedule(stop_event, priority=URGENT, delay=at - self._now)
            stop_event.callbacks.append(self._stop_callback)

        queue = self._heap_queue
        processed = 0
        try:
            while queue:
                time, _, _, event = _heappop(queue)
                self._now = time
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
        except StopSimulation:
            if isinstance(until, Event):
                if until._ok:
                    return until._value
                raise until._value
            return None
        finally:
            self._processed += processed
        if isinstance(until, Event) and not until.processed:
            raise SimulationError("run() queue drained before `until` event fired")
        return None
