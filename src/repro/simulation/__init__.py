"""Discrete-event simulation substrate (kernel, resources, RNG, tracing).

This subpackage is self-contained and domain-agnostic: it knows nothing
about databases or migration.  Everything above it (servers, the MySQL-
like engine, workloads, Slacker) is built out of its processes, events,
and resources.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    HeapEnvironment,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .resources import Container, PriorityResource, Request, Resource, Store
from .rng import RandomStreams, default_rng, derive_seed
from .timers import PeriodicTicker
from .trace import Series, Trace, sliding_window_average

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "HeapEnvironment",
    "Interrupt",
    "PeriodicTicker",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "default_rng",
    "Request",
    "Resource",
    "Series",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "Trace",
    "derive_seed",
    "sliding_window_average",
]
