"""Deterministic random-number streams for reproducible experiments.

Every stochastic component (arrival process, key chooser, disk service
jitter, ...) draws from its own named stream derived from a single
experiment seed, so adding a new consumer never perturbs the draws seen
by existing ones.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomStreams", "derive_seed", "default_rng"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def default_rng(purpose: str, seed: int = 0) -> random.Random:
    """A per-purpose deterministic RNG for components built without one.

    Components that accept an optional ``rng`` used to fall back to
    ``random.Random(0)`` — so a CPU and a disk constructed side by side
    drew *identical* noise streams (correlated service jitter skews
    queueing behaviour).  Deriving the fallback seed from a purpose
    string keeps the default deterministic while decorrelating the
    components, mirroring ``Server.rng(purpose)``.

    >>> default_rng("cpu").random() != default_rng("disk").random()
    True
    >>> default_rng("cpu").random() == default_rng("cpu").random()
    True
    """
    return random.Random(derive_seed(seed, f"default:{purpose}"))


class RandomStreams:
    """A factory of independent, named ``random.Random`` streams.

    >>> streams = RandomStreams(seed=7)
    >>> arrivals = streams.stream("arrivals")
    >>> keys = streams.stream("keys")
    >>> streams.stream("arrivals") is arrivals  # cached by name
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of ours."""
        return RandomStreams(derive_seed(self.seed, f"spawn:{name}"))
