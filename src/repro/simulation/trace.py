"""Time-series trace recording for simulation runs.

A :class:`Trace` collects named (time, value) series while a simulation
runs — transaction latencies, throttle-rate changes, queue depths — and
offers the summaries the paper reports: means, standard deviations,
percentiles, and sliding-window smoothing (the paper smooths latency
over a 3-second window for its time-series plots).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Series", "Trace", "sliding_window_average"]


@dataclass
class Series:
    """A single named time series of (time, value) samples."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record ``value`` at ``time``; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time {time} precedes last "
                f"sample at {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    # -- summaries ---------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the values (NaN if empty)."""
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    def stddev(self) -> float:
        """Population standard deviation of the values (NaN if empty)."""
        if not self.values:
            return math.nan
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / len(self.values))

    def min(self) -> float:
        return min(self.values) if self.values else math.nan

    def max(self) -> float:
        return max(self.values) if self.values else math.nan

    def percentile(self, pct: float) -> float:
        """The ``pct``-th percentile (nearest-rank; pct in [0, 100])."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile {pct} outside [0, 100]")
        if not self.values:
            return math.nan
        ordered = sorted(self.values)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def between(self, start: float, end: float) -> "Series":
        """Sub-series with samples in the half-open window [start, end)."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return Series(self.name, self.times[lo:hi], self.values[lo:hi])

    def window_values(
        self, start: float, end: float, closed: str = "left"
    ) -> list[float]:
        """Values sampled in the window from ``start`` to ``end``.

        ``closed`` picks the interval's end semantics explicitly:

        * ``"left"`` (default) — half-open ``[start, end)``, the right
          choice for tiling a run into non-overlapping buckets;
        * ``"both"`` — closed ``[start, end]``, the right choice for a
          trailing window anchored at the current instant, where a
          sample recorded exactly *at* ``end`` (a transaction completing
          at the sampling instant) must be included.

        The closed form exists so callers never reach for a
        ``end + epsilon`` fudge, which silently stops working once the
        epsilon falls below the float spacing of the timestamps.
        """
        lo = bisect.bisect_left(self.times, start)
        if closed == "left":
            hi = bisect.bisect_left(self.times, end)
        elif closed == "both":
            hi = bisect.bisect_right(self.times, end)
        else:
            raise ValueError(f"closed must be 'left' or 'both', got {closed!r}")
        return self.values[lo:hi]

    def smoothed(self, window: float) -> "Series":
        """Trailing-window moving average, one point per input sample.

        Matches the paper's presentation: "latencies averaged over a
        sliding 3 second window to provide modest smoothing".
        """
        out = Series(f"{self.name}:smoothed({window}s)")
        for i, t in enumerate(self.times):
            # half-open window (t - window, t]
            lo = bisect.bisect_right(self.times, t - window)
            chunk = self.values[lo : i + 1]
            out.append(t, sum(chunk) / len(chunk))
        return out


def sliding_window_average(
    series: Series, now: float, window: float
) -> Optional[float]:
    """Average of samples in [now - window, now], or None if empty.

    This is the controller's process-variable filter: the PID input at
    each 1-second timestep is the mean latency over the trailing
    3-second window.
    """
    lo = bisect.bisect_left(series.times, now - window)
    hi = bisect.bisect_right(series.times, now)
    chunk = series.values[lo:hi]
    if not chunk:
        return None
    return sum(chunk) / len(chunk)


class Trace:
    """A bag of named :class:`Series` recorded during one simulation run."""

    def __init__(self):
        self._series: dict[str, Series] = {}

    def series(self, name: str) -> Series:
        """Return (creating if needed) the series called ``name``."""
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def record(self, name: str, time: float, value: float) -> None:
        """Append one sample to the series called ``name``."""
        self.series(name).append(time, value)

    def names(self) -> list[str]:
        """Names of all recorded series, in creation order."""
        return list(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> Series:
        return self._series[name]


def merge_values(series_list: Iterable[Series]) -> list[float]:
    """All values from several series, pooled (for server-wide stats)."""
    pooled: list[float] = []
    for series in series_list:
        pooled.extend(series.values)
    return pooled
