"""Shared-resource primitives for the simulation kernel.

Provides the queueing building blocks used throughout the reproduction:

* :class:`Resource` — a server with fixed capacity and a FIFO queue
  (disk arms, CPU cores, client threads).
* :class:`PriorityResource` — same, but requests carry priorities
  (lower value = served first).
* :class:`Container` — a continuous level that processes put into and
  get from (the token bucket of the migration throttle).
* :class:`Store` — a FIFO queue of discrete items (message queues in
  the middleware layer).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Optional

from .core import Environment, Event

__all__ = [
    "Resource",
    "PriorityResource",
    "Request",
    "Container",
    "Store",
]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager so the resource is always released:

    >>> with resource.request() as req:   # doctest: +SKIP
    ...     yield req
    ...     ...  # use the resource
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.granted_at: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the claim (granted) or withdraw it (still queued)."""
        self.resource._do_release(self)


class Resource:
    """A capacity-limited resource with a FIFO request queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._queue: list[tuple[int, int, Request]] = []
        self._seq = itertools.count()

    @property
    def count(self) -> int:
        """Number of granted (in-use) requests."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for capacity."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim one unit of capacity; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Release a granted request (alias usable without ``with``)."""
        self._do_release(request)

    # -- internals --------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        heapq.heappush(self._queue, (request.priority, next(self._seq), request))
        self._trigger()

    def _do_release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            # Not granted yet: withdraw from the wait queue instead.
            self._queue = [entry for entry in self._queue if entry[2] is not request]
            heapq.heapify(self._queue)
            return
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            _, _, request = heapq.heappop(self._queue)
            self.users.append(request)
            request.granted_at = self.env.now
            request.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority.

    Lower ``priority`` values are granted first; ties are FIFO.
    """


class Container:
    """A continuous quantity with blocking ``get`` and non-blocking ``put``.

    Waiting ``get`` requests are served strictly FIFO: a large request
    at the head of the queue blocks smaller ones behind it, which is
    the behaviour needed for a fair token-bucket throttle.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init level {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[Event, float]] = []

    @property
    def level(self) -> float:
        """Currently available amount."""
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount``, clamped to capacity, and wake waiting getters."""
        if amount < 0:
            raise ValueError(f"cannot put negative amount {amount}")
        self._level = min(self.capacity, self._level + amount)
        self._serve()

    def get(self, amount: float) -> Event:
        """Return an event that fires once ``amount`` can be withdrawn."""
        if amount < 0:
            raise ValueError(f"cannot get negative amount {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"get({amount}) exceeds container capacity {self.capacity}"
            )
        event = Event(self.env)
        self._getters.append((event, amount))
        self._serve()
        return event

    def _serve(self) -> None:
        while self._getters:
            event, amount = self._getters[0]
            if amount > self._level:
                break
            self._getters.pop(0)
            self._level -= amount
            event.succeed(amount)


class Store:
    """An unbounded FIFO queue of discrete items with blocking ``get``."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: list[Any] = []
        self._getters: list[Event] = []

    @property
    def items(self) -> list[Any]:
        """The queued items (oldest first); do not mutate."""
        return self._items

    def put(self, item: Any) -> None:
        """Enqueue ``item`` and wake the oldest waiting getter, if any."""
        self._items.append(item)
        self._serve()

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        self._getters.append(event)
        self._serve()
        return event

    def _serve(self) -> None:
        while self._getters and self._items:
            event = self._getters.pop(0)
            event.succeed(self._items.pop(0))
