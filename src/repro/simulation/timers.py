"""Coalesced periodic timers for tick-dominated processes.

Periodic loops of the form::

    while True:
        yield env.timeout(interval)
        ...

dominate the event count of fleet-scale runs: heartbeats, failure
detectors, token refills, and monitor samplers each wake once per
interval whether or not there is anything to do.  This module provides
:class:`PeriodicTicker`, the kernel-level building block for *lazy*
periodic processes that skip ahead to the next tick at which something
can actually happen, firing one event where the eager loop fired k.

The hard requirement is **bit-identity**: a coalesced process must
observe exactly the float timestamps the eager loop would have.  An
eager loop accumulates time by repeated addition — tick n happens at
``(((t0 + i) + i) + ...)``, n chained float adds — which is *not* the
same float as ``t0 + n * i``.  :class:`PeriodicTicker` therefore keeps
the chained-addition clock itself (``_time += interval`` per conceptual
tick, even when ticks are skipped in bulk) and schedules wakeups with
:meth:`Environment.timeout_at` so the event lands on exactly that
chained sum rather than re-deriving it from ``now``.

Ported call sites (``middleware/node.py``, ``migration/throttle.py``,
``placement/monitor.py``, ``obs/runtime.py``) each pair the ticker with
an analytic settlement rule proving the skipped ticks were no-ops; the
equivalence tests in ``tests/test_coalesced_timers.py`` replay eager
vs. lazy variants and assert identical trajectories.  The slackerlint
rule SLK011 points hand-rolled periodic loops in hot scopes here.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Environment, Timeout

__all__ = ["PeriodicTicker"]


class PeriodicTicker:
    """A tick clock that reproduces an eager ``timeout(interval)`` loop.

    The ticker tracks the timestamp of the *next* conceptual tick using
    the same chained float addition an eager loop performs, so any
    subsequence of ticks a lazy process chooses to wake at carries
    timestamps bit-identical to the eager loop's.

    Usage pattern for a lazy periodic process::

        ticker = PeriodicTicker(env, interval)
        while running:
            k = ...            # ticks until the next relevant wakeup
            if k > 1:
                ticker.skip(k - 1)
            yield ticker.tick()  # fires at the k-th tick's exact time
            ...                  # settle the k-1 skipped no-op ticks

    ``interval`` is fixed at construction; loops whose period changes
    mid-run (RNG-drawn dwell times, adaptive backoff) are out of scope
    and should stay eager.
    """

    __slots__ = ("env", "interval", "_time")

    def __init__(self, env: "Environment", interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.interval = interval
        # Timestamp of the next tick: first tick fires one interval
        # after construction, matching an eager loop entered now.
        self._time = env.now + interval

    @property
    def next_time(self) -> float:
        """Timestamp of the next tick (the one :meth:`tick` waits for)."""
        return self._time

    def tick(self) -> "Timeout":
        """Event for the next tick; advances the clock by one tick."""
        when = self._time
        self._time = when + self.interval
        return self.env.timeout_at(when)

    def skip(self, ticks: int) -> float:
        """Advance past ``ticks`` ticks without scheduling events.

        Each skipped tick advances the clock by one chained float
        addition — the same arithmetic the eager loop's ``timeout``
        chain performs — so the tick after a skip lands on the eager
        timestamp.  Returns the new next-tick time.
        """
        if ticks < 0:
            raise ValueError(f"cannot skip {ticks} ticks")
        time = self._time
        interval = self.interval
        for _ in range(ticks):
            time += interval
        self._time = time
        self.env.note_elided(ticks)
        return time

    def skip_until(self, limit: float, inclusive: bool = False) -> int:
        """Skip every tick strictly before ``limit`` in one call.

        With ``inclusive`` a tick falling exactly on ``limit`` is
        consumed too.  Returns the number of ticks skipped.  Same exact
        chained arithmetic as repeated :meth:`skip`, without the
        per-tick call overhead — the fast path for settling long no-op
        spans (paused throttles, saturated buckets).
        """
        time = self._time
        interval = self.interval
        skipped = 0
        while time < limit or (inclusive and time == limit):
            time += interval
            skipped += 1
        self._time = time
        self.env.note_elided(skipped)
        return skipped

    def peek(self, ticks: int) -> float:
        """Timestamp ``ticks`` ticks ahead of the next one (no mutation)."""
        if ticks < 0:
            raise ValueError(f"cannot peek {ticks} ticks back")
        time = self._time
        interval = self.interval
        for _ in range(ticks):
            time += interval
        return time

    def ticks_until(self, deadline: float) -> int:
        """Number of ticks from the next one through the first tick
        at or after ``deadline`` (minimum 1).

        Walks the exact chained-addition timeline (no division), so the
        answer is right even when ``deadline`` falls within a float ulp
        of a tick boundary.  O(k) float adds — the same arithmetic a
        subsequent ``skip`` performs, and far cheaper than the k kernel
        events being elided.
        """
        if not math.isfinite(deadline):
            raise ValueError(f"deadline must be finite, got {deadline}")
        time = self._time
        interval = self.interval
        ticks = 1
        while time < deadline:
            time += interval
            ticks += 1
        return ticks


def _selftest() -> None:  # pragma: no cover - dev aid
    """Quick invariant check: skip(k) == k tick() calls, timewise."""
    from .core import Environment

    env = Environment()
    a = PeriodicTicker(env, 0.05)
    b = PeriodicTicker(env, 0.05)
    for _ in range(1000):
        a.tick()
    b.skip(1000)
    assert a.next_time == b.next_time


if __name__ == "__main__":  # pragma: no cover
    _selftest()
