"""Slacker: latency-aware live migration for multitenant databases.

A from-scratch Python reproduction of Barker et al., '"Cut Me Some
Slack": Latency-Aware Live Migration for Databases' (EDBT 2012).

The package layers, bottom-up:

* :mod:`repro.simulation` — a process-based discrete-event kernel;
* :mod:`repro.resources` — disk/CPU/network/server hardware models;
* :mod:`repro.db` — an InnoDB-like tenant engine with hot backup;
* :mod:`repro.workload` — the transactional YCSB-style benchmark;
* :mod:`repro.control` — PID controllers and tuning;
* :mod:`repro.migration` — throttle, slack model, stop-and-copy and
  live migration, and the PID-driven dynamic throttle;
* :mod:`repro.middleware` — tenant management, wire protocol, nodes,
  frontend, and cluster orchestration;
* :mod:`repro.core` — configuration presets, SLAs, and the
  :class:`~repro.core.slacker.Slacker` facade;
* :mod:`repro.experiments` — drivers regenerating every figure of the
  paper's evaluation;
* :mod:`repro.analysis` — summary statistics and result tables.

Quickstart::

    from repro import Slacker, EVALUATION

    slacker = Slacker(EVALUATION, nodes=["db-01", "db-02"])
    slacker.add_tenant(1, node="db-01", workload=True)
    slacker.advance(20.0)                       # warm up
    result = slacker.migrate(1, "db-02", setpoint=1.0)
    print(result.duration, result.downtime)
"""

from .core.config import (
    CASE_STUDY,
    EVALUATION,
    ExperimentConfig,
    TenantConfig,
    WorkloadConfig,
)
from .core.sla import LatencySla, SlaMonitor
from .core.slacker import Slacker
from .migration.live import LiveMigration, LiveMigrationResult, MigrationPhase
from .migration.throttle import Throttle

__version__ = "1.0.0"

__all__ = [
    "CASE_STUDY",
    "EVALUATION",
    "ExperimentConfig",
    "LatencySla",
    "LiveMigration",
    "LiveMigrationResult",
    "MigrationPhase",
    "Slacker",
    "SlaMonitor",
    "TenantConfig",
    "Throttle",
    "WorkloadConfig",
    "__version__",
]
