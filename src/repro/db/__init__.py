"""The MySQL/InnoDB-like tenant database substrate.

Pages and tables, an LRU buffer pool, a binary log, a transaction
executor bound to simulated server hardware, and a hot-backup tool
(the XtraBackup equivalent) — everything Slacker's migration pipeline
operates on.
"""

from .backup import DEFAULT_CHUNK_BYTES, HotBackup, Snapshot, SnapshotChunk
from .buffer_pool import AccessResult, BufferPool, BufferPoolStats
from .engine import DatabaseEngine, EngineState, EngineStats, FreezeMode
from .log import BinaryLog, LogRecord
from .pages import DEFAULT_ROW_SIZE, TableLayout
from .shared import (
    SharedProcessEngine,
    SharedTenant,
    SharedTenantSession,
    TableLevelBackup,
)
from .transactions import Operation, OperationCosts, OpType, Transaction

__all__ = [
    "AccessResult",
    "BinaryLog",
    "BufferPool",
    "BufferPoolStats",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_ROW_SIZE",
    "DatabaseEngine",
    "EngineState",
    "EngineStats",
    "FreezeMode",
    "HotBackup",
    "LogRecord",
    "Operation",
    "OperationCosts",
    "OpType",
    "SharedProcessEngine",
    "SharedTenant",
    "SharedTenantSession",
    "Snapshot",
    "SnapshotChunk",
    "TableLevelBackup",
    "TableLayout",
    "Transaction",
]
