"""InnoDB-style LRU buffer pool.

Each tenant's MySQL daemon gets a dedicated buffer pool ("each MySQL
instance is provided a dedicated block of memory to prevent competition
between tenants", Section 5.1.1).  The paper deliberately configures a
small 128 MB pool against a 1 GB database "to ensure a high degree of
disk activity" — the resulting miss traffic is what contends with the
migration stream.

The pool tracks clean/dirty state per page.  Evicting a dirty page
requires a write-back; the engine turns that into a random disk write.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..resources.units import MB, PAGE_SIZE

__all__ = ["AccessResult", "BufferPoolStats", "BufferPool"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one page access against the pool."""

    #: True if the page was already resident.
    hit: bool
    #: Page id that must be read from disk (the accessed page), or None on hit.
    read_page: Optional[int]
    #: Dirty page id evicted by this access that must be written back first.
    writeback_page: Optional[int]


@dataclass
class BufferPoolStats:
    """Running counters for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class BufferPool:
    """A fixed-capacity LRU page cache with dirty tracking.

    The pool is purely logical: it decides *which* disk operations are
    needed; the engine performs them against the simulated disk.
    """

    def __init__(self, capacity_bytes: int = 128 * MB, page_size: int = PAGE_SIZE):
        if capacity_bytes < page_size:
            raise ValueError(
                f"capacity {capacity_bytes} smaller than one page ({page_size})"
            )
        self.capacity_pages = capacity_bytes // page_size
        self.page_size = page_size
        self.stats = BufferPoolStats()
        #: page id -> dirty flag; insertion order is LRU order (oldest first).
        self._pages: OrderedDict[int, bool] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    @property
    def dirty_count(self) -> int:
        """Number of resident dirty pages."""
        return sum(1 for dirty in self._pages.values() if dirty)

    def is_dirty(self, page_id: int) -> bool:
        """True if ``page_id`` is resident and dirty."""
        return self._pages.get(page_id, False)

    def access(self, page_id: int, write: bool = False) -> AccessResult:
        """Touch ``page_id``; returns the disk work this access implies.

        On a hit the page moves to MRU position (and is dirtied on
        write).  On a miss, the LRU page is evicted if the pool is full;
        if that victim is dirty, the caller must write it back before
        reading the missed page.
        """
        if page_id in self._pages:
            self.stats.hits += 1
            dirty = self._pages.pop(page_id) or write
            self._pages[page_id] = dirty
            return AccessResult(hit=True, read_page=None, writeback_page=None)

        self.stats.misses += 1
        writeback: Optional[int] = None
        if len(self._pages) >= self.capacity_pages:
            victim, victim_dirty = self._pages.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
                writeback = victim
        self._pages[page_id] = write
        return AccessResult(hit=False, read_page=page_id, writeback_page=writeback)

    def flush_page(self, page_id: int) -> bool:
        """Mark a resident dirty page clean; True if it was dirty.

        Used by the background flusher and by hot backup's checkpoint.
        """
        if self._pages.get(page_id):
            self._pages.pop(page_id)
            self._pages[page_id] = False
            self.stats.flushes += 1
            return True
        return False

    def oldest_dirty_page(self) -> Optional[int]:
        """The least-recently-used dirty page, or None."""
        for page_id, dirty in self._pages.items():
            if dirty:
                return page_id
        return None

    def dirty_pages(self) -> list[int]:
        """All resident dirty pages, LRU order first."""
        return [page_id for page_id, dirty in self._pages.items() if dirty]

    def resident_pages(self) -> list[int]:
        """All resident pages, LRU order first (for tests/inspection)."""
        return list(self._pages)
