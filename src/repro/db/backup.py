"""Hot backup: the XtraBackup-equivalent streaming snapshot.

Slacker "leverages [the] hot backup function to obtain a consistent
snapshot for use in starting a new MySQL instance" (Section 2.3.2).
The tool's contract, as the paper notes, is minimal: produce a
consistent-in-time snapshot *without interrupting transaction
processing*, streamable on the fly.

:class:`HotBackup` models Percona XtraBackup:

* :meth:`stream` scans the tenant's data files sequentially, yielding
  fixed-size chunks.  Each chunk read queues on the source server's
  disk — this is the I/O the throttle meters and tenants feel.
* While the scan runs, committed writes keep landing in the binary
  log; the snapshot records the LSN range it must replay.
* :meth:`prepare` performs crash recovery against the copied data on
  the target (replaying the redo captured during the scan), after
  which the target daemon can start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..resources.units import KB
from ..simulation import Environment
from .engine import DatabaseEngine

__all__ = ["SnapshotChunk", "Snapshot", "HotBackup", "DEFAULT_CHUNK_BYTES"]

#: Default streaming chunk size (XtraBackup reads in extents of this order).
DEFAULT_CHUNK_BYTES = 256 * KB


@dataclass(frozen=True)
class SnapshotChunk:
    """One chunk of the streamed snapshot."""

    #: Byte offset of the chunk within the snapshot.
    offset: int
    #: Chunk payload size in bytes.
    size: int


@dataclass
class Snapshot:
    """Bookkeeping for one in-progress or completed hot backup."""

    #: Source binlog LSN when the scan started.
    start_lsn: int
    #: Total bytes the snapshot will contain (the data directory size).
    total_bytes: int
    #: Bytes streamed so far.
    streamed_bytes: int = 0
    #: Source binlog LSN when the scan finished (set at completion).
    end_lsn: Optional[int] = None
    #: Simulated times of scan start/end.
    started_at: float = 0.0
    finished_at: Optional[float] = None
    chunks: int = field(default=0)

    @property
    def complete(self) -> bool:
        return self.end_lsn is not None

    @property
    def progress(self) -> float:
        """Fraction of the snapshot streamed, in [0, 1]."""
        if self.total_bytes == 0:
            return 1.0
        return self.streamed_bytes / self.total_bytes

    @property
    def redo_bytes(self) -> int:
        """Binlog bytes accumulated during the scan (to replay in prepare)."""
        if self.end_lsn is None:
            raise ValueError("snapshot scan has not finished")
        return self.end_lsn - self.start_lsn


class HotBackup:
    """Streaming hot-backup tool bound to one source engine."""

    def __init__(
        self,
        env: Environment,
        source: DatabaseEngine,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ):
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.env = env
        self.source = source
        self.chunk_bytes = chunk_bytes

    def begin(self) -> Snapshot:
        """Start a snapshot: record the consistent-read LSN."""
        return Snapshot(
            start_lsn=self.source.binlog.head_lsn,
            total_bytes=self.source.data_bytes,
            started_at=self.env.now,
        )

    def read_chunk(self, snapshot: Snapshot) -> Generator:
        """Process: read the next chunk from the source disk.

        Returns the :class:`SnapshotChunk`, or ``None`` when the scan
        is complete (in which case ``snapshot.end_lsn`` is recorded).
        The read is sequential within the snapshot's disk stream, so an
        undisturbed scan runs at media rate while an interleaved one
        re-seeks per chunk.
        """
        if snapshot.complete:
            return None
        remaining = snapshot.total_bytes - snapshot.streamed_bytes
        size = min(self.chunk_bytes, remaining)
        chunk = SnapshotChunk(offset=snapshot.streamed_bytes, size=size)
        yield from self.source.server.disk.read(
            size, sequential=True, stream=f"{self.source.name}:backup"
        )
        snapshot.streamed_bytes += size
        snapshot.chunks += 1
        if snapshot.streamed_bytes >= snapshot.total_bytes:
            snapshot.end_lsn = self.source.binlog.head_lsn
            snapshot.finished_at = self.env.now
        return chunk

    def prepare(self, snapshot: Snapshot, target: DatabaseEngine) -> Generator:
        """Process: crash-recover the copied data on the target server.

        XtraBackup's ``--prepare`` replays the redo log captured during
        the scan; cost scales with the redo volume.  On completion the
        target is a consistent replica as of ``snapshot.end_lsn``.
        """
        if not snapshot.complete:
            raise RuntimeError("cannot prepare an incomplete snapshot")
        yield from target.apply_delta_bytes(snapshot.redo_bytes, snapshot.end_lsn)
