"""Transaction and operation model.

The paper's benchmark issues transactions that are "a serial set of
basic database operations (SELECT, UPDATE, INSERT, etc.) selected from
a preset operation distribution" — 10 operations per transaction, 85 %
reads / 15 % writes against random rows of a 1 GB table
(Section 5.1.2).  This module defines those operations and the cost
constants the engine charges for them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..resources.units import KB

__all__ = ["OpType", "Operation", "Transaction", "OperationCosts"]


class OpType(enum.Enum):
    """Basic database operation kinds (a YCSB-style subset of SQL)."""

    SELECT = "select"
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"
    SCAN = "scan"

    @property
    def is_write(self) -> bool:
        """True for operations that modify data (and hit the binlog)."""
        return self in (OpType.UPDATE, OpType.INSERT, OpType.DELETE)


@dataclass(frozen=True)
class Operation:
    """One basic operation within a transaction."""

    op_type: OpType
    #: Target row key (for SCAN: the starting key).
    key: int
    #: Number of rows touched (only > 1 for SCAN).
    scan_length: int = 1

    def __post_init__(self) -> None:
        if self.key < 0:
            raise ValueError(f"key must be >= 0, got {self.key}")
        if self.scan_length < 1:
            raise ValueError(f"scan_length must be >= 1, got {self.scan_length}")
        if self.scan_length > 1 and self.op_type is not OpType.SCAN:
            raise ValueError("scan_length > 1 is only valid for SCAN operations")


@dataclass
class Transaction:
    """A serial list of operations executed as one unit.

    ``arrived_at`` is stamped by the workload generator; ``started_at``
    and ``finished_at`` by the client when execution begins/ends.  The
    paper defines transaction latency as queue time plus execution
    time, i.e. ``finished_at - arrived_at``.
    """

    txn_id: int
    operations: Sequence[Operation]
    arrived_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Filled by the engine: pages read from disk while executing.
    pages_read: int = field(default=0)

    @property
    def write_count(self) -> int:
        """Number of write operations in the transaction."""
        return sum(1 for op in self.operations if op.op_type.is_write)

    @property
    def read_count(self) -> int:
        """Number of read operations in the transaction."""
        return len(self.operations) - self.write_count

    @property
    def latency(self) -> float:
        """Queue time + execution time, seconds."""
        if self.arrived_at is None or self.finished_at is None:
            raise ValueError(f"transaction {self.txn_id} has not completed")
        return self.finished_at - self.arrived_at

    @property
    def queue_time(self) -> float:
        """Time spent waiting for a client thread before execution."""
        if self.arrived_at is None or self.started_at is None:
            raise ValueError(f"transaction {self.txn_id} has not started")
        return self.started_at - self.arrived_at


@dataclass(frozen=True)
class OperationCosts:
    """CPU and logging costs the engine charges per operation.

    Disk costs are not listed here: they emerge from buffer-pool misses
    and the disk model, not from fixed constants.
    """

    #: Mean CPU burst to parse/plan/execute one operation, seconds.
    cpu_per_op: float = 150e-6
    #: Extra CPU for applying a write (index maintenance etc.), seconds.
    cpu_per_write: float = 100e-6
    #: Encoded binlog record size per write operation, bytes.
    log_bytes_per_write: int = 256
    #: Size of a group-commit log flush (sequential disk write), bytes.
    commit_flush_bytes: int = 4 * KB

    def __post_init__(self) -> None:
        if self.cpu_per_op < 0 or self.cpu_per_write < 0:
            raise ValueError("CPU costs must be >= 0")
        if self.log_bytes_per_write <= 0 or self.commit_flush_bytes <= 0:
            raise ValueError("log sizes must be positive")
