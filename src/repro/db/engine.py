"""The mysqld-like tenant database engine.

Each tenant in Slacker is "a directory containing all data and a
corresponding MySQL process" (Section 2.2).  :class:`DatabaseEngine`
models that process: it executes transactions against an InnoDB-style
buffer pool backed by the host server's disk, appends committed writes
to a binary log, and supports the freeze/replica operations the
migration pipeline needs (global read lock, snapshot cursor, delta
apply).

Execution cost of a transaction emerges from the substrate rather than
from fixed latency constants: every buffer-pool miss is a random disk
read queued behind whatever else (including a migration stream) is
using the spindle.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from ..resources.server import Server
from ..resources.units import MB, PAGE_SIZE
from ..simulation import Environment, Event
from .buffer_pool import BufferPool
from .log import BinaryLog
from .pages import TableLayout
from .transactions import Operation, OperationCosts, OpType, Transaction

__all__ = ["EngineState", "FreezeMode", "EngineStats", "DatabaseEngine"]


class EngineState(enum.Enum):
    """Lifecycle state of the engine process."""

    RUNNING = "running"
    FROZEN = "frozen"
    STOPPED = "stopped"


class FreezeMode(enum.Enum):
    """What a freeze blocks.

    ``WRITES`` models a global read lock (stop-and-copy, handover):
    reads proceed, writes stall.  ``ALL`` models a full stop.
    """

    WRITES = "writes"
    ALL = "all"


@dataclass
class EngineStats:
    """Running counters for one engine."""

    committed: int = 0
    operations: int = 0
    log_flushes: int = 0
    replica_applied_bytes: int = 0
    freeze_count: int = 0
    total_frozen_time: float = 0.0


class DatabaseEngine:
    """One tenant's database daemon, bound to a host :class:`Server`."""

    def __init__(
        self,
        env: Environment,
        server: Server,
        layout: TableLayout,
        name: str = "tenant",
        buffer_bytes: int = 128 * MB,
        costs: Optional[OperationCosts] = None,
    ):
        self.env = env
        self.server = server
        self.layout = layout
        self.name = name
        self.costs = costs or OperationCosts()
        self.buffer_pool = BufferPool(capacity_bytes=buffer_bytes)
        self.binlog = BinaryLog()
        self.stats = EngineStats()
        self.state = EngineState.RUNNING
        #: Monotonic count of committed write operations (data version).
        self.data_version = 0
        #: For replicas: source LSN up to which deltas have been applied.
        self.replicated_lsn = 0
        #: Set at handover: the engine that took over this tenant.
        #: Transactions arriving after stop() are forwarded to it.
        self.successor: Optional["DatabaseEngine"] = None
        self._freeze_mode: Optional[FreezeMode] = None
        self._thaw_event: Optional[Event] = None
        self._frozen_at: Optional[float] = None
        self._txn_ids = itertools.count(1)
        self._inflight_writes = 0
        self._quiesce_waiters: list[Event] = []

    # -- identity ------------------------------------------------------------

    @property
    def data_bytes(self) -> int:
        """On-disk size of the tenant's data directory."""
        return self.layout.data_bytes

    def _stream(self, purpose: str) -> str:
        """Disk stream id for this engine's sequential I/O."""
        return f"{self.name}:{purpose}"

    # -- freeze / stop ---------------------------------------------------------

    @property
    def is_frozen(self) -> bool:
        return self.state is EngineState.FROZEN

    def freeze(self, mode: FreezeMode = FreezeMode.WRITES) -> None:
        """Acquire the global lock: block new transactions per ``mode``."""
        if self.state is EngineState.STOPPED:
            raise RuntimeError(f"engine {self.name} is stopped")
        if self.state is EngineState.FROZEN:
            raise RuntimeError(f"engine {self.name} is already frozen")
        self.state = EngineState.FROZEN
        self._freeze_mode = mode
        self._thaw_event = Event(self.env)
        self._frozen_at = self.env.now
        self.stats.freeze_count += 1

    def thaw(self) -> None:
        """Release the global lock and wake blocked transactions."""
        if self.state is not EngineState.FROZEN:
            raise RuntimeError(f"engine {self.name} is not frozen")
        self.state = EngineState.RUNNING
        self._freeze_mode = None
        self.stats.total_frozen_time += self.env.now - self._frozen_at
        self._frozen_at = None
        thaw_event, self._thaw_event = self._thaw_event, None
        thaw_event.succeed()

    def stop(self, successor: Optional["DatabaseEngine"] = None) -> None:
        """Shut the daemon down (tenant deletion / post-migration source).

        With ``successor`` set (migration handover), transactions that
        were blocked by the freeze — and any that still arrive here —
        are forwarded to the successor engine instead of failing,
        modelling the client connection hand-off.
        """
        self.successor = successor
        if self.state is EngineState.FROZEN:
            self.thaw()
        self.state = EngineState.STOPPED

    def _blocked_by_freeze(self, txn: Transaction) -> bool:
        if self.state is not EngineState.FROZEN:
            return False
        if self._freeze_mode is FreezeMode.ALL:
            return True
        return txn.write_count > 0

    # -- transaction execution -------------------------------------------------

    def new_txn_id(self) -> int:
        """Allocate a unique transaction id."""
        return next(self._txn_ids)

    def execute(self, txn: Transaction) -> Generator:
        """Process: run ``txn`` to commit; sets ``txn.finished_at``.

        Latency accumulates from CPU bursts, buffer-pool miss reads,
        dirty-page write-backs, and the group-commit log flush — all
        queued on the shared host server resources.
        """
        if self.state is EngineState.STOPPED:
            if self.successor is not None:
                yield from self.successor.execute(txn)
                return
            raise RuntimeError(f"engine {self.name} is stopped")
        while self._blocked_by_freeze(txn):
            yield self._thaw_event
        if self.state is EngineState.STOPPED:
            # Stopped while we were blocked on the freeze (handover):
            # forward to the new authoritative engine.
            if self.successor is not None:
                yield from self.successor.execute(txn)
                return
            raise RuntimeError(f"engine {self.name} is stopped")
        if txn.started_at is None:
            txn.started_at = self.env.now

        is_writer = txn.write_count > 0
        if is_writer:
            self._inflight_writes += 1
        try:
            for op in txn.operations:
                yield from self._execute_operation(txn, op)
            if is_writer:
                yield from self._commit(txn)
        finally:
            if is_writer:
                self._inflight_writes -= 1
                if self._inflight_writes == 0:
                    waiters, self._quiesce_waiters = self._quiesce_waiters, []
                    for waiter in waiters:
                        waiter.succeed()
        self.stats.committed += 1
        txn.finished_at = self.env.now

    def write_quiesced(self) -> Event:
        """Event that fires once no write transaction is in flight.

        Used by the handover step: after :meth:`freeze`, waiting on this
        event guarantees the final delta captures every committed write.
        Fires immediately if no writer is active.
        """
        event = Event(self.env)
        if self._inflight_writes == 0:
            event.succeed()
        else:
            self._quiesce_waiters.append(event)
        return event

    def _execute_operation(self, txn: Transaction, op: Operation) -> Generator:
        cpu_cost = self.costs.cpu_per_op
        if op.op_type.is_write:
            cpu_cost += self.costs.cpu_per_write
        yield from self.server.cpu.execute(cpu_cost)

        if op.op_type is OpType.SCAN:
            pages = self.layout.pages_of_scan(op.key, op.scan_length)
        else:
            pages = [self.layout.page_of(op.key)]

        for page_id in pages:
            yield from self._access_page(txn, page_id, op.op_type.is_write)

        if op.op_type.is_write:
            self.binlog.append(
                size=self.costs.log_bytes_per_write,
                time=self.env.now,
                txn_id=txn.txn_id,
            )
        self.stats.operations += 1

    def _access_page(self, txn: Transaction, page_id: int, write: bool) -> Generator:
        """Touch one page: pool access plus whatever disk work it implies.

        Subclasses override this to change where missing pages come
        from (e.g. the on-demand-pull baseline fetches them from a
        remote source instead of the local disk).
        """
        result = self.buffer_pool.access(page_id, write=write)
        if result.writeback_page is not None:
            yield from self.server.disk.write(PAGE_SIZE)
        if result.read_page is not None:
            yield from self.server.disk.read(PAGE_SIZE)
            txn.pages_read += 1

    def _commit(self, txn: Transaction) -> Generator:
        """Group-commit log flush: a cached sequential write to the log file."""
        yield from self.server.disk.write(
            self.costs.commit_flush_bytes,
            sequential=True,
            stream=self._stream("binlog"),
            cached=True,
        )
        self.stats.log_flushes += 1
        self.data_version += txn.write_count

    # -- background page cleaner -------------------------------------------------

    def start_flusher(
        self,
        interval: float = 1.0,
        batch: int = 8,
        dirty_watermark: float = 0.1,
    ) -> None:
        """Start an InnoDB-style background page cleaner (opt-in).

        Every ``interval`` seconds, while more than ``dirty_watermark``
        of the pool is dirty, write back up to ``batch`` of the oldest
        dirty pages.  Foreground transactions then mostly evict *clean*
        pages (no write-back on the miss path) at the cost of steady
        background write traffic.  Disabled by default: the calibrated
        presets rely on eviction-driven write-back.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if not 0 <= dirty_watermark < 1:
            raise ValueError(
                f"dirty_watermark must be in [0, 1), got {dirty_watermark}"
            )
        self.env.process(self._flusher_loop(interval, batch, dirty_watermark))

    def _flusher_loop(self, interval: float, batch: int, watermark: float):
        threshold = watermark * self.buffer_pool.capacity_pages
        while self.state is not EngineState.STOPPED:
            yield self.env.timeout(interval)
            flushed = 0
            while (
                flushed < batch
                and self.state is not EngineState.STOPPED
                and self.buffer_pool.dirty_count > threshold
            ):
                page_id = self.buffer_pool.oldest_dirty_page()
                if page_id is None:
                    break
                yield from self.server.disk.write(PAGE_SIZE)
                self.buffer_pool.flush_page(page_id)
                flushed += 1

    # -- replica-side operations (used by the migration pipeline) ---------------

    def apply_delta_bytes(self, nbytes: int, up_to_lsn: int) -> Generator:
        """Process: replay ``nbytes`` of source binlog onto this replica.

        Applying a delta costs CPU (statement re-execution) plus random
        page writes on the replica's disk, scaled to the byte volume.
        Advances :attr:`replicated_lsn` to ``up_to_lsn`` on completion.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if up_to_lsn < self.replicated_lsn:
            raise ValueError(
                f"delta target LSN {up_to_lsn} behind replicated "
                f"LSN {self.replicated_lsn}"
            )
        records = max(0, nbytes // self.costs.log_bytes_per_write)
        for _ in range(records):
            yield from self.server.cpu.execute(
                self.costs.cpu_per_op + self.costs.cpu_per_write
            )
            # Replayed writes land in the replica's pool; flushing is
            # charged as one cached page write per record (batched
            # recovery-style apply, cheaper than foreground writes).
            yield from self.server.disk.write(
                PAGE_SIZE, sequential=True, stream=self._stream("apply"), cached=True
            )
        self.stats.replica_applied_bytes += nbytes
        self.replicated_lsn = up_to_lsn
