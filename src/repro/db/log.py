"""Binary / redo log of a tenant database.

Slacker's delta-updating step "appl[ies] several 'rounds' of deltas
from the source to the target by reading from the MySQL binary query
log of the source tenant" (Section 2.3.2).  This module models that
log: an append-only sequence of records addressed by LSN (log sequence
number, a byte offset), from which byte ranges can be measured and
shipped.

The same structure doubles as the redo stream XtraBackup captures
while snapshotting — the "prepare" phase replays the records that
accumulated between snapshot start and snapshot end.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

__all__ = ["LogRecord", "BinaryLog"]


@dataclass(frozen=True)
class LogRecord:
    """One committed write in the binary log."""

    #: LSN of the *start* of this record (byte offset in the log).
    lsn: int
    #: Encoded size of the record in bytes.
    size: int
    #: Simulated time at which the record was appended.
    time: float
    #: Id of the committing transaction.
    txn_id: int
    #: Owner tag (tenant id in shared-process engines; 0 = untagged).
    tag: int = 0


class BinaryLog:
    """Append-only log with LSN addressing and range queries.

    >>> log = BinaryLog()
    >>> log.append(size=100, time=0.0, txn_id=1)
    100
    >>> log.append(size=50, time=1.0, txn_id=2)
    150
    >>> log.bytes_between(0, log.head_lsn)
    150
    >>> [r.txn_id for r in log.records_between(100, 150)]
    [2]
    """

    def __init__(self):
        self._records: list[LogRecord] = []
        self._starts: list[int] = []  # start LSN per record, for bisect
        self._head = 0

    @property
    def head_lsn(self) -> int:
        """LSN one past the last byte written (the append position)."""
        return self._head

    @property
    def record_count(self) -> int:
        return len(self._records)

    def append(self, size: int, time: float, txn_id: int, tag: int = 0) -> int:
        """Append one record; returns the new head LSN."""
        if size <= 0:
            raise ValueError(f"record size must be positive, got {size}")
        record = LogRecord(
            lsn=self._head, size=size, time=time, txn_id=txn_id, tag=tag
        )
        self._records.append(record)
        self._starts.append(record.lsn)
        self._head += size
        return self._head

    def bytes_between(self, from_lsn: int, to_lsn: int) -> int:
        """Bytes of log in the half-open LSN range [from_lsn, to_lsn)."""
        if from_lsn > to_lsn:
            raise ValueError(f"from_lsn {from_lsn} > to_lsn {to_lsn}")
        return min(to_lsn, self._head) - min(from_lsn, self._head)

    def records_between(self, from_lsn: int, to_lsn: int) -> list[LogRecord]:
        """Records whose start LSN lies in [from_lsn, to_lsn)."""
        if from_lsn > to_lsn:
            raise ValueError(f"from_lsn {from_lsn} > to_lsn {to_lsn}")
        lo = bisect.bisect_left(self._starts, from_lsn)
        hi = bisect.bisect_left(self._starts, to_lsn)
        return self._records[lo:hi]

    def tagged_bytes_between(self, from_lsn: int, to_lsn: int, tag: int) -> int:
        """Bytes of records with ``tag`` starting in [from_lsn, to_lsn).

        Shared-process engines interleave all tenants' writes in one
        log; a table-level migration ships only one tenant's records.
        """
        return sum(
            record.size
            for record in self.records_between(from_lsn, to_lsn)
            if record.tag == tag
        )

    def truncate_before(self, lsn: int) -> int:
        """Drop records entirely below ``lsn``; returns bytes reclaimed.

        Models binlog purging after deltas have been applied.  LSNs are
        never reused: the head keeps advancing.
        """
        # A record is droppable only if it ends at or before ``lsn``.
        ends = [record.lsn + record.size for record in self._records]
        lo = bisect.bisect_right(ends, lsn)
        reclaimed = sum(record.size for record in self._records[:lo])
        del self._records[:lo]
        del self._starts[:lo]
        return reclaimed
