"""Shared-process multitenancy (the Section 6 / Section 8 extension).

"Slacker currently operates with a multi-process model of multitenancy,
but we are working on extending this to other models, such as
single-process (e.g., one MySQL daemon handling all tenants rather than
just one)" (Section 8).  "Slacker can be easily extended to handle such
sharing levels as long as appropriate hot backup tools are available —
e.g., the Percona variant of MySQL offers table-level hot backup"
(Section 6).

:class:`SharedProcessEngine` is that single daemon: several logical
tenants share one buffer pool (so neighbours *can* evict each other's
pages — the isolation cost the paper's process-level model avoids) and
one binary log whose records are tagged by tenant.
:class:`TableLevelBackup` streams a consistent snapshot of just one
tenant's tablespace, the building block for migrating a single tenant
out of a consolidated server.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from ..resources.server import Server
from ..resources.units import MB, PAGE_SIZE
from ..simulation import Environment, Event
from .backup import DEFAULT_CHUNK_BYTES, Snapshot
from .buffer_pool import BufferPool
from .engine import EngineState
from .log import BinaryLog
from .pages import TableLayout
from .transactions import Operation, OperationCosts, OpType, Transaction

__all__ = [
    "SharedTenant",
    "SharedProcessEngine",
    "SharedTenantSession",
    "TableLevelBackup",
]


@dataclass
class SharedTenant:
    """One logical tenant inside a shared-process engine."""

    tenant_id: int
    layout: TableLayout
    #: Committed write-operation count (the tenant's data version).
    data_version: int = 0
    #: Writes this tenant currently has in flight.
    inflight_writes: int = 0
    #: True while the tenant's tables hold a write lock (handover).
    frozen: bool = False

    @property
    def data_bytes(self) -> int:
        return self.layout.data_bytes


class SharedProcessEngine:
    """One daemon hosting many tenants: shared pool, shared binlog.

    The API mirrors :class:`~repro.db.engine.DatabaseEngine` with an
    explicit ``tenant_id`` on every call.  Pages are namespaced by
    tenant, so two tenants' page 0 are distinct pool entries but
    compete for the same frames ("buffer page evictions due to
    competing workloads", Section 2.1 — the tradeoff the paper's
    process-level model pays memory to avoid).
    """

    def __init__(
        self,
        env: Environment,
        server: Server,
        name: str = "shared-mysqld",
        buffer_bytes: int = 512 * MB,
        costs: Optional[OperationCosts] = None,
    ):
        self.env = env
        self.server = server
        self.name = name
        self.costs = costs or OperationCosts()
        self.buffer_pool = BufferPool(capacity_bytes=buffer_bytes)
        self.binlog = BinaryLog()
        self.state = EngineState.RUNNING
        self.tenants: dict[int, SharedTenant] = {}
        self._txn_ids = itertools.count(1)
        self._thaw_events: dict[int, Event] = {}
        self._quiesce_waiters: dict[int, list[Event]] = {}
        self.committed = 0

    # -- tenant management -------------------------------------------------------

    def add_tenant(self, tenant_id: int, layout: TableLayout) -> SharedTenant:
        """Create a tenant's tables inside this daemon."""
        if tenant_id in self.tenants:
            raise ValueError(f"tenant {tenant_id} already exists in {self.name}")
        tenant = SharedTenant(tenant_id=tenant_id, layout=layout)
        self.tenants[tenant_id] = tenant
        return tenant

    def drop_tenant(self, tenant_id: int) -> None:
        """Drop a tenant's tables (post-migration cleanup)."""
        self._tenant(tenant_id)
        del self.tenants[tenant_id]

    def _tenant(self, tenant_id: int) -> SharedTenant:
        try:
            return self.tenants[tenant_id]
        except KeyError:
            raise KeyError(f"no tenant {tenant_id} in {self.name}") from None

    def new_txn_id(self) -> int:
        """Allocate a unique transaction id."""
        return next(self._txn_ids)

    # -- per-tenant freeze (table write locks) --------------------------------------

    def freeze_tenant(self, tenant_id: int) -> None:
        """Write-lock one tenant's tables; other tenants are unaffected."""
        tenant = self._tenant(tenant_id)
        if tenant.frozen:
            raise RuntimeError(f"tenant {tenant_id} is already frozen")
        tenant.frozen = True
        self._thaw_events[tenant_id] = Event(self.env)

    def thaw_tenant(self, tenant_id: int) -> None:
        """Release a tenant's table locks."""
        tenant = self._tenant(tenant_id)
        if not tenant.frozen:
            raise RuntimeError(f"tenant {tenant_id} is not frozen")
        tenant.frozen = False
        self._thaw_events.pop(tenant_id).succeed()

    def write_quiesced(self, tenant_id: int) -> Event:
        """Event firing once the tenant has no write in flight."""
        tenant = self._tenant(tenant_id)
        event = Event(self.env)
        if tenant.inflight_writes == 0:
            event.succeed()
        else:
            self._quiesce_waiters.setdefault(tenant_id, []).append(event)
        return event

    # -- execution ------------------------------------------------------------------

    def execute(self, tenant_id: int, txn: Transaction) -> Generator:
        """Process: run ``txn`` against one tenant's tables."""
        tenant = self._tenant(tenant_id)
        while tenant.frozen and txn.write_count > 0:
            yield self._thaw_events[tenant_id]
        if txn.started_at is None:
            txn.started_at = self.env.now

        is_writer = txn.write_count > 0
        if is_writer:
            tenant.inflight_writes += 1
        try:
            for op in txn.operations:
                yield from self._execute_operation(tenant, txn, op)
            if is_writer:
                yield from self._commit(tenant, txn)
        finally:
            if is_writer:
                tenant.inflight_writes -= 1
                if tenant.inflight_writes == 0:
                    waiters = self._quiesce_waiters.pop(tenant_id, [])
                    for waiter in waiters:
                        waiter.succeed()
        self.committed += 1
        txn.finished_at = self.env.now

    def _execute_operation(
        self, tenant: SharedTenant, txn: Transaction, op: Operation
    ) -> Generator:
        cpu_cost = self.costs.cpu_per_op
        if op.op_type.is_write:
            cpu_cost += self.costs.cpu_per_write
        yield from self.server.cpu.execute(cpu_cost)

        if op.op_type is OpType.SCAN:
            pages = tenant.layout.pages_of_scan(op.key, op.scan_length)
        else:
            pages = [tenant.layout.page_of(op.key)]

        for page_id in pages:
            # Namespaced page key: tenants share frames, not pages.
            key = (tenant.tenant_id, page_id)
            result = self.buffer_pool.access(key, write=op.op_type.is_write)
            if result.writeback_page is not None:
                yield from self.server.disk.write(PAGE_SIZE)
            if result.read_page is not None:
                yield from self.server.disk.read(PAGE_SIZE)
                txn.pages_read += 1

        if op.op_type.is_write:
            self.binlog.append(
                size=self.costs.log_bytes_per_write,
                time=self.env.now,
                txn_id=txn.txn_id,
                tag=tenant.tenant_id,
            )

    def _commit(self, tenant: SharedTenant, txn: Transaction) -> Generator:
        yield from self.server.disk.write(
            self.costs.commit_flush_bytes,
            sequential=True,
            stream=f"{self.name}:binlog",
            cached=True,
        )
        tenant.data_version += txn.write_count


class TableLevelBackup:
    """Table-level hot backup: stream one tenant's tablespace.

    The shared-process analogue of :class:`~repro.db.backup.HotBackup`:
    the scan covers only the chosen tenant's pages, and the redo to
    replay is only that tenant's (tagged) binlog records.
    """

    def __init__(
        self,
        env: Environment,
        source: SharedProcessEngine,
        tenant_id: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ):
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.env = env
        self.source = source
        self.tenant_id = tenant_id
        self.chunk_bytes = chunk_bytes

    def begin(self) -> Snapshot:
        """Start a snapshot of the tenant's tablespace."""
        tenant = self.source._tenant(self.tenant_id)
        return Snapshot(
            start_lsn=self.source.binlog.head_lsn,
            total_bytes=tenant.data_bytes,
            started_at=self.env.now,
        )

    def read_chunk(self, snapshot: Snapshot):
        """Process: read the next tablespace chunk from the shared disk."""
        if snapshot.complete:
            return None
        remaining = snapshot.total_bytes - snapshot.streamed_bytes
        size = min(self.chunk_bytes, remaining)
        yield from self.source.server.disk.read(
            size,
            sequential=True,
            stream=f"{self.source.name}:backup-t{self.tenant_id}",
        )
        snapshot.streamed_bytes += size
        snapshot.chunks += 1
        if snapshot.streamed_bytes >= snapshot.total_bytes:
            snapshot.end_lsn = self.source.binlog.head_lsn
            snapshot.finished_at = self.env.now
        return size

    def redo_bytes(self, snapshot: Snapshot) -> int:
        """This tenant's share of the redo captured during the scan."""
        if not snapshot.complete:
            raise ValueError("snapshot scan has not finished")
        return self.source.binlog.tagged_bytes_between(
            snapshot.start_lsn, snapshot.end_lsn, tag=self.tenant_id
        )

    def pending_delta(self, from_lsn: int) -> int:
        """This tenant's binlog bytes accumulated since ``from_lsn``."""
        return self.source.binlog.tagged_bytes_between(
            from_lsn, self.source.binlog.head_lsn, tag=self.tenant_id
        )


class SharedTenantSession:
    """A client connection bound to one tenant of a shared daemon.

    Presents the single-tenant ``execute(txn)`` interface the benchmark
    clients expect.  At migration handover, :meth:`rebind` points the
    session at the tenant's new dedicated daemon — the shared-process
    version of the client connection hand-off.
    """

    def __init__(self, engine: SharedProcessEngine, tenant_id: int):
        engine._tenant(tenant_id)  # validate
        self.shared = engine
        self.tenant_id = tenant_id
        self.dedicated = None

    def rebind(self, dedicated) -> None:
        """Route future transactions to the tenant's dedicated engine."""
        self.dedicated = dedicated

    def execute(self, txn: Transaction) -> Generator:
        """Process: run ``txn`` wherever the tenant currently lives."""
        if self.dedicated is not None:
            yield from self.dedicated.execute(txn)
            return
        try:
            yield from self.shared.execute(self.tenant_id, txn)
        except KeyError:
            # The tenant moved while we were queued: retry dedicated.
            if self.dedicated is None:
                raise
            yield from self.dedicated.execute(txn)
