"""Logical page layout of a tenant database.

A tenant database is modelled as a keyed row store: ``num_rows`` rows
of ``row_size`` bytes packed into 16 KB InnoDB-style pages.  The layout
maps row keys to page ids so the buffer pool and disk see the same
access pattern a real InnoDB table would (multiple hot rows sharing a
page, scans touching consecutive pages).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources.units import GB, KB, PAGE_SIZE

__all__ = ["TableLayout", "DEFAULT_ROW_SIZE"]

#: YCSB's default record size: 10 fields x 100 bytes, plus key overhead.
DEFAULT_ROW_SIZE = 1 * KB


@dataclass(frozen=True)
class TableLayout:
    """Maps row keys of one table onto fixed-size pages.

    >>> layout = TableLayout(num_rows=1024, row_size=1024)
    >>> layout.rows_per_page
    16
    >>> layout.num_pages
    64
    >>> layout.page_of(0), layout.page_of(15), layout.page_of(16)
    (0, 0, 1)
    """

    num_rows: int
    row_size: int = DEFAULT_ROW_SIZE
    page_size: int = PAGE_SIZE

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {self.num_rows}")
        if not 0 < self.row_size <= self.page_size:
            raise ValueError(
                f"row_size {self.row_size} must be in (0, page_size={self.page_size}]"
            )

    @classmethod
    def for_data_size(
        cls, data_bytes: int = 1 * GB, row_size: int = DEFAULT_ROW_SIZE
    ) -> "TableLayout":
        """Layout for a database of roughly ``data_bytes`` total size.

        The paper's primary benchmark uses a 1 GB pre-populated database.
        """
        if data_bytes <= 0:
            raise ValueError(f"data_bytes must be positive, got {data_bytes}")
        num_rows = max(1, data_bytes // row_size)
        return cls(num_rows=num_rows, row_size=row_size)

    @property
    def rows_per_page(self) -> int:
        """Rows packed into one page."""
        return max(1, self.page_size // self.row_size)

    @property
    def num_pages(self) -> int:
        """Total data pages in the table."""
        return -(-self.num_rows // self.rows_per_page)  # ceil division

    @property
    def data_bytes(self) -> int:
        """On-disk size of the table's data file."""
        return self.num_pages * self.page_size

    def page_of(self, key: int) -> int:
        """The page holding row ``key``."""
        if not 0 <= key < self.num_rows:
            raise KeyError(f"key {key} outside [0, {self.num_rows})")
        return key // self.rows_per_page

    def pages_of_scan(self, start_key: int, length: int) -> range:
        """Pages touched by a range scan of ``length`` rows from ``start_key``."""
        if length <= 0:
            raise ValueError(f"scan length must be positive, got {length}")
        end_key = min(self.num_rows - 1, start_key + length - 1)
        return range(self.page_of(start_key), self.page_of(end_key) + 1)
