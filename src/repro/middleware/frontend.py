"""Frontend tenant→server mapping.

"In our prototype, we simply resolve the issue [of post-migration
routing] by adding a lightweight frontend server that maintains an
up-to-date mapping of tenants to servers.  Machines issuing queries to
a given tenant register with the frontend to receive updates when the
tenant migrates" (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simulation import Environment
from .protocol import TenantLocationUpdate
from .tenant import tenant_port
from .transport import MessageBus

__all__ = ["TenantLocation", "Frontend"]


@dataclass(frozen=True)
class TenantLocation:
    """Where a tenant currently lives."""

    tenant_id: int
    node: str
    port: int


class Frontend:
    """The cluster's tenant-location directory with push updates."""

    def __init__(self, env: Environment, bus: MessageBus, name: str = "frontend"):
        self.env = env
        self.bus = bus
        self.name = name
        self.endpoint = bus.endpoint(name)
        self._locations: dict[int, TenantLocation] = {}
        #: tenant_id -> endpoint names subscribed to that tenant's moves.
        self._subscribers: dict[int, set[str]] = {}
        self.updates_published = 0

    def lookup(self, tenant_id: int) -> Optional[TenantLocation]:
        """Current location of a tenant, or None if unknown."""
        return self._locations.get(tenant_id)

    def subscribe(self, tenant_id: int, endpoint_name: str) -> Optional[TenantLocation]:
        """Register for updates about a tenant; returns current location."""
        self._subscribers.setdefault(tenant_id, set()).add(endpoint_name)
        return self._locations.get(tenant_id)

    def unsubscribe(self, tenant_id: int, endpoint_name: str) -> None:
        """Stop receiving updates about a tenant."""
        self._subscribers.get(tenant_id, set()).discard(endpoint_name)

    def update_location(self, tenant_id: int, node: str) -> TenantLocation:
        """Record a (new) location and push updates to subscribers."""
        location = TenantLocation(
            tenant_id=tenant_id, node=node, port=tenant_port(tenant_id)
        )
        self._locations[tenant_id] = location
        update = TenantLocationUpdate(
            tenant_id=tenant_id, node=node, port=location.port
        )
        for subscriber in sorted(self._subscribers.get(tenant_id, ())):
            self.env.process(self.endpoint.send(subscriber, update))
            self.updates_published += 1
        return location

    def remove(self, tenant_id: int) -> None:
        """Forget a deleted tenant."""
        self._locations.pop(tenant_id, None)
        self._subscribers.pop(tenant_id, None)

    def tenants(self) -> list[TenantLocation]:
        """All known locations, sorted by tenant id."""
        return [self._locations[tid] for tid in sorted(self._locations)]
