"""Frontend tenant→server mapping.

"In our prototype, we simply resolve the issue [of post-migration
routing] by adding a lightweight frontend server that maintains an
up-to-date mapping of tenants to servers.  Machines issuing queries to
a given tenant register with the frontend to receive updates when the
tenant migrates" (Section 2.2).

Location pushes used to be fire-and-forget: under a partition a
dropped ``TenantLocationUpdate`` left the subscriber routing to the
old node forever.  Pushes now ride the endpoint's retry policy, count
only on a known delivery outcome (delivered vs interrupted vs failed,
matching the bus counters), and a subscriber whose push failed is
remembered as *stale* and re-synced on its next ``lookup`` or
``subscribe`` — so a healed partition heals the directory too.

During a fluid migration the directory additionally carries a
per-chunk ownership map (see ``docs/FLUID.md``): ``lookup_chunk``
answers which node owns a page chunk while the tenant is
dual-resident, and every flip is broadcast as a ``ChunkOwnership``
frame carrying the migration's fencing token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simulation import Environment
from .protocol import ChunkOwnership, TenantLocationUpdate
from .tenant import tenant_port
from .transport import DeliveryError, MessageBus

__all__ = ["TenantLocation", "Frontend"]


@dataclass(frozen=True)
class TenantLocation:
    """Where a tenant currently lives."""

    tenant_id: int
    node: str
    port: int


class Frontend:
    """The cluster's tenant-location directory with push updates."""

    def __init__(self, env: Environment, bus: MessageBus, name: str = "frontend"):
        self.env = env
        self.bus = bus
        self.name = name
        self.endpoint = bus.endpoint(name)
        self._locations: dict[int, TenantLocation] = {}
        #: tenant_id -> endpoint names subscribed to that tenant's moves.
        self._subscribers: dict[int, set[str]] = {}
        #: tenant_id -> monotonic location version (bumped per update).
        self._versions: dict[int, int] = {}
        #: tenant_id -> subscribers whose last push failed outright and
        #: who therefore may be routing on stale state.
        self._stale: dict[int, set[str]] = {}
        #: tenant_id -> (num_chunks, chunk_index -> node) while a fluid
        #: migration has the tenant dual-resident.
        self._chunk_maps: dict[int, tuple[int, dict[int, str]]] = {}
        #: Pushes confirmed delivered.
        self.updates_published = 0
        #: Pushes whose outcome is unknown (send interrupted mid-flight).
        self.updates_interrupted = 0
        #: Pushes that failed outright after retries.
        self.updates_failed = 0
        #: Stale subscribers re-synced on a later lookup/subscribe.
        self.resyncs = 0

    def lookup(self, tenant_id: int) -> Optional[TenantLocation]:
        """Current location of a tenant, or None if unknown."""
        self._resync(tenant_id)
        return self._locations.get(tenant_id)

    def subscribe(self, tenant_id: int, endpoint_name: str) -> Optional[TenantLocation]:
        """Register for updates about a tenant; returns current location."""
        self._subscribers.setdefault(tenant_id, set()).add(endpoint_name)
        self._resync(tenant_id)
        return self._locations.get(tenant_id)

    def unsubscribe(self, tenant_id: int, endpoint_name: str) -> None:
        """Stop receiving updates about a tenant."""
        self._subscribers.get(tenant_id, set()).discard(endpoint_name)
        self._stale.get(tenant_id, set()).discard(endpoint_name)

    def update_location(self, tenant_id: int, node: str) -> TenantLocation:
        """Record a (new) location and push updates to subscribers."""
        location = TenantLocation(
            tenant_id=tenant_id, node=node, port=tenant_port(tenant_id)
        )
        self._locations[tenant_id] = location
        version = self._versions.get(tenant_id, 0) + 1
        self._versions[tenant_id] = version
        update = TenantLocationUpdate(
            tenant_id=tenant_id, node=node, port=location.port, version=version
        )
        for subscriber in sorted(self._subscribers.get(tenant_id, ())):
            self.env.process(self._publish(subscriber, tenant_id, version, update))
        return location

    def _publish(self, subscriber: str, tenant_id: int, version: int, message):
        """Push one update and account for its actual delivery outcome."""
        try:
            yield from self.endpoint.send(subscriber, message)
        except DeliveryError as exc:
            if exc.delivered_unknown:
                self.updates_interrupted += 1
            else:
                self.updates_failed += 1
            self._stale.setdefault(tenant_id, set()).add(subscriber)
            return
        self.updates_published += 1
        # Only a successful push of the *current* version clears the
        # stale mark: an old in-flight push must not mask a newer loss.
        if self._versions.get(tenant_id, 0) == version:
            self._stale.get(tenant_id, set()).discard(subscriber)

    def _resync(self, tenant_id: int) -> None:
        """Re-push the current location to subscribers marked stale."""
        stale = self._stale.get(tenant_id)
        if not stale:
            return
        location = self._locations.get(tenant_id)
        if location is None:
            stale.clear()
            return
        version = self._versions.get(tenant_id, 0)
        update = TenantLocationUpdate(
            tenant_id=tenant_id,
            node=location.node,
            port=location.port,
            version=version,
        )
        for subscriber in sorted(stale):
            self.resyncs += 1
            self.env.process(self._publish(subscriber, tenant_id, version, update))

    # -- per-chunk ownership (fluid migrations) ---------------------------

    def begin_chunked(self, tenant_id: int, num_chunks: int, node: str) -> None:
        """Open a dual-resident window: every chunk starts on ``node``."""
        self._chunk_maps[tenant_id] = (
            num_chunks,
            {chunk: node for chunk in range(num_chunks)},
        )

    def end_chunked(self, tenant_id: int) -> None:
        """Close the dual-resident window (tenant single-homed again)."""
        self._chunk_maps.pop(tenant_id, None)

    def chunked(self, tenant_id: int) -> bool:
        """True while the tenant has an open per-chunk map."""
        return tenant_id in self._chunk_maps

    def lookup_chunk(self, tenant_id: int, chunk_index: int) -> Optional[str]:
        """Owning node of one chunk, or None outside a fluid window."""
        entry = self._chunk_maps.get(tenant_id)
        if entry is None:
            return None
        return entry[1].get(chunk_index)

    def chunk_owners(self, tenant_id: int) -> Optional[dict[int, str]]:
        """Snapshot of the chunk map, or None outside a fluid window."""
        entry = self._chunk_maps.get(tenant_id)
        if entry is None:
            return None
        return dict(entry[1])

    def update_chunk_location(
        self, tenant_id: int, chunk_index: int, node: str, *, token: int = 0
    ) -> None:
        """Record a chunk flip and broadcast it to subscribers."""
        entry = self._chunk_maps.get(tenant_id)
        if entry is None:
            return
        num_chunks, owners = entry
        owners[chunk_index] = node
        update = ChunkOwnership(
            tenant_id=tenant_id,
            chunk_index=chunk_index,
            node=node,
            port=tenant_port(tenant_id),
            token=token,
        )
        for subscriber in sorted(self._subscribers.get(tenant_id, ())):
            self.env.process(
                self._publish(subscriber, tenant_id, self._versions.get(tenant_id, 0), update)
            )

    def remove(self, tenant_id: int) -> None:
        """Forget a deleted tenant."""
        self._locations.pop(tenant_id, None)
        self._subscribers.pop(tenant_id, None)
        self._versions.pop(tenant_id, None)
        self._stale.pop(tenant_id, None)
        self._chunk_maps.pop(tenant_id, None)

    def tenants(self) -> list[TenantLocation]:
        """All known locations, sorted by tenant id."""
        return [self._locations[tid] for tid in sorted(self._locations)]
