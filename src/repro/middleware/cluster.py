"""Cluster orchestration: servers + nodes + bus + frontend in one place.

A convenience assembly mirroring the paper's Figure 4 testbed: several
servers each running a Slacker migration controller, connected
peer-to-peer, plus the lightweight frontend.  Experiments and examples
build a :class:`SlackerCluster` and talk to its nodes.

Pass ``retry_policy`` to run the control plane in hardened mode
(per-message timeouts, bounded retries, deterministic jittered
backoff); leave it ``None`` for the fault-free legacy bus, which is
event-for-event identical to the pre-fault-injection transport.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..resources.server import Server, ServerParams
from ..resources.units import MB
from ..simulation import Environment, RandomStreams, Trace
from .frontend import Frontend
from .node import NodeConfig, SlackerNode
from .transport import MessageBus, RetryPolicy

__all__ = ["FleetSpec", "SlackerCluster"]


@dataclass(frozen=True)
class FleetSpec:
    """A seeded recipe for a whole fleet: N nodes, M heterogeneous tenants.

    The pre-fleet constructor builds clusters node-by-node, which is
    fine for the paper's two-to-four-server testbed but not for the
    ROADMAP's "hundreds of nodes, thousands of tenants" scenario.  A
    spec describes the fleet once; :meth:`SlackerCluster.build_fleet`
    instantiates it deterministically — tenant sizes are drawn
    log-uniform (database directory sizes are heavy-tailed) from the
    cluster's named ``fleet:tenants`` stream, so the same seed always
    yields the same fleet.
    """

    nodes: int
    tenants: int
    node_prefix: str = "node"
    #: Smallest/largest tenant data directory, bytes (log-uniform draw).
    min_tenant_bytes: int = 16 * MB
    max_tenant_bytes: int = 256 * MB
    #: "round-robin" spreads tenants evenly; "random" assigns each
    #: tenant a uniformly-drawn node (seeded), yielding natural skew.
    placement: str = "round-robin"

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.tenants < 0:
            raise ValueError(f"tenants must be >= 0, got {self.tenants}")
        if not 0 < self.min_tenant_bytes <= self.max_tenant_bytes:
            raise ValueError(
                f"need 0 < min_tenant_bytes <= max_tenant_bytes, got "
                f"{self.min_tenant_bytes}..{self.max_tenant_bytes}"
            )
        if self.placement not in ("round-robin", "random"):
            raise ValueError(
                f"placement must be 'round-robin' or 'random', "
                f"got {self.placement!r}"
            )

    def node_names(self) -> list[str]:
        """Generated node names, zero-padded for stable sort order."""
        width = len(str(self.nodes - 1)) if self.nodes > 1 else 1
        return [
            f"{self.node_prefix}-{index:0{width}d}"
            for index in range(self.nodes)
        ]


class SlackerCluster:
    """A set of interconnected Slacker nodes sharing one simulation."""

    def __init__(
        self,
        env: Environment,
        node_names: Sequence[str],
        server_params: Optional[ServerParams] = None,
        node_config: Optional[NodeConfig] = None,
        streams: Optional[RandomStreams] = None,
        trace: Optional[Trace] = None,
        retry_policy: Optional[RetryPolicy] = None,
        lease_ttl: Optional[float] = None,
    ):
        if not node_names:
            raise ValueError("need at least one node name")
        if len(set(node_names)) != len(node_names):
            raise ValueError(f"duplicate node names in {list(node_names)}")
        if lease_ttl is not None and "controller" in node_names:
            raise ValueError(
                "node name 'controller' collides with the lease service endpoint"
            )
        self.env = env
        self.streams = streams or RandomStreams(0)
        self.trace = trace if trace is not None else Trace()
        self.servers: dict[str, Server] = {
            name: Server(env, name, params=server_params, streams=self.streams)
            for name in node_names
        }
        if retry_policy is not None:
            self.bus = MessageBus(
                env,
                nics=self.servers,
                retry_policy=retry_policy,
                jitter_rng=self.streams.stream("transport:jitter"),
            )
        else:
            self.bus = MessageBus(env, nics=self.servers)
        self.frontend = Frontend(env, self.bus)
        self.nodes: dict[str, SlackerNode] = {
            name: SlackerNode(
                env,
                server,
                self.bus,
                self.frontend,
                config=node_config,
                trace=self.trace,
            )
            for name, server in self.servers.items()
        }
        for node in self.nodes.values():
            node.peers = {n: p for n, p in self.nodes.items() if p is not node}
        #: Migration ownership leases (see repro.migration.lease), only
        #: when ``lease_ttl`` is set; ``None`` keeps every node on the
        #: unfenced token-0 path, event-for-event identical to a
        #: cluster built without leases.
        self.lease_manager = None
        self.lease_service = None
        if lease_ttl is not None:
            # Imported here: middleware is a lower layer than migration
            # for these classes, and lease-free clusters never pay it.
            from ..migration.lease import LeaseManager, LeaseService

            self.lease_manager = LeaseManager(env, ttl=lease_ttl)
            self.lease_service = LeaseService(env, self.bus, self.lease_manager)
            for node in self.nodes.values():
                node.lease_manager = self.lease_manager
        #: The spec this cluster was built from, when built via
        #: :meth:`build_fleet`; None for hand-assembled clusters.
        self.fleet_spec: Optional[FleetSpec] = None

    @classmethod
    def build_fleet(
        cls,
        env: Environment,
        spec: FleetSpec,
        server_params: Optional[ServerParams] = None,
        node_config: Optional[NodeConfig] = None,
        streams: Optional[RandomStreams] = None,
        trace: Optional[Trace] = None,
        retry_policy: Optional[RetryPolicy] = None,
        lease_ttl: Optional[float] = None,
    ) -> "SlackerCluster":
        """Instantiate a whole fleet from a seeded :class:`FleetSpec`.

        Tenant ids are dense from 0; sizes are log-uniform in
        ``[min_tenant_bytes, max_tenant_bytes]``; placement follows
        ``spec.placement``.  All randomness comes from the cluster's
        ``fleet:tenants`` named stream, so a fleet is a pure function
        of (spec, seed).
        """
        cluster = cls(
            env,
            spec.node_names(),
            server_params=server_params,
            node_config=node_config,
            streams=streams,
            trace=trace,
            retry_policy=retry_policy,
            lease_ttl=lease_ttl,
        )
        names = spec.node_names()
        rng = cluster.streams.stream("fleet:tenants")
        log_min = math.log(spec.min_tenant_bytes)
        log_max = math.log(spec.max_tenant_bytes)
        for tenant_id in range(spec.tenants):
            data_bytes = int(round(math.exp(rng.uniform(log_min, log_max))))
            if spec.placement == "random":
                home = names[rng.randrange(len(names))]
            else:
                home = names[tenant_id % len(names)]
            cluster.nodes[home].create_tenant(tenant_id, data_bytes)
        cluster.fleet_spec = spec
        return cluster

    def node(self, name: str) -> SlackerNode:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    def locate(self, tenant_id: int) -> Optional[str]:
        """Which node currently hosts a tenant (via the frontend)."""
        location = self.frontend.lookup(tenant_id)
        return location.node if location else None

    def total_tenants(self) -> int:
        """Tenants across all nodes."""
        return sum(len(node.registry) for node in self.nodes.values())

    # -- failure-handling helpers ------------------------------------------

    def start_heartbeats(self, interval: float = 10.0) -> None:
        """Start the heartbeat broadcaster on every node."""
        for node in self.nodes.values():
            node.start_heartbeats(interval)

    def start_failure_detectors(
        self,
        interval: float = 1.0,
        miss_threshold: float = 3.0,
        suspect_grace: float = 0.0,
    ) -> None:
        """Start the missed-heartbeat failure detector on every node."""
        for node in self.nodes.values():
            node.start_failure_detector(interval, miss_threshold, suspect_grace)

    def alive_nodes(self) -> list[str]:
        """Names of nodes whose middleware daemon is currently up."""
        return [name for name, node in self.nodes.items() if node.alive]

    def tenant_census(self) -> dict[int, list[str]]:
        """tenant_id -> names of nodes whose registry holds it.

        The exactly-once invariant the chaos sweep asserts: every
        tenant appears on exactly one node, crash or no crash.
        """
        census: dict[int, list[str]] = {}
        for name in sorted(self.nodes):
            for tenant_id in self.nodes[name].registry.ids():
                census.setdefault(tenant_id, []).append(name)
        return census
