"""In-process message transport between Slacker nodes.

Control messages are serialized with the real wire codec
(:mod:`repro.middleware.protocol`), charged to the sending and
receiving NICs, and delivered into the destination node's inbox, so
the control plane exercises genuine encode/decode on every hop even
though no sockets exist in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..simulation import Environment, Store
from .protocol import decode_message, encode_message

__all__ = ["Envelope", "MessageBus", "Endpoint"]


@dataclass(frozen=True)
class Envelope:
    """A delivered message plus its routing metadata."""

    sender: str
    recipient: str
    message: Any
    sent_at: float
    delivered_at: float
    wire_bytes: int


class Endpoint:
    """One node's attachment point to the bus."""

    def __init__(self, bus: "MessageBus", name: str):
        self.bus = bus
        self.name = name
        self.inbox: Store = Store(bus.env)
        self.sent = 0
        self.received = 0

    def send(self, recipient: str, message: Any):
        """Process: serialize and deliver ``message`` to ``recipient``."""
        yield from self.bus.deliver(self.name, recipient, message)
        self.sent += 1

    def receive(self):
        """Event: the next :class:`Envelope` for this endpoint."""
        return self.inbox.get()


class MessageBus:
    """Routes encoded messages between named endpoints."""

    def __init__(self, env: Environment, nics: Optional[dict] = None):
        self.env = env
        #: Optional map name -> Server; when present, transfers are
        #: charged to the real simulated NICs.
        self.nics = nics or {}
        self._endpoints: dict[str, Endpoint] = {}
        self.messages_delivered = 0
        self.bytes_on_wire = 0

    def endpoint(self, name: str) -> Endpoint:
        """Create (or fetch) the endpoint for ``name``."""
        if name not in self._endpoints:
            self._endpoints[name] = Endpoint(self, name)
        return self._endpoints[name]

    def deliver(self, sender: str, recipient: str, message: Any):
        """Process: encode, transfer, decode, and enqueue a message."""
        if recipient not in self._endpoints:
            raise KeyError(f"no endpoint named {recipient!r}")
        wire = encode_message(message)
        sent_at = self.env.now

        sender_server = self.nics.get(sender)
        recipient_server = self.nics.get(recipient)
        if sender_server is not None:
            yield from sender_server.nic_out.transfer(len(wire))
        if recipient_server is not None:
            yield from recipient_server.nic_in.transfer(len(wire))

        decoded, _ = decode_message(wire)
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            message=decoded,
            sent_at=sent_at,
            delivered_at=self.env.now,
            wire_bytes=len(wire),
        )
        target = self._endpoints[recipient]
        target.inbox.put(envelope)
        target.received += 1
        self.messages_delivered += 1
        self.bytes_on_wire += len(wire)
