"""In-process message transport between Slacker nodes.

Control messages are serialized with the real wire codec
(:mod:`repro.middleware.protocol`), charged to the sending and
receiving NICs, and delivered into the destination node's inbox, so
the control plane exercises genuine encode/decode on every hop even
though no sockets exist in the simulation.

Fault injection and delivery guarantees
---------------------------------------

The bus carries two optional hooks, both ``None`` by default so the
fault-free fast path is byte-for-byte identical to a bus without them:

* ``faults`` — a :class:`~repro.faults.injector.FaultInjector` (duck
  typed: anything with ``is_down(name)`` and ``message_fate(sender,
  recipient)``).  When set, messages may be dropped, delayed,
  duplicated, or reordered, and messages to/from crashed nodes vanish.
* ``retry_policy`` — a :class:`RetryPolicy`.  When set,
  :meth:`Endpoint.send` races each delivery against a per-message
  timeout and retries with exponential backoff plus deterministic
  jitter (drawn from ``jitter_rng``, a seeded stream — never the
  global ``random`` module).  A timed-out attempt's in-flight delivery
  keeps running, so late deliveries surface as natural duplicates —
  exactly the at-least-once behaviour receivers must be idempotent
  against.

Without a policy, a dropped message raises :class:`DeliveryError`
immediately (at-most-once, fail-fast).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional

from ..simulation import Environment, Store
from .protocol import decode_message, encode_message

__all__ = ["DeliveryError", "RetryPolicy", "Envelope", "MessageBus", "Endpoint"]


class DeliveryError(Exception):
    """A message could not be delivered (dropped, or retries exhausted).

    ``delivered_unknown`` distinguishes *interrupted* sends from failed
    ones: the message may have reached the recipient, but every
    acknowledgement was lost (e.g. the reply path is partitioned), so
    the sender cannot know.  Callers must treat the operation as
    possibly-applied — receivers are idempotent precisely for this.
    """

    def __init__(
        self,
        sender: str,
        recipient: str,
        reason: str,
        delivered_unknown: bool = False,
    ):
        super().__init__(f"{sender} -> {recipient}: {reason}")
        self.sender = sender
        self.recipient = recipient
        self.reason = reason
        self.delivered_unknown = delivered_unknown


#: Sentinel returned by :meth:`MessageBus.deliver` when the message
#: reached the recipient's inbox but the acknowledgement path back to
#: the sender is partitioned: the payload landed, the sender can't know.
_UNACKED = "unacked"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry delivery with exponential backoff and jitter.

    Every attempt is bounded by ``timeout`` seconds; the k-th retry
    backs off ``backoff_base * backoff_factor**(k-1)`` seconds plus a
    jitter term of up to ``backoff_base * jitter_frac`` drawn from the
    bus's seeded jitter stream.  ``max_attempts`` caps the total number
    of attempts (first try included) — retry loops must always be
    bounded (lint rule SLK009).
    """

    #: Per-attempt delivery timeout, seconds.
    timeout: float = 0.5
    #: Total attempts (first try included).
    max_attempts: int = 4
    #: First-retry backoff, seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Jitter amplitude as a fraction of ``backoff_base``.
    jitter_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base must be >= 0 and backoff_factor >= 1")
        if self.jitter_frac < 0:
            raise ValueError(f"jitter_frac must be >= 0, got {self.jitter_frac}")

    def backoff(self, attempt: int, rng: Optional[random.Random]) -> float:
        """Backoff before retry ``attempt`` (1-based), seconds."""
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if rng is not None and self.jitter_frac > 0:
            delay += self.backoff_base * self.jitter_frac * rng.random()
        return delay


@dataclass(frozen=True)
class Envelope:
    """A delivered message plus its routing metadata."""

    sender: str
    recipient: str
    message: Any
    sent_at: float
    delivered_at: float
    wire_bytes: int


class Endpoint:
    """One node's attachment point to the bus."""

    def __init__(self, bus: "MessageBus", name: str):
        self.bus = bus
        self.name = name
        self.inbox: Store = Store(bus.env)
        #: Sends *started* (not just fully delivered ones): failed and
        #: interrupted deliveries count too, so retry accounting adds up.
        self.sent = 0
        #: Sends that reached the recipient's inbox at least once.
        self.delivered = 0
        #: Sends that gave up (dropped without a policy, or retries
        #: exhausted under one) with no attempt known to have landed.
        self.failed = 0
        #: Sends that gave up but whose payload *may* have been
        #: delivered — every acknowledgement was lost (one-way
        #: partition on the reply path).  Distinct from ``failed``:
        #: the outcome is unknown, not negative.
        self.interrupted = 0
        #: Retry attempts beyond each send's first try.
        self.retries = 0
        #: Attempts abandoned because the per-message timeout fired.
        self.timeouts = 0
        self.received = 0

    def send(self, recipient: str, message: Any):
        """Process: serialize and deliver ``message`` to ``recipient``.

        Raises :class:`DeliveryError` when the message cannot be
        delivered (after bounded retries when the bus carries a
        :class:`RetryPolicy`).
        """
        self.sent += 1
        obs = self.bus.obs
        if obs is not None:
            obs.transport_sends.inc()
        policy = self.bus.retry_policy
        if policy is None:
            # Fast path: byte-identical to the historical behaviour —
            # no extra events, single attempt, fail fast on a drop.
            delivered = yield from self.bus.deliver(self.name, recipient, message)
            if not delivered:
                self.failed += 1
                self.bus.send_failures += 1
                if obs is not None:
                    obs.transport_failures.inc()
                raise DeliveryError(self.name, recipient, "message dropped")
            self.delivered += 1
            if obs is not None:
                obs.transport_delivered.inc()
            return True

        env = self.bus.env
        unacked = False
        for attempt in range(policy.max_attempts):
            if attempt:
                self.retries += 1
                self.bus.send_retries += 1
                if obs is not None:
                    obs.transport_retries.inc()
                yield env.timeout(policy.backoff(attempt, self.bus.jitter_rng))
            delivery = env.process(self.bus.deliver(self.name, recipient, message))
            deadline = env.timeout(policy.timeout)
            yield env.any_of([delivery, deadline])
            if delivery.triggered:
                value = delivery.value
                if value is _UNACKED:
                    # The payload landed but the reply path is
                    # partitioned: the sender cannot distinguish this
                    # from a lost message until the timeout fires.
                    unacked = True
                    if not deadline.triggered:
                        yield deadline
                    self.timeouts += 1
                    self.bus.send_timeouts += 1
                    if obs is not None:
                        obs.transport_timeouts.inc()
                    continue
                if value:
                    self.delivered += 1
                    if obs is not None:
                        obs.transport_delivered.inc()
                    return True
                # Dropped: back off and retry.
            else:
                # Timed out.  The in-flight delivery keeps running: if
                # it lands later the receiver sees a duplicate, which
                # handlers must (and do) tolerate.
                self.timeouts += 1
                self.bus.send_timeouts += 1
                if obs is not None:
                    obs.transport_timeouts.inc()
        if unacked:
            # Interrupted, not failed: at least one attempt reached the
            # recipient, only the acknowledgements were lost.
            self.interrupted += 1
            self.bus.send_interrupted += 1
            if obs is not None:
                obs.transport_failures.inc()
            raise DeliveryError(
                self.name,
                recipient,
                f"unacknowledged after {policy.max_attempts} attempts",
                delivered_unknown=True,
            )
        self.failed += 1
        self.bus.send_failures += 1
        if obs is not None:
            obs.transport_failures.inc()
        raise DeliveryError(
            self.name, recipient, f"gave up after {policy.max_attempts} attempts"
        )

    def receive(self):
        """Event: the next :class:`Envelope` for this endpoint."""
        return self.inbox.get()


class MessageBus:
    """Routes encoded messages between named endpoints."""

    def __init__(
        self,
        env: Environment,
        nics: Optional[dict] = None,
        retry_policy: Optional[RetryPolicy] = None,
        jitter_rng: Optional[random.Random] = None,
    ):
        self.env = env
        #: Optional map name -> Server; when present, transfers are
        #: charged to the real simulated NICs.
        self.nics = nics or {}
        #: Optional fault injector (see :mod:`repro.faults`); ``None``
        #: keeps delivery fault-free with zero overhead.
        self.faults = None
        #: Optional :class:`~repro.obs.Observability`; ``None`` keeps
        #: the send/deliver paths free of metric updates.
        self.obs = None
        #: Optional delivery policy for :meth:`Endpoint.send`.
        self.retry_policy = retry_policy
        #: Seeded RNG for backoff jitter (from ``RandomStreams``).
        self.jitter_rng = jitter_rng
        self._endpoints: dict[str, Endpoint] = {}
        self.messages_delivered = 0
        self.bytes_on_wire = 0
        #: Messages dropped by injected message faults.
        self.messages_dropped = 0
        #: Messages dropped because an end of the hop was crashed.
        self.messages_dropped_dead = 0
        #: Messages lost to a partitioned (blocked) link.
        self.messages_dropped_partition = 0
        #: Deliveries that landed but whose ack path was partitioned.
        self.acks_lost = 0
        #: Extra copies enqueued by duplicate faults.
        self.messages_duplicated = 0
        #: Messages held back by delay/reorder faults.
        self.messages_delayed = 0
        #: Total injected delay, seconds.
        self.delay_seconds = 0.0
        #: Endpoint retry attempts, bus-wide.
        self.send_retries = 0
        #: Endpoint per-attempt timeouts, bus-wide.
        self.send_timeouts = 0
        #: Sends that ultimately failed, bus-wide.
        self.send_failures = 0
        #: Sends abandoned with delivery status unknown, bus-wide.
        self.send_interrupted = 0

    def endpoint(self, name: str) -> Endpoint:
        """Create (or fetch) the endpoint for ``name``."""
        if name not in self._endpoints:
            self._endpoints[name] = Endpoint(self, name)
        return self._endpoints[name]

    def counters(self) -> dict[str, float]:
        """Delivery/fault counters, for chaos reports and invariants."""
        return {
            "messages_delivered": self.messages_delivered,
            "bytes_on_wire": self.bytes_on_wire,
            "messages_dropped": self.messages_dropped,
            "messages_dropped_dead": self.messages_dropped_dead,
            "messages_dropped_partition": self.messages_dropped_partition,
            "acks_lost": self.acks_lost,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
            "delay_seconds": self.delay_seconds,
            "send_retries": self.send_retries,
            "send_timeouts": self.send_timeouts,
            "send_failures": self.send_failures,
            "send_interrupted": self.send_interrupted,
        }

    def deliver(self, sender: str, recipient: str, message: Any):
        """Process: encode, transfer, decode, and enqueue a message.

        Returns ``True`` when the message reached the recipient's
        inbox, ``False`` when a fault consumed it.
        """
        if recipient not in self._endpoints:
            raise KeyError(f"no endpoint named {recipient!r}")
        wire = encode_message(message)
        sent_at = self.env.now

        faults = self.faults
        if faults is not None and faults.is_down(sender):
            # A crashed middleware daemon sends nothing.
            self.messages_dropped_dead += 1
            if self.obs is not None:
                self.obs.transport_drops.inc()
            return False

        # Duck-typed like the rest of the fault hook: test doubles may
        # implement only is_down/message_fate.
        link_blocked = getattr(faults, "link_blocked", None) if faults is not None else None

        sender_server = self.nics.get(sender)
        recipient_server = self.nics.get(recipient)
        if sender_server is not None:
            yield from sender_server.nic_out.transfer(len(wire))

        if link_blocked is not None and link_blocked(sender, recipient):
            # The forward link is partitioned: the sender paid to
            # transmit, the wire ate the frame.
            self.messages_dropped_partition += 1
            if self.obs is not None:
                self.obs.transport_drops.inc()
            return False

        fate = None
        if faults is not None:
            fate = faults.message_fate(sender, recipient)
            if fate is not None:
                if fate.drop:
                    self.messages_dropped += 1
                    if self.obs is not None:
                        self.obs.transport_drops.inc()
                    return False
                if fate.delay > 0:
                    self.messages_delayed += 1
                    self.delay_seconds += fate.delay
                    yield self.env.timeout(fate.delay)
            if faults.is_down(recipient):
                # Arrived at a crashed daemon: nobody is listening.
                self.messages_dropped_dead += 1
                if self.obs is not None:
                    self.obs.transport_drops.inc()
                return False

        if recipient_server is not None:
            yield from recipient_server.nic_in.transfer(len(wire))

        decoded, _ = decode_message(wire)
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            message=decoded,
            sent_at=sent_at,
            delivered_at=self.env.now,
            wire_bytes=len(wire),
        )
        target = self._endpoints[recipient]
        target.inbox.put(envelope)
        target.received += 1
        self.messages_delivered += 1
        self.bytes_on_wire += len(wire)
        if fate is not None and fate.duplicate:
            # At-least-once delivery: the receiver sees the same
            # payload twice and must handle it idempotently.
            target.inbox.put(envelope)
            target.received += 1
            self.messages_duplicated += 1
        if (
            self.retry_policy is not None
            and link_blocked is not None
            and link_blocked(recipient, sender)
        ):
            # Delivered, but the reply/ack link back to the sender is
            # cut: report one-way silence so Endpoint.send accounts
            # this as interrupted, not delivered.  Only modelled under
            # a retry policy — the fail-fast path has no ack concept.
            self.acks_lost += 1
            return _UNACKED
        return True
