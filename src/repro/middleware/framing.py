"""Stream framing: decode protocol messages from a byte stream.

The in-process transport delivers whole messages, but a real deployment
receives the wire format over TCP, where reads return arbitrary byte
chunks.  :class:`MessageStreamDecoder` accumulates bytes and yields
complete messages as they become decodable — including messages split
across reads and multiple messages arriving in one read — so the
protocol layer is genuinely socket-ready.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..resources.units import MB
from .protocol import ProtocolError, decode_message, decode_varint, encode_message

__all__ = ["MessageStreamDecoder", "frame_messages"]


def frame_messages(messages: list[Any]) -> bytes:
    """Encode several messages back-to-back into one byte stream."""
    return b"".join(encode_message(message) for message in messages)


class MessageStreamDecoder:
    """Incremental decoder for a stream of wire-format messages."""

    #: Refuse to buffer more than this (malformed-stream protection).
    MAX_BUFFER = 16 * MB

    def __init__(self):
        self._buffer = bytearray()
        self.messages_decoded = 0
        self.bytes_consumed = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes received but not yet decodable into a full message."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Any]:
        """Add received bytes; returns every newly-complete message."""
        self._buffer.extend(data)
        if len(self._buffer) > self.MAX_BUFFER:
            raise ProtocolError(
                f"stream buffer exceeded {self.MAX_BUFFER} bytes without a "
                "complete message"
            )
        out = []
        while True:
            message, consumed = self._try_decode()
            if message is None:
                break
            out.append(message)
            del self._buffer[:consumed]
            self.messages_decoded += 1
            self.bytes_consumed += consumed
        return out

    def _try_decode(self):
        """Attempt to decode one message from the buffer head."""
        data = bytes(self._buffer)
        if not data:
            return None, 0
        try:
            _msg_id, offset = decode_varint(data, 0)
            length, offset = decode_varint(data, offset)
        except ProtocolError:
            # Truncated varint header: wait for more bytes.
            return None, 0
        if offset + length > len(data):
            return None, 0  # body not fully here yet
        message, end = decode_message(data, 0)
        return message, end

    def iter_feed(self, chunks: Iterator[bytes]) -> Iterator[Any]:
        """Decode a whole iterable of read chunks, yielding messages."""
        for chunk in chunks:
            yield from self.feed(chunk)
