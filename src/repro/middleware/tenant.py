"""Tenant representation and registry.

"Tenants are represented by globally-unique numeric IDs ... For
customer applications, communication with a specific tenant database
requires only knowledge of the machine on which the tenant is located
and the tenant ID, since the database port is a fixed function of the
ID" (Section 2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..db.engine import DatabaseEngine

__all__ = ["TenantStatus", "Tenant", "tenant_port", "BASE_PORT"]

#: MySQL's default port; tenant N listens on BASE_PORT + N.
BASE_PORT = 3306


def tenant_port(tenant_id: int) -> int:
    """The fixed port function of a tenant id."""
    if tenant_id < 0:
        raise ValueError(f"tenant_id must be >= 0, got {tenant_id}")
    return BASE_PORT + tenant_id


class TenantStatus(enum.Enum):
    """Lifecycle of a tenant on a node."""

    ACTIVE = "active"
    MIGRATING_OUT = "migrating-out"
    MIGRATING_IN = "migrating-in"
    DELETED = "deleted"


@dataclass
class Tenant:
    """One tenant: a numeric id, a data directory, and a daemon.

    The ``engine`` reference is swapped at migration handover; client
    code that holds the :class:`Tenant` keeps working because it always
    goes through :attr:`engine`.
    """

    tenant_id: int
    engine: DatabaseEngine
    status: TenantStatus = TenantStatus.ACTIVE
    #: Node name currently hosting the authoritative engine.
    node: str = ""
    #: Migration history: (time, from_node, to_node) entries.
    moves: list[tuple[float, str, str]] = field(default_factory=list)

    @property
    def port(self) -> int:
        """The fixed port assigned to this tenant."""
        return tenant_port(self.tenant_id)

    @property
    def data_bytes(self) -> int:
        """Size of the tenant's data directory."""
        return self.engine.data_bytes

    def record_move(self, time: float, from_node: str, to_node: str) -> None:
        """Log a completed migration."""
        self.moves.append((time, from_node, to_node))
        self.node = to_node


class TenantRegistry:
    """Id-indexed collection of tenants (one per Slacker node)."""

    def __init__(self):
        self._tenants: dict[int, Tenant] = {}

    def add(self, tenant: Tenant) -> None:
        """Register a tenant; ids must be unique on the node."""
        if tenant.tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant.tenant_id} already registered")
        self._tenants[tenant.tenant_id] = tenant

    def remove(self, tenant_id: int) -> Tenant:
        """Unregister and return a tenant."""
        try:
            return self._tenants.pop(tenant_id)
        except KeyError:
            raise KeyError(f"no tenant {tenant_id} on this node") from None

    def get(self, tenant_id: int) -> Tenant:
        """Look up a tenant by id."""
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise KeyError(f"no tenant {tenant_id} on this node") from None

    def __contains__(self, tenant_id: int) -> bool:
        return tenant_id in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    def ids(self) -> list[int]:
        """All registered tenant ids, sorted."""
        return sorted(self._tenants)
