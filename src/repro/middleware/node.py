"""A Slacker node: the per-server migration controller.

"Each server running an instance of Slacker operates a single
server-wide migration controller that migrates MySQL instances on the
server between other servers running Slacker.  In addition to
migrating existing tenants, the middleware is also responsible for
instantiating (or deleting) MySQL instances for new tenants"
(Section 2).

The node owns tenant lifecycle (create/delete), answers control-plane
messages from peers, and runs outgoing migrations — with either a
fixed throttle or the PID-driven dynamic throttle.  For dynamic
migrations the controller's process variable pools the latency of
*all* tenants on the node (and optionally the target node), per
Sections 5.6 and 6.

Failure handling
----------------

The control plane is hardened against an unreliable bus (see
``docs/FAULTS.md``):

* every handler is **idempotent** — duplicate or late control messages
  (the natural consequence of at-least-once delivery under retries)
  are detected and ignored;
* outgoing migrations are bounded: the accept round-trip races a
  timeout (when the bus carries a retry policy), and undeliverable
  requests abort the migration with the tenant rolled back to plain
  ``ACTIVE`` at the source;
* a node can ``crash()`` (fail-stop of the middleware daemon: its
  messages vanish, heartbeats stop, outgoing migrations abort; tenant
  mysqld daemons keep serving — they are separate processes) and later
  ``restart()``;
* a **failure detector** declares peers dead after a configurable
  number of missed heartbeats and cancels in-flight migrations whose
  target is the dead peer (Zephyr semantics: the tenant stays at the
  source).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..control.adaptive import AdaptivePidController
from ..control.pid import PAPER_GAINS, PidGains
from ..control.window import DEFAULT_WINDOW, LatencyWindow
from ..db.engine import DatabaseEngine
from ..db.pages import TableLayout
from ..migration.controller import ControllerConfig, DynamicThrottleController
from ..migration.fluid import FluidMigration
from ..migration.live import LiveMigration, LiveMigrationResult, MigrationAborted
from ..migration.throttle import Throttle
from ..resources.server import Server
from ..resources.units import MB
from ..simulation import Environment, Event, Interrupt, PeriodicTicker, Series, Trace
from .frontend import Frontend
from .protocol import (
    ChunkHandover,
    ChunkOwnership,
    CreateTenantReply,
    CreateTenantRequest,
    DeleteTenantReply,
    DeleteTenantRequest,
    Heartbeat,
    LeaseRenewReply,
    LeaseRenewRequest,
    MigrateTenantAccept,
    MigrateTenantComplete,
    MigrateTenantRequest,
    TenantLocationUpdate,
)
from .tenant import Tenant, TenantRegistry, TenantStatus
from .transport import DeliveryError, MessageBus

__all__ = ["NodeConfig", "SlackerNode"]


@dataclass(frozen=True)
class NodeConfig:
    """Per-node defaults for tenant creation and migration."""

    #: Default buffer pool per tenant, bytes.
    buffer_bytes: int = 128 * MB
    #: Full-speed migration rate (100 % PID output), bytes/second.
    max_migration_rate: float = 32.0 * MB
    #: Migration transfer chunk size, bytes.
    chunk_bytes: int = 4 * MB
    #: PID sliding window, seconds.
    window: float = DEFAULT_WINDOW
    #: PID gains driving dynamic migrations.
    gains: PidGains = PAPER_GAINS
    #: Controller kind: "velocity" (paper) or "adaptive" (Section 6's
    #: drop-in replacement: gains rescaled online by an RLS estimate of
    #: the plant's latency-vs-rate sensitivity).
    controller: str = "velocity"
    #: Plant sensitivity the base gains were tuned for, ms of latency
    #: per percent of max migration rate (adaptive controller only).
    adaptive_reference_gain: float = 40.0
    #: Also pool the target node's latency into the PID input (Section 6).
    throttle_both_ends: bool = False
    #: Floor on the dynamic throttle, percent of max rate (0 = the
    #: paper's behaviour: bursts may pause migration entirely).
    min_output_pct: float = 0.0
    #: How long to wait for a MigrateTenantAccept before aborting,
    #: seconds (only enforced when the bus carries a retry policy — a
    #: fault-free bus answers deterministically).
    accept_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.controller not in ("velocity", "adaptive"):
            raise ValueError(
                f"controller must be 'velocity' or 'adaptive', got {self.controller!r}"
            )
        if self.accept_timeout <= 0:
            raise ValueError(
                f"accept_timeout must be positive, got {self.accept_timeout}"
            )


@dataclass
class NodeStats:
    """Running counters for one node."""

    tenants_created: int = 0
    tenants_deleted: int = 0
    migrations_out: int = 0
    migrations_in: int = 0
    migrations_queued: int = 0
    migrations_aborted: int = 0
    messages_handled: int = 0
    #: Duplicate/late control messages recognised and ignored.
    duplicates_ignored: int = 0
    #: Best-effort sends (replies, heartbeats, completions) that failed.
    notify_failures: int = 0
    crashes: int = 0
    restarts: int = 0
    peers_declared_dead: int = 0
    #: Peers moved to the suspect grace state (one-way silence).
    peers_suspected: int = 0
    #: Ownership leases granted for this node's outgoing migrations.
    leases_acquired: int = 0
    #: Successful lease renewals observed (LeaseRenewReply ok=True).
    lease_renewals: int = 0
    #: Migrations self-fenced because the local lease view expired.
    lease_expired_aborts: int = 0
    #: Protocol frames rejected for carrying a stale fencing token.
    stale_tokens_rejected: int = 0
    completed: list[LiveMigrationResult] = field(default_factory=list)


class SlackerNode:
    """The middleware instance running on one server."""

    def __init__(
        self,
        env: Environment,
        server: Server,
        bus: MessageBus,
        frontend: Frontend,
        config: Optional[NodeConfig] = None,
        trace: Optional[Trace] = None,
    ):
        self.env = env
        self.server = server
        self.bus = bus
        self.frontend = frontend
        self.config = config or NodeConfig()
        self.trace = trace if trace is not None else Trace()
        self.name = server.name
        self.endpoint = bus.endpoint(self.name)
        self.registry = TenantRegistry()
        self.stats = NodeStats()
        #: Optional :class:`~repro.obs.Observability`, set by
        #: ``Observability.attach``; threaded into every migration and
        #: dynamic-throttle controller this node starts.
        self.obs = None
        #: False while the middleware daemon is crashed (fail-stop).
        self.alive = True
        #: Peer directory, set by the cluster after all nodes exist.
        self.peers: dict[str, SlackerNode] = {}
        #: Peers this node's failure detector currently considers dead.
        self.dead_peers: set[str] = set()
        #: Peers in the suspect grace state: silent past the horizon
        #: but not yet long enough to be declared dead (only populated
        #: when the detector runs with ``suspect_grace > 0``).
        self.suspected_peers: set[str] = set()
        #: Optional :class:`~repro.migration.lease.LeaseManager`, wired
        #: by the cluster when leases are enabled; ``None`` keeps every
        #: migration on the token-0 legacy path, bit-identically.
        self.lease_manager = None
        #: Endpoint name lease renewals are sent to.
        self.lease_endpoint_name = "controller"
        #: When False the node skips *all* self-fencing — the
        #: pre-handover fence gate and the lease-expiry self-abort — a
        #: deliberately broken configuration that exists so the chaos
        #: fuzzer can prove the invariant suite catches the violation.
        self.fencing_enabled = True
        #: tenant_id -> newest fencing token seen (receiver-side
        #: staleness floor; survives lease release).
        self._fence_tokens: dict[int, int] = {}
        #: tenant_id -> this node's *local* view of its lease expiry,
        #: advanced only by LeaseRenewReply messages — never by peeking
        #: at the controller's live table (a partitioned node must act
        #: on its own stale knowledge; that is what self-fencing means).
        self._lease_expiry: dict[int, float] = {}
        #: tenant_id -> fencing token of this node's in-flight
        #: outgoing migration.
        self._lease_tokens: dict[int, int] = {}
        #: tenant_id -> in-flight *outgoing* LiveMigration (or
        #: FluidMigration — same abort/target_server surface).
        self.active_migrations: dict[int, LiveMigration] = {}
        #: Most recent outgoing FluidMigration (kept past completion so
        #: chaos harnesses can audit its chunk-ownership invariants).
        self.last_fluid_migration: Optional[FluidMigration] = None
        #: tenant_id -> (version, node, port) from TenantLocationUpdate
        #: frames (the node's subscriber-side routing cache).
        self.tenant_locations: dict[int, tuple] = {}
        #: (tenant_id, chunk_index) -> node from ChunkOwnership frames.
        self.chunk_locations: dict[tuple, str] = {}
        #: tenant_id -> chunk indices announced via ChunkHandover.
        self.chunk_handovers: dict[int, set] = {}
        #: tenant_id -> latency Series attached by workload clients.
        self._latency_series: dict[int, Series] = {}
        self._pending_accepts: dict[int, Event] = {}
        #: Last heartbeat received from each peer.
        self.peer_loads: dict[str, Heartbeat] = {}
        self._peer_last_seen: dict[str, float] = {}
        self._migration_queue: list = []
        self._migration_worker_running = False
        self._heartbeat_interval: Optional[float] = None
        self._detector_interval: Optional[float] = None
        self._last_disk_busy = 0.0
        self._last_heartbeat_at = 0.0
        #: Events parked periodic loops wait on while this node is
        #: crashed; ``restart()`` fires them (see _heartbeat_loop).
        self._restart_waiters: list[Event] = []
        self._dispatcher = env.process(self._dispatch_loop())

    # -- tenant lifecycle ------------------------------------------------------

    def create_tenant(
        self,
        tenant_id: int,
        data_bytes: int,
        buffer_bytes: Optional[int] = None,
    ) -> Tenant:
        """Instantiate a new tenant daemon on this node."""
        layout = TableLayout.for_data_size(data_bytes)
        engine = DatabaseEngine(
            self.env,
            self.server,
            layout,
            name=f"tenant-{tenant_id}@{self.name}",
            buffer_bytes=buffer_bytes or self.config.buffer_bytes,
        )
        tenant = Tenant(tenant_id=tenant_id, engine=engine, node=self.name)
        self.registry.add(tenant)
        self.frontend.update_location(tenant_id, self.name)
        self.stats.tenants_created += 1
        return tenant

    def delete_tenant(self, tenant_id: int) -> None:
        """Stop a tenant's daemon and delete its data directory."""
        tenant = self.registry.remove(tenant_id)
        tenant.engine.stop()
        tenant.status = TenantStatus.DELETED
        self.frontend.remove(tenant_id)
        self.stats.tenants_deleted += 1

    def adopt_tenant(self, tenant: Tenant, engine: DatabaseEngine) -> None:
        """Take over an incoming tenant at migration handover."""
        tenant.engine = engine
        tenant.status = TenantStatus.ACTIVE
        self.registry.add(tenant)
        self.stats.migrations_in += 1

    def attach_latency_series(self, tenant_id: int, series: Series) -> None:
        """Register a workload client's latency series for PID input."""
        if tenant_id not in self.registry:
            raise KeyError(f"no tenant {tenant_id} on node {self.name}")
        self._latency_series[tenant_id] = series

    def detach_latency_series(self, tenant_id: int) -> None:
        """Remove a tenant's latency series (tenant moved or deleted)."""
        self._latency_series.pop(tenant_id, None)

    def latency_series(self) -> list[Series]:
        """All latency series attached to tenants on this node."""
        return [
            self._latency_series[tid]
            for tid in sorted(self._latency_series)
            if tid in self.registry
        ]

    # -- crash / restart -------------------------------------------------------

    def crash(self, reason: str = "") -> None:
        """Fail-stop the middleware daemon.

        Heartbeats stop, the bus drops this node's messages (via the
        fault injector's ``is_down``), and every in-flight *outgoing*
        migration aborts — the tenant stays at the source.  Tenant
        engines keep serving: mysqld is a separate process from the
        Slacker daemon.  Idempotent.
        """
        if not self.alive:
            return
        self.alive = False
        self.stats.crashes += 1
        why = reason or f"node {self.name} crashed"
        for migration in list(self.active_migrations.values()):
            migration.try_abort(why)

    def restart(self) -> None:
        """Bring a crashed middleware daemon back.  Idempotent.

        Peers get a fresh grace period so the failure detector does not
        instantly re-declare them dead from stale timestamps.
        """
        if self.alive:
            return
        self.alive = True
        self.stats.restarts += 1
        now = self.env.now
        for peer in self.peers:
            self._peer_last_seen[peer] = now
        # Wake periodic loops parked during the crash window.
        waiters, self._restart_waiters = self._restart_waiters, []
        for event in waiters:
            event.succeed()

    # -- migration --------------------------------------------------------------

    def migrate_tenant(
        self,
        tenant_id: int,
        target: str,
        setpoint: Optional[float] = None,
        fixed_rate: Optional[float] = None,
        max_rate: Optional[float] = None,
        chunks: Optional[int] = None,
    ):
        """Process: migrate a tenant to the named peer node.

        Exactly one of ``setpoint`` (dynamic PID throttle, seconds) or
        ``fixed_rate`` (bytes/second) must be given.  With ``chunks``
        set the data plane is a :class:`FluidMigration` (per-chunk
        handovers, dual-resident routing) instead of a single-handover
        :class:`LiveMigration`.  Returns the migration result; raises
        :class:`MigrationAborted` when the migration is cancelled
        (undeliverable request, accept timeout, dead target, injected
        abort, ...), in which case the tenant is back to plain
        ``ACTIVE`` at the source.
        """
        if (setpoint is None) == (fixed_rate is None):
            raise ValueError("give exactly one of setpoint or fixed_rate")
        if chunks is not None and chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        if not self.alive:
            raise RuntimeError(f"node {self.name} is down")
        tenant = self.registry.get(tenant_id)
        if target not in self.peers:
            raise KeyError(f"unknown peer node {target!r}")
        if target in self.dead_peers:
            self.stats.migrations_aborted += 1
            raise MigrationAborted(f"target node {target} is marked dead")
        peer = self.peers[target]
        tenant.status = TenantStatus.MIGRATING_OUT

        # Ownership lease: grant before any protocol frame leaves, so
        # every message of this migration carries the fencing token.
        # The grant is a local call (the controller initiates the
        # migration, so it trivially reaches itself); *renewals* cross
        # the bus and are what partitions starve.
        token = 0
        if self.lease_manager is not None:
            lease = self.lease_manager.grant(tenant_id, self.name, target)
            token = lease.token
            self._lease_tokens[tenant_id] = token
            self._lease_expiry[tenant_id] = lease.expires_at
            self.stats.leases_acquired += 1

        # Control plane: ask the target to accept the tenant.
        accept_event = self.env.event()
        self._pending_accepts[tenant_id] = accept_event
        request = MigrateTenantRequest(
            tenant_id=tenant_id,
            target_node=target,
            setpoint=setpoint or 0.0,
            fixed_rate=fixed_rate or 0.0,
            token=token,
            chunks=chunks or 0,
        )
        try:
            yield self.env.process(self.endpoint.send(target, request))
        except DeliveryError as exc:
            self._abandon_request(tenant, f"migrate request undeliverable: {exc}")
        if self.bus.retry_policy is None:
            # Fault-free bus: the accept is deterministic, no timeout
            # needed (and no extra events on the legacy fast path).
            yield accept_event
        else:
            deadline = self.env.timeout(self.config.accept_timeout)
            yield self.env.any_of([accept_event, deadline])
            if not accept_event.triggered:
                self._abandon_request(
                    tenant,
                    f"no accept from {target} within {self.config.accept_timeout}s",
                )
        accept = accept_event.value
        if accept is not None and not accept.ok:
            # The target refused — on the legacy path accepts are
            # always ok=True, so this only fires under fencing.
            self._abandon_request(
                tenant, f"{target} refused migrate request (stale fencing token)"
            )

        # Data plane: throttled live migration.  The fence gate runs on
        # this node's *local* lease knowledge immediately before the
        # handover point of no return.
        fence = None
        if self.lease_manager is not None and self.fencing_enabled:
            fence = lambda: self.env.now < self._lease_expiry.get(tenant_id, 0.0)
        throttle = Throttle(self.env, rate=fixed_rate or 0.0)
        source_engine = tenant.engine
        if chunks:
            migration = FluidMigration(
                self.env,
                source_engine,
                peer.server,
                throttle,
                num_chunks=chunks,
                chunk_bytes=self.config.chunk_bytes,
                on_handover=lambda engine: self._handover(tenant, peer, engine),
                fence=fence,
                token=token,
                obs=self.obs,
            )
            migration.on_chunk_flip = self._chunk_flip_notifier(
                migration, tenant_id, target, token
            )
            self.last_fluid_migration = migration
            # Dual-resident window opens: requests route per chunk.
            tenant.engine = migration.router
            self.frontend.begin_chunked(tenant_id, migration.num_chunks, self.name)
        else:
            migration = LiveMigration(
                self.env,
                source_engine,
                peer.server,
                throttle,
                chunk_bytes=self.config.chunk_bytes,
                on_handover=lambda engine: self._handover(tenant, peer, engine),
                fence=fence,
                obs=self.obs,
            )
        self.active_migrations[tenant_id] = migration
        migration_proc = self.env.process(migration.run())
        renew_proc = None
        if self.lease_manager is not None:
            renew_proc = self.env.process(
                self._lease_renew_loop(tenant_id, token, migration)
            )

        controller = None
        if setpoint is not None:
            series_list = self.latency_series()
            if not series_list:
                # No workload telemetry attached: assume zero observed
                # latency, so the controller ramps to full speed (an
                # unmonitored tenant cannot report interference).
                series_list = [Series(f"{self.name}:no-signal")]
            windows = [
                LatencyWindow(
                    series_list, window=self.config.window, initial_value=0.0
                )
            ]
            if self.config.throttle_both_ends and peer.latency_series():
                windows.append(
                    LatencyWindow(peer.latency_series(), window=self.config.window)
                )
            pid = None
            if self.config.controller == "adaptive":
                pid = AdaptivePidController(
                    self.config.gains,
                    setpoint=setpoint * 1000.0,  # controller works in ms
                    reference_gain=self.config.adaptive_reference_gain,
                )
            controller = DynamicThrottleController(
                self.env,
                throttle,
                windows,
                ControllerConfig(
                    setpoint=setpoint,
                    max_rate=max_rate or self.config.max_migration_rate,
                    gains=self.config.gains,
                    window=self.config.window,
                    min_output_pct=self.config.min_output_pct,
                    combine="max" if len(windows) > 1 else "mean",
                ),
                controller=pid,
                trace=self.trace,
                name=f"{self.name}:mig-{tenant_id}",
                obs=self.obs,
            )
            self.env.process(controller.run(until=migration_proc))

        try:
            result = yield migration_proc
            if chunks:
                # Single-homed again: the handover installed the target
                # engine; the per-chunk directory window closes.
                self.frontend.end_chunked(tenant_id)
        except MigrationAborted:
            # The migration rolled the engines back; restore the
            # control-plane view: the tenant is plain ACTIVE here.
            if chunks:
                if tenant.engine is migration.router:
                    tenant.engine = source_engine
                self.frontend.end_chunked(tenant_id)
            if tenant_id in self.registry:
                tenant.status = TenantStatus.ACTIVE
            self.stats.migrations_aborted += 1
            raise
        finally:
            self.active_migrations.pop(tenant_id, None)
            throttle.stop()
            if controller is not None:
                controller.stop()
            if renew_proc is not None and renew_proc.is_alive:
                renew_proc.interrupt("migration finished")
            if self.lease_manager is not None:
                # Completed or rolled back, the lease is over either
                # way; the fencing-token floor stays behind so stale
                # frames from this attempt keep bouncing.
                self.lease_manager.release(tenant_id, token)
                self._lease_tokens.pop(tenant_id, None)
                self._lease_expiry.pop(tenant_id, None)

        # Tell the target (and any observer) the migration finished.
        # Best-effort: the handover already happened, so a lost
        # completion report must not fail the migration.
        complete = MigrateTenantComplete(
            tenant_id=tenant_id,
            duration=result.duration,
            downtime=result.downtime,
            bytes_moved=result.total_bytes,
            token=token,
        )
        yield from self._send_tolerant(target, complete)
        self.stats.migrations_out += 1
        self.stats.completed.append(result)
        return result

    def _chunk_flip_notifier(
        self, migration: FluidMigration, tenant_id: int, target: str, token: int
    ):
        """Build the per-chunk-flip hook a fluid migration runs.

        Runs on the migration path right after each ownership flip:
        records the new owner in the frontend's per-chunk map (which
        broadcasts ``ChunkOwnership`` to subscribers) and announces the
        handover to the target node.  The announcement is best-effort —
        ownership already committed in the source-side chunk map, and a
        partition here starves lease renewals (aborting the migration)
        rather than losing a flip.
        """

        def notify(chunk_index: int, delta_bytes: int):
            self.frontend.update_chunk_location(
                tenant_id, chunk_index, target, token=token
            )
            handover = ChunkHandover(
                tenant_id=tenant_id,
                chunk_index=chunk_index,
                num_chunks=migration.num_chunks,
                delta_bytes=delta_bytes,
                token=token,
            )
            yield from self._send_tolerant(target, handover)

        return notify

    def _abandon_request(self, tenant: Tenant, reason: str):
        """Roll back a migration that died before the data plane started."""
        tenant_id = tenant.tenant_id
        self._pending_accepts.pop(tenant_id, None)
        if self.lease_manager is not None and tenant_id in self._lease_tokens:
            self.lease_manager.release(tenant_id, self._lease_tokens[tenant_id])
            self._lease_tokens.pop(tenant_id, None)
            self._lease_expiry.pop(tenant_id, None)
        tenant.status = TenantStatus.ACTIVE
        self.stats.migrations_aborted += 1
        raise MigrationAborted(reason)

    def _handover(self, tenant: Tenant, peer: "SlackerNode", engine) -> None:
        """Swap authority to the target engine (runs at handover time).

        Idempotent: a duplicate handover signal (late/duplicated
        control message, re-entered callback) finds the tenant already
        moved and does nothing.
        """
        if tenant.tenant_id not in self.registry:
            self.stats.duplicates_ignored += 1
            return
        if self.lease_manager is not None:
            # Audit hook: report this commit against the controller's
            # ground-truth lease table.  A correctly fenced node never
            # reaches here with an expired/superseded token — the chaos
            # fuzzer's invariant suite checks exactly that.
            self.lease_manager.record_commit(
                tenant.tenant_id, self._lease_tokens.get(tenant.tenant_id, 0)
            )
        self.registry.remove(tenant.tenant_id)
        self.detach_latency_series(tenant.tenant_id)
        tenant.record_move(self.env.now, self.name, peer.name)
        peer.adopt_tenant(tenant, engine)
        self.frontend.update_location(tenant.tenant_id, peer.name)

    # -- leases and fencing ----------------------------------------------------

    def check_fence(self, tenant_id: int, token: int) -> bool:
        """Receiver-side staleness check for a frame's fencing token.

        Token 0 is the unfenced legacy path and always passes.  A token
        older than the newest this node has seen for the tenant is a
        write from a superseded owner: rejected.  Newer tokens advance
        the floor.
        """
        if token == 0:
            return True
        if token < self._fence_tokens.get(tenant_id, 0):
            self.stats.stale_tokens_rejected += 1
            return False
        self._fence_tokens[tenant_id] = token
        return True

    def _lease_renew_loop(self, tenant_id: int, token: int, migration) -> object:
        """Process: keep the migration's lease renewed; self-fence on expiry.

        The cadence leaves ttl/3 headroom, so one lost renewal round
        trip is survivable but a real partition is not.  Expiry is
        judged on the node's *local* ``_lease_expiry`` view — the whole
        point is that a node cut off from the controller must abort on
        its own, before its stale ownership can do damage.
        """
        env = self.env
        period = self.lease_manager.ttl / 3.0
        try:
            while True:
                # Eager on purpose: each renewal send consumes sim time
                # (NIC + fault delays), so wakes drift like heartbeats.
                yield env.timeout(period)  # slackerlint: disable=SLK011
                if not self.alive or tenant_id not in self.active_migrations:
                    return
                if self.fencing_enabled and env.now >= self._lease_expiry.get(
                    tenant_id, 0.0
                ):
                    self.stats.lease_expired_aborts += 1
                    migration.try_abort(
                        f"ownership lease for tenant {tenant_id} expired"
                    )
                    return
                request = LeaseRenewRequest(
                    tenant_id=tenant_id, token=token, node=self.name
                )
                yield from self._send_tolerant(self.lease_endpoint_name, request)
        except Interrupt:
            return

    def enqueue_migration(
        self,
        tenant_id: int,
        target: str,
        setpoint: Optional[float] = None,
        fixed_rate: Optional[float] = None,
    ) -> Event:
        """Queue a migration; returns an event firing with its result.

        Concurrent migrations from one server would each consume the
        slack the other's controller is trying to discover, so the node
        serializes them: one data stream at a time, strictly FIFO.
        """
        if (setpoint is None) == (fixed_rate is None):
            raise ValueError("give exactly one of setpoint or fixed_rate")
        self.registry.get(tenant_id)  # fail fast on unknown tenants
        done = Event(self.env)
        self._migration_queue.append((tenant_id, target, setpoint, fixed_rate, done))
        self.stats.migrations_queued += 1
        if not self._migration_worker_running:
            self._migration_worker_running = True
            self.env.process(self._migration_worker())
        return done

    @property
    def queued_migrations(self) -> int:
        """Migrations waiting for (or holding) the single outbound slot."""
        return len(self._migration_queue)

    def _migration_worker(self):
        while self._migration_queue:
            tenant_id, target, setpoint, fixed_rate, done = self._migration_queue[0]
            try:
                result = yield self.env.process(
                    self.migrate_tenant(
                        tenant_id, target, setpoint=setpoint, fixed_rate=fixed_rate
                    )
                )
            except Exception as exc:  # surface the failure to the caller
                done.fail(exc)
            else:
                done.succeed(result)
            self._migration_queue.pop(0)
        self._migration_worker_running = False

    # -- heartbeats and failure detection -----------------------------------------

    def start_heartbeats(self, interval: float = 10.0) -> None:
        """Begin broadcasting periodic load reports to every peer.

        Each heartbeat carries the tenant count and the disk
        utilization over the last interval — the raw inputs a remote
        placement policy needs.  Heartbeats double as the liveness
        signal the failure detector consumes; a crashed node stops
        beating until restarted.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if self._heartbeat_interval is not None:
            raise RuntimeError(f"node {self.name} is already heartbeating")
        self._heartbeat_interval = interval
        self.env.process(self._heartbeat_loop())

    def current_heartbeat(self) -> Heartbeat:
        """Build this node's load report for the last interval."""
        now = self.env.now
        busy = self.server.disk.stats.busy_time
        span = now - self._last_heartbeat_at
        utilization = (busy - self._last_disk_busy) / span if span > 0 else 0.0
        self._last_disk_busy = busy
        self._last_heartbeat_at = now
        return Heartbeat(
            node=self.name,
            tenant_count=len(self.registry),
            disk_utilization=min(1.0, max(0.0, utilization)),
        )

    def _parked_until_restart(self) -> Event:
        """Event a periodic loop waits on while the node is crashed."""
        event = self.env.event()
        self._restart_waiters.append(event)
        return event

    def _heartbeat_loop(self):
        # NOT a fixed tick grid while alive: the interval is measured
        # from *send completion*, and delivering a heartbeat consumes
        # simulated time (network latency, fault delays), so each wake
        # drifts by however long the sends took and the eager timeout
        # is the correct form.  Crash windows ARE periodic — a dead
        # node sends nothing, so its wakes chain exactly from the wake
        # that found it dead — and there the loop parks on the restart
        # signal and rejoins that chain via PeriodicTicker instead of
        # waking every interval only to `continue`.
        env = self.env
        interval = self._heartbeat_interval
        while True:
            yield env.timeout(interval)  # slackerlint: disable=SLK011
            while not self.alive:
                # Anchored at this wake: next_time is exactly where the
                # eager loop's next (no-op) wake would have landed.
                ticker = PeriodicTicker(env, interval)
                yield self._parked_until_restart()
                # Beats that fell inside the crash window never happen;
                # a wake exactly at the restart time still fires (the
                # restart event precedes it in same-time event order).
                ticker.skip_until(env.now)
                yield ticker.tick()
            beat = self.current_heartbeat()
            for peer in self.peers:
                yield from self._send_tolerant(peer, beat)

    def start_failure_detector(
        self,
        interval: float = 1.0,
        miss_threshold: float = 3.0,
        suspect_grace: float = 0.0,
    ) -> None:
        """Watch peer heartbeats; a silence longer than ``interval *
        miss_threshold`` seconds declares the peer dead and cancels
        in-flight migrations targeting it (the tenant stays at the
        source).  Recovered peers (a fresh heartbeat) are un-declared.

        ``suspect_grace`` (seconds) inserts a *suspect* state between
        healthy and dead: a peer past the silence horizon is only
        suspected (``suspected_peers``; no migrations cancelled) until
        the silence also exceeds ``horizon + suspect_grace`` — so one
        one-way partition window doesn't instantly kill migrations
        that would have survived it.  The default ``0.0`` runs the
        original two-state detector on an unchanged event path
        (bit-identity locked by tests).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if miss_threshold <= 0:
            raise ValueError(f"miss_threshold must be positive, got {miss_threshold}")
        if suspect_grace < 0:
            raise ValueError(f"suspect_grace must be >= 0, got {suspect_grace}")
        if self._detector_interval is not None:
            raise RuntimeError(f"node {self.name} already runs a failure detector")
        self._detector_interval = interval
        self.env.process(
            self._failure_detector_loop(interval, miss_threshold, suspect_grace)
        )

    def _failure_detector_loop(
        self, interval: float, miss_threshold: float, suspect_grace: float = 0.0
    ):
        now = self.env.now
        for peer in self.peers:
            self._peer_last_seen.setdefault(peer, now)
        horizon = interval * miss_threshold
        peer_names = sorted(self.peers)
        # Coalesced: no peer can newly exceed the silence horizon before
        # the first grid tick past the earliest deadline, and heartbeats
        # only push deadlines later, so sleeping straight to that tick
        # and rescanning is exact.  Two situations force per-tick
        # polling semantics back on: declared-dead peers (a recovery
        # must be noticed at the very next grid tick) and the scan
        # itself, which always runs with the eager loop's comparisons.
        ticker = PeriodicTicker(self.env, interval)
        while True:
            if (
                self.alive
                and peer_names
                and not self.dead_peers
                and not self.suspected_peers
            ):
                # Earliest tick at which the quietest peer's silence
                # could exceed the horizon, probed with the scan's own
                # float predicate (t - last > horizon) tick by tick so
                # no algebraic rearrangement can shift the wake tick.
                quietest = min(
                    self._peer_last_seen.get(peer, 0.0) for peer in peer_names
                )
                ticks = 1
                t = ticker.next_time
                while not (t - quietest > horizon):
                    t += interval
                    ticks += 1
                if ticks > 1:
                    ticker.skip(ticks - 1)
            yield ticker.tick()
            if not self.alive:
                yield self._parked_until_restart()
                ticker.skip_until(self.env.now)
                continue
            if suspect_grace > 0.0:
                for peer in peer_names:
                    silent = self.env.now - self._peer_last_seen.get(peer, 0.0)
                    if silent > horizon + suspect_grace:
                        self.suspected_peers.discard(peer)
                        if peer not in self.dead_peers:
                            self.dead_peers.add(peer)
                            self.stats.peers_declared_dead += 1
                            self._cancel_migrations_to(peer)
                    elif silent > horizon:
                        if (
                            peer not in self.suspected_peers
                            and peer not in self.dead_peers
                        ):
                            self.suspected_peers.add(peer)
                            self.stats.peers_suspected += 1
                    else:
                        self.suspected_peers.discard(peer)
                        self.dead_peers.discard(peer)
                continue
            # Legacy two-state scan, byte-for-byte the original
            # comparisons (the flag-off path is bit-identity locked).
            for peer in peer_names:
                silent = self.env.now - self._peer_last_seen.get(peer, 0.0)
                if silent > horizon:
                    if peer not in self.dead_peers:
                        self.dead_peers.add(peer)
                        self.stats.peers_declared_dead += 1
                        self._cancel_migrations_to(peer)
                else:
                    self.dead_peers.discard(peer)

    def _cancel_migrations_to(self, peer: str) -> None:
        for migration in list(self.active_migrations.values()):
            if migration.target_server.name == peer:
                migration.try_abort(f"target node {peer} declared dead")

    # -- control-plane dispatcher ------------------------------------------------

    def _send_tolerant(self, recipient: str, message) -> object:
        """Sub-generator: best-effort send; delivery failures are counted,
        not raised (replies, heartbeats, completion reports)."""
        proc = self.env.process(self.endpoint.send(recipient, message))
        try:
            yield proc
        except DeliveryError:
            self.stats.notify_failures += 1

    def _dispatch_loop(self):
        while True:
            envelope = yield self.endpoint.receive()
            self.stats.messages_handled += 1
            message = envelope.message
            if isinstance(message, CreateTenantRequest):
                if message.tenant_id in self.registry:
                    # Duplicate create (retried request): answer with
                    # the existing tenant instead of crashing.
                    self.stats.duplicates_ignored += 1
                    tenant = self.registry.get(message.tenant_id)
                else:
                    tenant = self.create_tenant(
                        message.tenant_id, message.data_bytes, message.buffer_bytes
                    )
                reply = CreateTenantReply(
                    tenant_id=tenant.tenant_id, port=tenant.port, ok=True
                )
                yield from self._send_tolerant(envelope.sender, reply)
            elif isinstance(message, DeleteTenantRequest):
                ok = message.tenant_id in self.registry
                if ok:
                    self.delete_tenant(message.tenant_id)
                else:
                    self.stats.duplicates_ignored += 1
                reply = DeleteTenantReply(tenant_id=message.tenant_id, ok=ok)
                yield from self._send_tolerant(envelope.sender, reply)
            elif isinstance(message, MigrateTenantRequest):
                # A peer announcing an incoming tenant: agree to receive
                # unless the frame carries a stale fencing token.
                # Re-sending an accept for a duplicate request is safe:
                # the source ignores accepts with no pending migration.
                ok = self.check_fence(message.tenant_id, message.token)
                accept = MigrateTenantAccept(
                    tenant_id=message.tenant_id, ok=ok, token=message.token
                )
                yield from self._send_tolerant(envelope.sender, accept)
            elif isinstance(message, MigrateTenantAccept):
                pending = self._pending_accepts.pop(message.tenant_id, None)
                if pending is not None and not pending.triggered:
                    pending.succeed(message)
                else:
                    # Late or duplicated accept: the migration already
                    # started (or timed out and was rolled back).
                    self.stats.duplicates_ignored += 1
            elif isinstance(message, MigrateTenantComplete):
                # Informational — but a completion under a stale token
                # is a superseded owner claiming a handover: reject it
                # (check_fence counts the rejection) rather than let it
                # shadow the live migration's bookkeeping.
                self.check_fence(message.tenant_id, message.token)
            elif isinstance(message, TenantLocationUpdate):
                # Subscriber-side routing cache.  Versions are monotonic
                # per tenant; an older (reordered or re-synced) frame
                # must not roll the cache back to a stale location.
                known = self.tenant_locations.get(message.tenant_id)
                if known is not None and message.version < known[0]:
                    self.stats.duplicates_ignored += 1
                else:
                    self.tenant_locations[message.tenant_id] = (
                        message.version,
                        message.node,
                        message.port,
                    )
            elif isinstance(message, ChunkHandover):
                # Target-side record of a fluid chunk flip.  A stale
                # fencing token is a superseded migration still talking:
                # rejected (and counted) by check_fence.
                if self.check_fence(message.tenant_id, message.token):
                    seen = self.chunk_handovers.setdefault(message.tenant_id, set())
                    if message.chunk_index in seen:
                        self.stats.duplicates_ignored += 1
                    else:
                        seen.add(message.chunk_index)
            elif isinstance(message, ChunkOwnership):
                # Subscriber-side per-chunk routing cache (the fluid
                # analogue of the TenantLocationUpdate arm above).
                if self.check_fence(message.tenant_id, message.token):
                    self.chunk_locations[
                        (message.tenant_id, message.chunk_index)
                    ] = message.node
            elif isinstance(message, Heartbeat):
                self.peer_loads[message.node] = message
                self._peer_last_seen[message.node] = self.env.now
            elif isinstance(message, LeaseRenewReply):
                if (
                    message.ok
                    and message.token == self._lease_tokens.get(message.tenant_id)
                ):
                    self._lease_expiry[message.tenant_id] = message.expires_at
                    self.stats.lease_renewals += 1
                else:
                    # Refused renewal, or a late reply for a finished
                    # (or superseded) migration: never *extend* local
                    # knowledge from it.
                    self.stats.duplicates_ignored += 1
            elif isinstance(message, LeaseRenewRequest):
                # Misrouted renewal (only the controller answers these).
                self.stats.duplicates_ignored += 1
            elif isinstance(message, (CreateTenantReply, DeleteTenantReply)):
                # Replies are normally consumed by the requesting client
                # endpoint; one reaching a node's own mailbox is a late
                # or duplicated delivery after a retry switched ports.
                self.stats.duplicates_ignored += 1
