"""Wire protocol for Slacker control messages.

"Communication between Slacker migration controllers occurs in a
peer-to-peer fashion using a simple format based on Google's protocol
buffers" (Section 2.2).  Protobuf itself is not available offline, so
this module implements the relevant subset of its wire format from
scratch: varint-encoded tags and values, length-delimited strings, and
64-bit fixed-width floats, with messages declared as dataclasses whose
fields carry protobuf-style field numbers.

The encoding is the real protobuf wire format for the types used, so a
message round-trips byte-for-byte through :func:`encode_message` /
:func:`decode_message`, and unknown fields are skipped on decode (the
standard forward-compatibility behaviour).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Type, TypeVar

__all__ = [
    "ProtocolError",
    "encode_varint",
    "decode_varint",
    "zigzag_encode",
    "zigzag_decode",
    "encode_message",
    "decode_message",
    "MESSAGE_REGISTRY",
    "CreateTenantRequest",
    "CreateTenantReply",
    "DeleteTenantRequest",
    "DeleteTenantReply",
    "MigrateTenantRequest",
    "MigrateTenantAccept",
    "MigrateTenantComplete",
    "TenantLocationUpdate",
    "Heartbeat",
    "LeaseRenewRequest",
    "LeaseRenewReply",
    "ChunkHandover",
    "ChunkOwnership",
]

T = TypeVar("T")

#: Wire types (protobuf-compatible numbering).
_WIRE_VARINT = 0
_WIRE_FIXED64 = 1
_WIRE_BYTES = 2


class ProtocolError(Exception):
    """Raised on malformed or unknown wire data."""


# -- primitive codecs ---------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise ValueError(f"varints encode non-negative ints, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ProtocolError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ProtocolError("varint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed int to unsigned (protobuf sint encoding)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def _encode_field(number: int, value: Any) -> bytes:
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        tag = encode_varint(number << 3 | _WIRE_VARINT)
        return tag + encode_varint(zigzag_encode(value))
    if isinstance(value, float):
        tag = encode_varint(number << 3 | _WIRE_FIXED64)
        return tag + struct.pack("<d", value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        tag = encode_varint(number << 3 | _WIRE_BYTES)
        return tag + encode_varint(len(payload)) + payload
    if isinstance(value, bytes):
        tag = encode_varint(number << 3 | _WIRE_BYTES)
        return tag + encode_varint(len(value)) + value
    raise ProtocolError(f"unsupported field type {type(value).__name__}")


def _skip_field(wire_type: int, data: bytes, offset: int, end: int) -> int:
    if wire_type == _WIRE_VARINT:
        _, offset = decode_varint(data, offset)
        return offset
    if wire_type == _WIRE_FIXED64:
        if offset + 8 > end:
            raise ProtocolError("truncated fixed64 field")
        return offset + 8
    if wire_type == _WIRE_BYTES:
        length, offset = decode_varint(data, offset)
        if offset + length > end:
            raise ProtocolError("truncated length-delimited field")
        return offset + length
    raise ProtocolError(f"unsupported wire type {wire_type}")


# -- message layer ------------------------------------------------------------

#: msg_id -> message class, populated by :func:`register_message`.
MESSAGE_REGISTRY: dict[int, Type] = {}


def register_message(cls: Type[T]) -> Type[T]:
    """Class decorator: validate field numbers and add to the registry."""
    msg_id = getattr(cls, "MSG_ID", None)
    if not isinstance(msg_id, int) or msg_id <= 0:
        raise ProtocolError(f"{cls.__name__} needs a positive integer MSG_ID")
    if msg_id in MESSAGE_REGISTRY:
        raise ProtocolError(
            f"MSG_ID {msg_id} already used by {MESSAGE_REGISTRY[msg_id].__name__}"
        )
    numbers = [f.metadata["field_number"] for f in fields(cls)]
    if len(set(numbers)) != len(numbers):
        raise ProtocolError(f"{cls.__name__} has duplicate field numbers")
    MESSAGE_REGISTRY[msg_id] = cls
    return cls


def pfield(number: int, default: Any = None, omit_default: bool = False) -> Any:
    """Declare a protocol field with the given wire field number.

    With ``omit_default=True`` the field is left off the wire when its
    value equals ``default`` (protobuf proto3 semantics — the decoder
    already fills absent fields from dataclass defaults).  This is how
    fields are added to existing messages without changing the encoded
    bytes of old-style frames: a default-valued field costs zero wire
    bytes, so NIC transfer timing — and therefore whole-run
    trajectories — stay bit-identical until someone actually sets it.
    """
    from dataclasses import field as dc_field

    if number <= 0:
        raise ProtocolError(f"field numbers must be positive, got {number}")
    metadata: dict[str, Any] = {"field_number": number}
    if omit_default:
        if default is None:
            raise ProtocolError("omit_default requires an explicit default")
        metadata["omit_value"] = default
    if default is None:
        return dc_field(metadata=metadata)
    return dc_field(default=default, metadata=metadata)


def encode_message(message: Any) -> bytes:
    """Serialize a registered message: MSG_ID varint + field payload."""
    cls = type(message)
    if getattr(cls, "MSG_ID", None) not in MESSAGE_REGISTRY:
        raise ProtocolError(f"{cls.__name__} is not a registered message")
    body = bytearray()
    for f in fields(cls):
        value = getattr(message, f.name)
        meta = f.metadata
        if "omit_value" in meta and value == meta["omit_value"]:
            continue
        body += _encode_field(meta["field_number"], value)
    return encode_varint(cls.MSG_ID) + encode_varint(len(body)) + bytes(body)


def decode_message(data: bytes, offset: int = 0) -> tuple[Any, int]:
    """Deserialize one message at ``offset``; returns (message, next_offset)."""
    msg_id, offset = decode_varint(data, offset)
    cls = MESSAGE_REGISTRY.get(msg_id)
    if cls is None:
        raise ProtocolError(f"unknown MSG_ID {msg_id}")
    length, offset = decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise ProtocolError("truncated message body")

    by_number = {f.metadata["field_number"]: f for f in fields(cls)}
    values: dict[str, Any] = {}
    while offset < end:
        key, offset = decode_varint(data, offset)
        number, wire_type = key >> 3, key & 0x7
        f = by_number.get(number)
        if f is None:
            offset = _skip_field(wire_type, data, offset, end)
            continue
        if wire_type == _WIRE_VARINT:
            raw, offset = decode_varint(data, offset)
            decoded: Any = zigzag_decode(raw)
            if f.type in ("bool", bool):
                decoded = bool(decoded)
            values[f.name] = decoded
        elif wire_type == _WIRE_FIXED64:
            if offset + 8 > end:
                raise ProtocolError("truncated fixed64 field")
            values[f.name] = struct.unpack_from("<d", data, offset)[0]
            offset += 8
        elif wire_type == _WIRE_BYTES:
            blen, offset = decode_varint(data, offset)
            if offset + blen > end:
                raise ProtocolError("truncated length-delimited field")
            payload = data[offset : offset + blen]
            offset += blen
            if f.type in ("bytes", bytes):
                values[f.name] = payload
            else:
                try:
                    values[f.name] = payload.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise ProtocolError(f"invalid utf-8 in field {f.name}") from exc
        else:
            raise ProtocolError(f"unsupported wire type {wire_type}")
    if offset != end:
        raise ProtocolError("message body length mismatch")
    try:
        return cls(**values), end
    except TypeError as exc:
        # A syntactically valid frame may still miss required fields.
        raise ProtocolError(f"incomplete {cls.__name__}: {exc}") from exc


# -- concrete control-plane messages -----------------------------------------


@register_message
@dataclass(frozen=True)
class CreateTenantRequest:
    """Ask a node to instantiate a new tenant daemon."""

    MSG_ID: ClassVar[int] = 1
    tenant_id: int = pfield(1)
    data_bytes: int = pfield(2)
    buffer_bytes: int = pfield(3)


@register_message
@dataclass(frozen=True)
class CreateTenantReply:
    """Node's answer to a create request."""

    MSG_ID: ClassVar[int] = 2
    tenant_id: int = pfield(1)
    port: int = pfield(2)
    ok: bool = pfield(3, default=True)


@register_message
@dataclass(frozen=True)
class DeleteTenantRequest:
    """Ask a node to stop a tenant and delete its data directory."""

    MSG_ID: ClassVar[int] = 3
    tenant_id: int = pfield(1)


@register_message
@dataclass(frozen=True)
class DeleteTenantReply:
    """Node's answer to a delete request."""

    MSG_ID: ClassVar[int] = 4
    tenant_id: int = pfield(1)
    ok: bool = pfield(2, default=True)


@register_message
@dataclass(frozen=True)
class MigrateTenantRequest:
    """'Migrate tenant 5 to server XYZ' — issued to the source node."""

    MSG_ID: ClassVar[int] = 5
    tenant_id: int = pfield(1)
    target_node: str = pfield(2)
    #: Latency setpoint for the dynamic throttle, seconds (0 = fixed).
    setpoint: float = pfield(3, default=0.0)
    #: Fixed throttle rate, bytes/second (used when setpoint == 0).
    fixed_rate: float = pfield(4, default=0.0)
    #: Fencing token of the migration's ownership lease (0 = unfenced
    #: legacy frame; omitted from the wire so legacy bytes are stable).
    token: int = pfield(5, default=0, omit_default=True)
    #: Number of fluid chunks (0 = classic single-handover migration;
    #: omitted from the wire so legacy bytes are stable).
    chunks: int = pfield(6, default=0, omit_default=True)


@register_message
@dataclass(frozen=True)
class MigrateTenantAccept:
    """Target node agrees to receive the tenant's snapshot stream."""

    MSG_ID: ClassVar[int] = 6
    tenant_id: int = pfield(1)
    ok: bool = pfield(2, default=True)
    #: Echo of the request's fencing token (0 = unfenced legacy frame).
    token: int = pfield(3, default=0, omit_default=True)


@register_message
@dataclass(frozen=True)
class MigrateTenantComplete:
    """Source node reports handover done (with summary numbers)."""

    MSG_ID: ClassVar[int] = 7
    tenant_id: int = pfield(1)
    duration: float = pfield(2)
    downtime: float = pfield(3)
    bytes_moved: int = pfield(4)
    #: Fencing token the handover committed under (0 = unfenced legacy
    #: frame); receivers reject stale tokens instead of applying them.
    token: int = pfield(5, default=0, omit_default=True)


@register_message
@dataclass(frozen=True)
class TenantLocationUpdate:
    """Frontend broadcast: the tenant now lives on ``node``."""

    MSG_ID: ClassVar[int] = 8
    tenant_id: int = pfield(1)
    node: str = pfield(2)
    port: int = pfield(3)
    #: Monotonic per-tenant version so receivers can discard reordered
    #: or re-synced duplicates (0 = legacy unversioned frame; omitted
    #: from the wire so legacy bytes are stable).
    version: int = pfield(4, default=0, omit_default=True)


@register_message
@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness/load report from a node."""

    MSG_ID: ClassVar[int] = 9
    node: str = pfield(1)
    tenant_count: int = pfield(2)
    disk_utilization: float = pfield(3)


@register_message
@dataclass(frozen=True)
class LeaseRenewRequest:
    """Source node asks the controller to extend its migration lease.

    Renewals cross the bus on purpose: a partition between the source
    and the controller starves renewals, the local lease expires, and
    the source self-fences — which is the whole point of leases.
    """

    MSG_ID: ClassVar[int] = 10
    tenant_id: int = pfield(1)
    token: int = pfield(2)
    node: str = pfield(3)


@register_message
@dataclass(frozen=True)
class LeaseRenewReply:
    """Controller's answer: the lease now runs to ``expires_at``."""

    MSG_ID: ClassVar[int] = 11
    tenant_id: int = pfield(1)
    token: int = pfield(2)
    ok: bool = pfield(3, default=True)
    expires_at: float = pfield(4, default=0.0)


@register_message
@dataclass(frozen=True)
class ChunkHandover:
    """Source → target: ownership of one fluid chunk has flipped.

    Sent on the migration path after the per-chunk freeze + delta, so a
    partition here slows (and eventually aborts, via lease starvation)
    the migration rather than losing a flip silently: the authoritative
    ownership record is the source-side :class:`~repro.migration.fluid.
    ChunkMap`, and this frame merely informs the target.
    """

    MSG_ID: ClassVar[int] = 12
    tenant_id: int = pfield(1)
    chunk_index: int = pfield(2)
    num_chunks: int = pfield(3)
    #: Write-delta bytes shipped during this chunk's freeze window.
    delta_bytes: int = pfield(4, default=0)
    #: Fencing token of the migration's ownership lease (0 = unfenced
    #: legacy frame); receivers reject stale tokens (SLK107).
    token: int = pfield(5, default=0, omit_default=True)


@register_message
@dataclass(frozen=True)
class ChunkOwnership:
    """Frontend broadcast: chunk ``chunk_index`` now lives on ``node``.

    The per-chunk analogue of :class:`TenantLocationUpdate`, pushed to
    subscribers while a fluid migration has the tenant dual-resident.
    """

    MSG_ID: ClassVar[int] = 13
    tenant_id: int = pfield(1)
    chunk_index: int = pfield(2)
    node: str = pfield(3)
    port: int = pfield(4)
    #: Fencing token under which the flip committed (0 = unfenced).
    token: int = pfield(5, default=0, omit_default=True)
