"""The operator command console.

"Tenants are represented by globally-unique numeric IDs, which are used
to issue commands to Slacker (such as 'migrate tenant 5 to server
XYZ')" (Section 2.2).  :class:`AdminConsole` parses exactly that
command language and executes it against a cluster — the interface a
DBA (or the placement manager) drives Slacker through.

Grammar::

    create tenant <id> on <node> [size <N>(MB|GB)]
    delete tenant <id>
    migrate tenant <id> to <node> [setpoint <N>ms | rate <N>MB/s]
    drain <node> [setpoint <N>ms]
    locate tenant <id>
    status
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..analysis.report import Table, format_ms, format_rate
from ..placement.manager import PlacementManager
from ..resources.units import GB, MB
from .cluster import SlackerCluster

__all__ = ["AdminError", "AdminCommand", "AdminConsole"]


class AdminError(Exception):
    """Raised for unparseable or inapplicable commands."""


@dataclass(frozen=True)
class AdminCommand:
    """A parsed operator command."""

    verb: str
    tenant_id: Optional[int] = None
    node: Optional[str] = None
    size_bytes: Optional[int] = None
    setpoint: Optional[float] = None
    rate: Optional[float] = None


_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)(MB|GB)$", re.IGNORECASE)
_SETPOINT_RE = re.compile(r"^(\d+(?:\.\d+)?)(ms|s)$", re.IGNORECASE)
_RATE_RE = re.compile(r"^(\d+(?:\.\d+)?)MB/s$", re.IGNORECASE)


def _parse_size(token: str) -> int:
    match = _SIZE_RE.match(token)
    if not match:
        raise AdminError(f"bad size {token!r} (want e.g. 512MB or 1GB)")
    value, unit = float(match.group(1)), match.group(2).upper()
    return int(value * (GB if unit == "GB" else MB))


def _parse_setpoint(token: str) -> float:
    match = _SETPOINT_RE.match(token)
    if not match:
        raise AdminError(f"bad setpoint {token!r} (want e.g. 1000ms or 1.5s)")
    value, unit = float(match.group(1)), match.group(2).lower()
    return value / 1000.0 if unit == "ms" else value


def _parse_rate(token: str) -> float:
    match = _RATE_RE.match(token)
    if not match:
        raise AdminError(f"bad rate {token!r} (want e.g. 8MB/s)")
    return float(match.group(1)) * MB


def parse(command: str) -> AdminCommand:
    """Parse one command line into an :class:`AdminCommand`."""
    tokens = command.split()
    if not tokens:
        raise AdminError("empty command")
    verb = tokens[0].lower()

    if verb == "status":
        return AdminCommand(verb="status")

    if verb == "locate":
        if len(tokens) != 3 or tokens[1].lower() != "tenant":
            raise AdminError("usage: locate tenant <id>")
        return AdminCommand(verb="locate", tenant_id=int(tokens[2]))

    if verb == "create":
        if len(tokens) < 5 or tokens[1].lower() != "tenant" or tokens[3].lower() != "on":
            raise AdminError("usage: create tenant <id> on <node> [size <N>MB]")
        cmd = AdminCommand(
            verb="create", tenant_id=int(tokens[2]), node=tokens[4]
        )
        rest = tokens[5:]
        if rest:
            if len(rest) != 2 or rest[0].lower() != "size":
                raise AdminError("usage: create tenant <id> on <node> [size <N>MB]")
            cmd = AdminCommand(
                verb="create",
                tenant_id=cmd.tenant_id,
                node=cmd.node,
                size_bytes=_parse_size(rest[1]),
            )
        return cmd

    if verb == "delete":
        if len(tokens) != 3 or tokens[1].lower() != "tenant":
            raise AdminError("usage: delete tenant <id>")
        return AdminCommand(verb="delete", tenant_id=int(tokens[2]))

    if verb == "migrate":
        if len(tokens) < 5 or tokens[1].lower() != "tenant" or tokens[3].lower() != "to":
            raise AdminError(
                "usage: migrate tenant <id> to <node> [setpoint <N>ms | rate <N>MB/s]"
            )
        tenant_id, node = int(tokens[2]), tokens[4]
        rest = tokens[5:]
        setpoint = rate = None
        if rest:
            if len(rest) != 2:
                raise AdminError("give either 'setpoint <N>ms' or 'rate <N>MB/s'")
            key = rest[0].lower()
            if key == "setpoint":
                setpoint = _parse_setpoint(rest[1])
            elif key == "rate":
                rate = _parse_rate(rest[1])
            else:
                raise AdminError(f"unknown option {rest[0]!r}")
        return AdminCommand(
            verb="migrate", tenant_id=tenant_id, node=node,
            setpoint=setpoint, rate=rate,
        )

    if verb == "drain":
        if len(tokens) < 2:
            raise AdminError("usage: drain <node> [setpoint <N>ms]")
        node = tokens[1]
        rest = tokens[2:]
        setpoint = None
        if rest:
            if len(rest) != 2 or rest[0].lower() != "setpoint":
                raise AdminError("usage: drain <node> [setpoint <N>ms]")
            setpoint = _parse_setpoint(rest[1])
        return AdminCommand(verb="drain", node=node, setpoint=setpoint)

    raise AdminError(f"unknown command {verb!r}")


class AdminConsole:
    """Executes operator commands against a cluster, synchronously.

    ``execute`` returns a human-readable result line (or table) and
    advances the simulation as far as the command requires — a
    migration command returns only after handover.
    """

    #: Setpoint used when a migrate command gives no throttle option.
    DEFAULT_SETPOINT = 1.0

    #: Concurrency of a console-driven drain when no manager is given.
    DRAIN_MAX_CONCURRENT = 4

    def __init__(
        self,
        cluster: SlackerCluster,
        default_tenant_bytes: int = 1 * GB,
        manager: Optional[PlacementManager] = None,
    ):
        self.cluster = cluster
        self.default_tenant_bytes = default_tenant_bytes
        #: Placement manager the ``drain`` verb runs through; built on
        #: demand (wave mode, console defaults) when not supplied.
        self.manager = manager
        self.log: list[str] = []

    def execute(self, command: str) -> str:
        """Parse and run one command; returns the result text."""
        cmd = parse(command)
        handler = getattr(self, f"_do_{cmd.verb}")
        result = handler(cmd)
        self.log.append(command)
        return result

    # -- handlers --------------------------------------------------------------

    def _node(self, name: str):
        try:
            return self.cluster.node(name)
        except KeyError:
            raise AdminError(
                f"no node {name!r}; nodes: {', '.join(sorted(self.cluster.nodes))}"
            ) from None

    def _do_status(self, cmd: AdminCommand) -> str:
        table = Table("cluster status", ["node", "tenants", "tenant ids"])
        for name in sorted(self.cluster.nodes):
            node = self.cluster.nodes[name]
            ids = ", ".join(str(t) for t in node.registry.ids()) or "-"
            table.add_row(name, len(node.registry), ids)
        return table.render()

    def _do_locate(self, cmd: AdminCommand) -> str:
        location = self.cluster.frontend.lookup(cmd.tenant_id)
        if location is None:
            return f"tenant {cmd.tenant_id}: unknown"
        return (
            f"tenant {cmd.tenant_id}: node {location.node}, "
            f"port {location.port}"
        )

    def _do_create(self, cmd: AdminCommand) -> str:
        node = self._node(cmd.node)
        tenant = node.create_tenant(
            cmd.tenant_id, cmd.size_bytes or self.default_tenant_bytes
        )
        return (
            f"created tenant {tenant.tenant_id} on {cmd.node} "
            f"(port {tenant.port}, {tenant.data_bytes // MB} MB)"
        )

    def _do_delete(self, cmd: AdminCommand) -> str:
        location = self.cluster.frontend.lookup(cmd.tenant_id)
        if location is None:
            raise AdminError(f"unknown tenant {cmd.tenant_id}")
        self.cluster.node(location.node).delete_tenant(cmd.tenant_id)
        return f"deleted tenant {cmd.tenant_id} from {location.node}"

    def _do_migrate(self, cmd: AdminCommand) -> str:
        location = self.cluster.frontend.lookup(cmd.tenant_id)
        if location is None:
            raise AdminError(f"unknown tenant {cmd.tenant_id}")
        source = self.cluster.node(location.node)
        kwargs = {}
        if cmd.rate is not None:
            kwargs["fixed_rate"] = cmd.rate
        else:
            kwargs["setpoint"] = cmd.setpoint or self.DEFAULT_SETPOINT
        env = self.cluster.env
        proc = env.process(
            source.migrate_tenant(cmd.tenant_id, cmd.node, **kwargs)
        )
        result = env.run(until=proc)
        return (
            f"migrated tenant {cmd.tenant_id}: {location.node} -> {cmd.node} "
            f"in {result.duration:.1f} s at {format_rate(result.average_rate)}, "
            f"downtime {format_ms(result.downtime)}"
        )

    def _do_drain(self, cmd: AdminCommand) -> str:
        self._node(cmd.node)  # fail fast with the console's error text
        manager = self.manager
        if manager is None:
            manager = PlacementManager(
                self.cluster,
                self.cluster.trace,
                setpoint=cmd.setpoint or self.DEFAULT_SETPOINT,
                max_concurrent=self.DRAIN_MAX_CONCURRENT,
                max_streams_per_node=2,
            )
            self.manager = manager
        env = self.cluster.env
        proc = env.process(manager.drain(cmd.node, setpoint=cmd.setpoint))
        report = env.run(until=proc)
        if report.drained:
            return (
                f"drained {cmd.node}: {report.migrations} migrations "
                f"in {report.duration:.1f} s"
            )
        return (
            f"drain {cmd.node} incomplete: {report.remaining} tenants left "
            f"after {report.duration:.1f} s ({report.aborted} aborted)"
        )
