"""Slacker middleware: tenant management, control protocol, nodes, cluster."""

from .cluster import FleetSpec, SlackerCluster
from .frontend import Frontend, TenantLocation
from .node import NodeConfig, SlackerNode
from .protocol import (
    MESSAGE_REGISTRY,
    CreateTenantReply,
    CreateTenantRequest,
    DeleteTenantReply,
    DeleteTenantRequest,
    Heartbeat,
    MigrateTenantAccept,
    MigrateTenantComplete,
    MigrateTenantRequest,
    ProtocolError,
    TenantLocationUpdate,
    decode_message,
    decode_varint,
    encode_message,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)
from .tenant import BASE_PORT, Tenant, TenantRegistry, TenantStatus, tenant_port
from .transport import Endpoint, Envelope, MessageBus

__all__ = [
    "BASE_PORT",
    "CreateTenantReply",
    "CreateTenantRequest",
    "DeleteTenantReply",
    "DeleteTenantRequest",
    "Endpoint",
    "Envelope",
    "FleetSpec",
    "Frontend",
    "Heartbeat",
    "MESSAGE_REGISTRY",
    "MessageBus",
    "MigrateTenantAccept",
    "MigrateTenantComplete",
    "MigrateTenantRequest",
    "NodeConfig",
    "ProtocolError",
    "SlackerCluster",
    "SlackerNode",
    "Tenant",
    "TenantLocation",
    "TenantLocationUpdate",
    "TenantRegistry",
    "TenantStatus",
    "decode_message",
    "decode_varint",
    "encode_message",
    "encode_varint",
    "tenant_port",
    "zigzag_decode",
    "zigzag_encode",
]
