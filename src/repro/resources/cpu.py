"""CPU model: a fixed number of cores shared by queries and migration.

The paper's testbed uses quad-core 2.4 GHz Xeons.  CPU is rarely the
bottleneck in its experiments (disk is), but migration still carries
"processing overhead" (Section 3), so we model cores as a capacity-N
queueing resource that query execution and snapshot processing both
occupy for short slices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from ..simulation import Environment, Resource, default_rng

__all__ = ["CpuParams", "CpuStats", "Cpu"]


@dataclass(frozen=True)
class CpuParams:
    """Parameters for the server CPU."""

    #: Number of hardware cores.
    cores: int = 4
    #: If True, requested burst lengths get exponential jitter.
    stochastic: bool = True

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")


@dataclass
class CpuStats:
    """Running counters for one CPU."""

    bursts: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float, cores: int) -> float:
        """Mean fraction of total core-time spent busy over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * cores)


class Cpu:
    """A multi-core CPU as a capacity-``cores`` FIFO resource."""

    def __init__(
        self,
        env: Environment,
        params: Optional[CpuParams] = None,
        rng: Optional[random.Random] = None,
        name: str = "cpu",
    ):
        self.env = env
        self.params = params or CpuParams()
        # Derive the fallback seed from the component name so two
        # resources built without explicit RNGs stay decorrelated.
        self.rng = rng if rng is not None else default_rng(name)
        self.name = name
        self.stats = CpuStats()
        self._cores = Resource(env, capacity=self.params.cores)

    @property
    def queue_length(self) -> int:
        """Bursts waiting for a free core."""
        return self._cores.queue_length

    def burst_time(self, mean_seconds: float) -> float:
        """Draw the actual length of a burst with the given mean."""
        if mean_seconds < 0:
            raise ValueError(f"mean_seconds must be >= 0, got {mean_seconds}")
        if mean_seconds == 0:
            return 0.0
        if self.params.stochastic:
            return self.rng.expovariate(1.0 / mean_seconds)
        return mean_seconds

    def execute(self, mean_seconds: float, priority: int = 0) -> Generator:
        """Process: occupy one core for a burst of roughly ``mean_seconds``."""
        with self._cores.request(priority=priority) as grant:
            yield grant
            burst = self.burst_time(mean_seconds)
            yield self.env.timeout(burst)
            self.stats.bursts += 1
            self.stats.busy_time += burst
