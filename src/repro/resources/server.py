"""Physical server model: CPU + disk + NIC under one roof.

A :class:`Server` bundles the three resource models into the machine a
Slacker node runs on.  Tenant MySQL instances hosted on the server all
share its disk and CPU — which is the whole reason migration
interference exists (Figure 3 of the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..simulation import Environment, RandomStreams
from .cpu import Cpu, CpuParams
from .disk import Disk, DiskParams
from .network import NetworkLink, NetworkParams

__all__ = ["ServerParams", "Server"]


@dataclass(frozen=True)
class ServerParams:
    """Hardware parameters of one server."""

    cpu: CpuParams = field(default_factory=CpuParams)
    disk: DiskParams = field(default_factory=DiskParams)
    network: NetworkParams = field(default_factory=NetworkParams)


class Server:
    """A physical machine: cores, one disk spindle, and a full-duplex NIC."""

    def __init__(
        self,
        env: Environment,
        name: str,
        params: Optional[ServerParams] = None,
        streams: Optional[RandomStreams] = None,
    ):
        self.env = env
        self.name = name
        self.params = params or ServerParams()
        streams = streams or RandomStreams(0)
        self._streams = streams
        self.cpu = Cpu(
            env,
            self.params.cpu,
            rng=streams.stream(f"{name}:cpu"),
            name=f"{name}:cpu",
        )
        self.disk = Disk(
            env,
            self.params.disk,
            rng=streams.stream(f"{name}:disk"),
            name=f"{name}:disk",
        )
        self.nic_out = NetworkLink(env, self.params.network, name=f"{name}:nic-out")
        self.nic_in = NetworkLink(env, self.params.network, name=f"{name}:nic-in")

    def rng(self, purpose: str) -> random.Random:
        """A deterministic per-purpose RNG tied to this server's name."""
        return self._streams.stream(f"{self.name}:{purpose}")

    def io_snapshot(self) -> tuple[float, float]:
        """Accumulated (disk, NIC) busy time, seconds.

        NIC busy time sums both full-duplex directions; samplers that
        interval-difference these counters (heartbeats, the placement
        monitor, the observability runtime) get utilization without
        touching — or perturbing — the resources themselves.
        """
        return (
            self.disk.stats.busy_time,
            self.nic_out.stats.busy_time + self.nic_in.stats.busy_time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Server {self.name}>"
