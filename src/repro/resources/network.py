"""Network model: full-duplex point-to-point links between servers.

The paper connects its three servers with gigabit Ethernet.  At the
paper's transfer rates (≤ 30 MB/s) the network is never the bottleneck,
but we model it anyway: the snapshot stream traverses the source NIC,
the wire, and the target NIC, and the target applies received chunks to
its own disk — which matters for the Section 6 "throttle both source
and target" extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..simulation import Environment, Resource
from .units import MB

__all__ = ["NetworkParams", "NetworkStats", "NetworkLink"]

#: Usable payload bandwidth of gigabit Ethernet, bytes/second.
GIGABIT_BANDWIDTH = 117.0 * MB


@dataclass(frozen=True)
class NetworkParams:
    """Parameters of one direction of a network link."""

    #: Usable bandwidth, bytes/second (default: gigabit Ethernet).
    bandwidth: float = GIGABIT_BANDWIDTH
    #: One-way propagation + stack latency, seconds.
    latency: float = 0.2e-3

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")


@dataclass
class NetworkStats:
    """Running counters for one link direction."""

    transfers: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed


class NetworkLink:
    """One direction of a point-to-point link, serialized FIFO."""

    def __init__(
        self,
        env: Environment,
        params: Optional[NetworkParams] = None,
        name: str = "link",
    ):
        self.env = env
        self.params = params or NetworkParams()
        self.name = name
        self.stats = NetworkStats()
        self._wire = Resource(env, capacity=1)

    @property
    def queue_length(self) -> int:
        """Transfers waiting for the wire."""
        return self._wire.queue_length

    def transfer(self, nbytes: int, priority: int = 0) -> Generator:
        """Process: push ``nbytes`` through this link direction."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        with self._wire.request(priority=priority) as grant:
            yield grant
            serialization = nbytes / self.params.bandwidth
            yield self.env.timeout(serialization)
            self.stats.busy_time += serialization
        # Propagation happens off the wire (pipelined with later sends).
        if self.params.latency > 0:
            yield self.env.timeout(self.params.latency)
        self.stats.transfers += 1
        self.stats.bytes_sent += nbytes
