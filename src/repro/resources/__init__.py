"""Hardware resource models: disk, CPU, network links, and servers."""

from .cpu import Cpu, CpuParams, CpuStats
from .disk import Disk, DiskParams, DiskStats
from .network import GIGABIT_BANDWIDTH, NetworkLink, NetworkParams, NetworkStats
from .server import Server, ServerParams
from .units import (
    GB,
    KB,
    MB,
    MILLIS,
    PAGE_SIZE,
    from_millis,
    mb_per_sec,
    to_mb,
    to_mb_per_sec,
    to_millis,
)

__all__ = [
    "Cpu",
    "CpuParams",
    "CpuStats",
    "Disk",
    "DiskParams",
    "DiskStats",
    "GB",
    "GIGABIT_BANDWIDTH",
    "KB",
    "MB",
    "MILLIS",
    "NetworkLink",
    "NetworkParams",
    "NetworkStats",
    "PAGE_SIZE",
    "Server",
    "ServerParams",
    "from_millis",
    "mb_per_sec",
    "to_mb",
    "to_mb_per_sec",
    "to_millis",
]
