"""Unit constants and helpers shared by the resource and DB layers.

Conventions used throughout the reproduction:

* simulated time is in **seconds** (floats);
* data sizes are in **bytes** (ints); and
* rates are in **bytes per second** unless a name says otherwise.

The paper quotes throttle rates in MB/sec; helpers here convert both
ways so experiment code can speak the paper's units.
"""

from __future__ import annotations

# This module *defines* the byte-unit constants, so the raw 1024
# literals below are the single sanctioned occurrence in the package.
# slackerlint: disable=SLK006

__all__ = [
    "KB",
    "MB",
    "GB",
    "PAGE_SIZE",
    "mb_per_sec",
    "to_mb",
    "to_mb_per_sec",
    "MILLIS",
    "to_millis",
    "from_millis",
]

#: One kilobyte (binary), in bytes.
KB = 1024
#: One megabyte (binary), in bytes.
MB = 1024 * KB
#: One gigabyte (binary), in bytes.
GB = 1024 * MB

#: InnoDB's default page size: 16 KB.
PAGE_SIZE = 16 * KB

#: Seconds per millisecond.
MILLIS = 1e-3


def mb_per_sec(rate_mb: float) -> float:
    """Convert a rate in MB/sec (paper units) to bytes/sec."""
    return rate_mb * MB


def to_mb(nbytes: float) -> float:
    """Convert a byte count to MB."""
    return nbytes / MB


def to_mb_per_sec(rate_bytes: float) -> float:
    """Convert a rate in bytes/sec to MB/sec (paper units)."""
    return rate_bytes / MB


def to_millis(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLIS


def from_millis(millis: float) -> float:
    """Convert milliseconds to seconds."""
    return millis * MILLIS
