"""Disk model: a single spindle with distinct random and sequential costs.

The paper's servers use dedicated local disks, and disk I/O is "both
the most difficult resource to partition and often a particularly
stressed resource in databases" (Section 5.1.2) — it is the shared
bottleneck through which the migration stream interferes with tenant
queries.  We model the disk as a single work-conserving FIFO server:

* **random** accesses (buffer-pool page misses, dirty-page writes) pay
  a positioning time (seek + rotational latency, drawn from an
  exponential distribution for realistic latency spikes) plus a
  transfer time at the media rate;
* **sequential** accesses (the XtraBackup snapshot scan, delta copies)
  pay the positioning time only when the arm moved away since the
  stream's previous request — so a snapshot scan running alone streams
  at full media rate, but one interleaved with random tenant I/O
  re-seeks for every chunk.  This "broken sequentiality" is the
  physical mechanism that makes migration cost more while tenants are
  active, producing the latency-vs-throttle behaviour of the paper's
  Figures 5, 6, and 11a;
* **cached** writes (the group-commit log flush absorbed by the drive's
  write cache) pay transfer time only and do not move the arm.

Requests from all tenants and from migration queue FIFO on one arm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from ..simulation import Environment, Resource, default_rng
from .units import MB

__all__ = ["DiskParams", "DiskStats", "Disk"]


@dataclass(frozen=True)
class DiskParams:
    """Performance parameters for one disk spindle.

    Defaults approximate a ~7200 RPM SATA disk of the paper's era.
    """

    #: Mean positioning time (seek + rotation) for a random access, seconds.
    seek_time: float = 5.0e-3
    #: Media transfer rate for sequential access, bytes/second.
    sequential_bandwidth: float = 90.0 * MB
    #: Media transfer rate once positioned, for random access, bytes/second.
    random_bandwidth: float = 60.0 * MB
    #: If True, positioning time is exponentially distributed around
    #: ``seek_time`` (realistic bursty tail); if False it is constant.
    stochastic_seek: bool = True

    def __post_init__(self) -> None:
        if self.seek_time < 0:
            raise ValueError(f"seek_time must be >= 0, got {self.seek_time}")
        if self.sequential_bandwidth <= 0 or self.random_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")


@dataclass
class DiskStats:
    """Running counters for one disk."""

    random_reads: int = 0
    random_writes: int = 0
    sequential_reads: int = 0
    sequential_writes: int = 0
    cached_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    #: Total time requests spent queued (not being served).
    queue_time: float = 0.0
    #: Sequential requests that had to re-position the arm.
    broken_streams: int = 0

    @property
    def total_requests(self) -> int:
        return (
            self.random_reads
            + self.random_writes
            + self.sequential_reads
            + self.sequential_writes
            + self.cached_writes
        )

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the disk spent serving requests."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed


class Disk:
    """A single disk spindle shared by tenant I/O and migration I/O."""

    def __init__(
        self,
        env: Environment,
        params: Optional[DiskParams] = None,
        rng: Optional[random.Random] = None,
        name: str = "disk",
    ):
        self.env = env
        self.params = params or DiskParams()
        # Derive the fallback seed from the component name so two
        # resources built without explicit RNGs stay decorrelated.
        self.rng = rng if rng is not None else default_rng(name)
        self.name = name
        self.stats = DiskStats()
        self._arm = Resource(env, capacity=1)
        #: Stream id of the last arm-moving request, for sequentiality.
        self._last_stream: Optional[str] = None
        self._seen_streams: set[str] = set()

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for the disk arm."""
        return self._arm.queue_length

    def read(
        self,
        nbytes: int,
        sequential: bool = False,
        stream: Optional[str] = None,
        priority: int = 0,
    ) -> Generator:
        """Process: read ``nbytes`` (queue on the arm, then transfer)."""
        yield from self._access(
            nbytes, sequential, stream, is_write=False, cached=False, priority=priority
        )

    def write(
        self,
        nbytes: int,
        sequential: bool = False,
        stream: Optional[str] = None,
        cached: bool = False,
        priority: int = 0,
    ) -> Generator:
        """Process: write ``nbytes``.

        ``cached=True`` models a write absorbed by the drive's write
        cache (used for group-commit log flushes): transfer time only,
        no arm movement.
        """
        yield from self._access(
            nbytes, sequential, stream, is_write=True, cached=cached, priority=priority
        )

    # -- internals ---------------------------------------------------------

    def _positioning_time(self) -> float:
        params = self.params
        if params.seek_time == 0:
            return 0.0
        if params.stochastic_seek:
            return self.rng.expovariate(1.0 / params.seek_time)
        return params.seek_time

    def _service(
        self, nbytes: int, sequential: bool, stream: Optional[str], cached: bool
    ) -> float:
        """Draw the in-service time and update arm-position state."""
        params = self.params
        if cached:
            return nbytes / params.sequential_bandwidth
        if sequential:
            service = nbytes / params.sequential_bandwidth
            if stream is None or stream != self._last_stream:
                service += self._positioning_time()
                if stream is not None and stream in self._seen_streams:
                    # An established stream had to re-seek: something
                    # else moved the arm since its previous chunk.
                    self.stats.broken_streams += 1
            if stream is not None:
                self._seen_streams.add(stream)
            self._last_stream = stream
            return service
        self._last_stream = None
        return self._positioning_time() + nbytes / params.random_bandwidth

    def _access(
        self,
        nbytes: int,
        sequential: bool,
        stream: Optional[str],
        is_write: bool,
        cached: bool,
        priority: int,
    ) -> Generator:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        queued_at = self.env.now
        with self._arm.request(priority=priority) as grant:
            yield grant
            self.stats.queue_time += self.env.now - queued_at
            service = self._service(nbytes, sequential, stream, cached)
            yield self.env.timeout(service)
            self.stats.busy_time += service
            self._count(nbytes, sequential, is_write, cached)

    def _count(
        self, nbytes: int, sequential: bool, is_write: bool, cached: bool
    ) -> None:
        if is_write:
            self.stats.bytes_written += nbytes
            if cached:
                self.stats.cached_writes += 1
            elif sequential:
                self.stats.sequential_writes += 1
            else:
                self.stats.random_writes += 1
        else:
            self.stats.bytes_read += nbytes
            if sequential:
                self.stats.sequential_reads += 1
            else:
                self.stats.random_reads += 1
