"""The controller's process-variable filter: sliding-window latency.

"The input to the controller at each timestep consists of the current
average transaction latency over a small sliding window of time ...
We empirically found 3 seconds to be a reasonable window size, with a
1 second timestep" (Section 4.2.3).

:class:`LatencyWindow` samples one or more latency series (multiple
for the multi-tenant case, where "Slacker simply computes latency
averages across all tenant databases", Section 5.6) and reports the
trailing-window mean; if the window is empty it holds the last value,
so a momentarily idle tenant does not destabilize the controller.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..simulation.trace import Series

__all__ = ["LatencyWindow", "DEFAULT_WINDOW", "DEFAULT_TIMESTEP"]

#: Paper's sliding-window size, seconds.
DEFAULT_WINDOW = 3.0
#: Paper's controller timestep, seconds.
DEFAULT_TIMESTEP = 1.0


class LatencyWindow:
    """Trailing-window mean over one or more latency series."""

    def __init__(
        self,
        series: Sequence[Series],
        window: float = DEFAULT_WINDOW,
        initial_value: Optional[float] = None,
    ):
        if not series:
            raise ValueError("need at least one latency series")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.series = list(series)
        self.window = window
        self._last_value = initial_value

    def sample(self, now: float) -> Optional[float]:
        """Mean latency of samples in [now - window, now], pooled.

        Returns the previous sample (or the configured initial value)
        if no transaction finished in the window, and None only if no
        value has ever been observed.
        """
        values: list[float] = []
        for series in self.series:
            # Closed window [now - window, now]: a transaction that
            # completes exactly at the sampling instant counts.
            values.extend(
                series.window_values(now - self.window, now, closed="both")
            )
        if values:
            self._last_value = sum(values) / len(values)
        return self._last_value
