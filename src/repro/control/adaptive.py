"""Adaptive gain scheduling — the Section 6 extension.

"Slacker can easily incorporate more sophisticated control methods ...
One model is adaptive control, which has been used successfully in
resource management for virtual machines [Padala et al.].  This allows
PID parameters to be learned online and adapted to the situation in
real time."

:class:`AdaptivePidController` wraps a velocity PID and rescales its
gains online.  It estimates the process gain g = d(latency)/d(rate)
with exponentially-forgetting recursive least squares on observed
(Δoutput, Δlatency) pairs, then scales the base gains by
``reference_gain / g``: when the plant becomes more sensitive (less
slack, steeper latency response) the controller automatically softens,
and vice versa.
"""

from __future__ import annotations

from typing import Optional

from .pid import PidGains, VelocityPidController

__all__ = ["ProcessGainEstimator", "AdaptivePidController"]


class ProcessGainEstimator:
    """RLS estimate (scalar, forgetting factor) of d(pv)/d(output)."""

    def __init__(self, forgetting: float = 0.95, initial_gain: float = 0.0):
        if not 0 < forgetting <= 1:
            raise ValueError(f"forgetting must be in (0, 1], got {forgetting}")
        self.forgetting = forgetting
        self._theta = initial_gain  # estimated process gain
        self._p = 1e3  # covariance
        self.samples = 0

    @property
    def gain(self) -> float:
        """Current estimate of the process gain."""
        return self._theta

    def update(self, delta_output: float, delta_pv: float) -> float:
        """Fold in one observed (Δoutput, Δpv) pair; returns the estimate."""
        x = delta_output
        if abs(x) > 1e-12:
            denom = self.forgetting + x * self._p * x
            k = self._p * x / denom
            self._theta += k * (delta_pv - x * self._theta)
            self._p = (self._p - k * x * self._p) / self.forgetting
            self.samples += 1
        return self._theta


class AdaptivePidController:
    """Velocity PID whose gains track the estimated process gain.

    ``reference_gain`` is the process gain the base gains were tuned
    for; the effective gains each step are
    ``base * clamp(reference_gain / |estimate|, scale_min, scale_max)``.
    Until ``min_samples`` observations have accumulated the base gains
    are used unchanged.
    """

    def __init__(
        self,
        base_gains: PidGains,
        setpoint: float,
        reference_gain: float,
        output_min: float = 0.0,
        output_max: float = 100.0,
        initial_output: float = 0.0,
        forgetting: float = 0.95,
        scale_min: float = 0.2,
        scale_max: float = 5.0,
        min_samples: int = 5,
    ):
        if reference_gain == 0:
            raise ValueError("reference_gain must be nonzero")
        if not 0 < scale_min < scale_max:
            raise ValueError(
                f"need 0 < scale_min < scale_max, got {scale_min}, {scale_max}"
            )
        self.base_gains = base_gains
        self.reference_gain = abs(reference_gain)
        self.scale_min = scale_min
        self.scale_max = scale_max
        self.min_samples = min_samples
        self.estimator = ProcessGainEstimator(forgetting=forgetting)
        self._pid = VelocityPidController(
            base_gains,
            setpoint,
            output_min=output_min,
            output_max=output_max,
            initial_output=initial_output,
        )
        self._last_pv: Optional[float] = None
        self._last_output = self._pid.output

    @property
    def output(self) -> float:
        """Current actuator value."""
        return self._pid.output

    @property
    def setpoint(self) -> float:
        return self._pid.setpoint

    @property
    def current_scale(self) -> float:
        """Gain scale currently in effect."""
        if self.estimator.samples < self.min_samples:
            return 1.0
        estimate = abs(self.estimator.gain)
        if estimate < 1e-12:
            return self.scale_max
        return min(self.scale_max, max(self.scale_min, self.reference_gain / estimate))

    def update(self, process_variable: float, dt: float = 1.0) -> float:
        """Advance one timestep; returns the new absolute output."""
        if self._last_pv is not None:
            self.estimator.update(
                delta_output=self._pid.output - self._last_output,
                delta_pv=process_variable - self._last_pv,
            )
        self._last_pv = process_variable
        self._last_output = self._pid.output
        self._pid.gains = self.base_gains.scaled(self.current_scale)
        return self._pid.update(process_variable, dt=dt)

    def set_setpoint(self, setpoint: float) -> None:
        """Retarget the controller."""
        self._pid.set_setpoint(setpoint)

    def set_output(self, output: float) -> None:
        """Force the actuator value."""
        self._pid.set_output(output)
