"""Control theory: PID controllers, tuning, and adaptive extensions."""

from .adaptive import AdaptivePidController, ProcessGainEstimator
from .pid import (
    PAPER_GAINS,
    PidGains,
    PositionalPidController,
    VelocityPidController,
)
from .tuning import RelayResult, RelayTuner, budget_setpoint, ziegler_nichols
from .window import DEFAULT_TIMESTEP, DEFAULT_WINDOW, LatencyWindow

__all__ = [
    "AdaptivePidController",
    "DEFAULT_TIMESTEP",
    "DEFAULT_WINDOW",
    "LatencyWindow",
    "PAPER_GAINS",
    "PidGains",
    "PositionalPidController",
    "ProcessGainEstimator",
    "RelayResult",
    "RelayTuner",
    "VelocityPidController",
    "budget_setpoint",
    "ziegler_nichols",
]
