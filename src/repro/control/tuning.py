"""Controller tuning: Ziegler–Nichols rules and relay auto-tuning.

"In the implementation of Slacker, we began with a well-known approach,
the Ziegler-Nichols method, and applied some manual tuning on top of
this" (Section 6).  This module provides:

* :func:`ziegler_nichols` — the classic table mapping the ultimate
  gain Ku and oscillation period Tu to P/PI/PD/PID gains;
* :class:`RelayTuner` — an Åström–Hägglund relay experiment that
  discovers Ku and Tu online by toggling the actuator between two
  levels and measuring the induced oscillation, so a Slacker
  deployment can derive its own starting gains without an operator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .pid import PidGains

__all__ = ["ziegler_nichols", "budget_setpoint", "RelayTuner", "RelayResult"]

#: Ziegler–Nichols tuning table: variant -> (Kp/Ku, Ti/Tu, Td/Tu).
#: Ti = inf means no integral action; Td = 0 means no derivative action.
_ZN_TABLE: dict[str, tuple[float, float, float]] = {
    "p": (0.50, math.inf, 0.0),
    "pi": (0.45, 1.0 / 1.2, 0.0),
    "pd": (0.80, math.inf, 0.125),
    "pid": (0.60, 0.50, 0.125),
    "pessen": (0.70, 0.40, 0.15),
    "some-overshoot": (0.33, 0.50, 1.0 / 3.0),
    "no-overshoot": (0.20, 0.50, 1.0 / 3.0),
}


def ziegler_nichols(
    ultimate_gain: float, ultimate_period: float, variant: str = "pid"
) -> PidGains:
    """Gains from the Ziegler–Nichols closed-loop (ultimate) method.

    ``ultimate_gain`` (Ku) is the proportional gain at which the loop
    oscillates with constant amplitude; ``ultimate_period`` (Tu) is the
    oscillation period.  ``variant`` picks a row of the classic table
    ('p', 'pi', 'pd', 'pid', plus the 'pessen', 'some-overshoot' and
    'no-overshoot' refinements).
    """
    if ultimate_gain <= 0:
        raise ValueError(f"ultimate_gain must be positive, got {ultimate_gain}")
    if ultimate_period <= 0:
        raise ValueError(f"ultimate_period must be positive, got {ultimate_period}")
    try:
        kp_ratio, ti_ratio, td_ratio = _ZN_TABLE[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {sorted(_ZN_TABLE)}"
        ) from None
    kp = kp_ratio * ultimate_gain
    ti = ti_ratio * ultimate_period
    td = td_ratio * ultimate_period
    ki = 0.0 if math.isinf(ti) else kp / ti
    kd = kp * td
    return PidGains(kp=kp, ki=ki, kd=kd)


def budget_setpoint(
    base_setpoint: float, share: float, baseline: float = 0.0
) -> float:
    """Effective latency setpoint for a stream holding a slack share.

    Slacker's slack is the latency headroom between the workload's
    baseline and the setpoint; the PID ramps the transfer until that
    headroom is consumed.  When a node's slack budget is split across
    concurrent streams (see
    :class:`repro.placement.budget.SlackBudgetLedger`), each stream may
    only consume its share of the headroom, so its controller gets a
    proportionally tighter target::

        effective = baseline + share * (base_setpoint - baseline)

    ``baseline`` is the latency floor attributed to the workload itself
    (0.0 when unknown — the conservative split).  ``share = 1.0``
    returns ``base_setpoint`` exactly, so a lone stream is bit-identical
    to the unbudgeted serialized path.
    """
    if base_setpoint <= 0:
        raise ValueError(f"base_setpoint must be positive, got {base_setpoint}")
    if not 0 < share <= 1:
        raise ValueError(f"share must be in (0, 1], got {share}")
    if not 0 <= baseline < base_setpoint:
        raise ValueError(
            f"baseline must be in [0, {base_setpoint}), got {baseline}"
        )
    if share >= 1.0:
        return base_setpoint
    return baseline + share * (base_setpoint - baseline)


@dataclass(frozen=True)
class RelayResult:
    """Outcome of a completed relay experiment."""

    ultimate_gain: float
    ultimate_period: float
    #: Peak-to-peak amplitude of the induced process oscillation.
    oscillation_amplitude: float
    #: Number of full oscillation cycles observed.
    cycles: int


class RelayTuner:
    """Åström–Hägglund relay feedback experiment.

    Feed it (time, process_variable) samples via :meth:`step`; it
    returns the actuator level to apply (``high`` or ``low``).  The
    relay switches each time the process variable crosses the setpoint
    (with hysteresis), inducing a limit cycle.  After ``cycles_needed``
    stable cycles, :attr:`result` holds Ku and Tu::

        Ku = 4 * d / (pi * a)

    where d is the relay half-amplitude and a the oscillation
    half-amplitude.
    """

    def __init__(
        self,
        setpoint: float,
        low: float,
        high: float,
        hysteresis: float = 0.0,
        cycles_needed: int = 3,
    ):
        if low >= high:
            raise ValueError(f"low {low} must be < high {high}")
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        if cycles_needed < 1:
            raise ValueError(f"cycles_needed must be >= 1, got {cycles_needed}")
        self.setpoint = setpoint
        self.low = low
        self.high = high
        self.hysteresis = hysteresis
        self.cycles_needed = cycles_needed
        self._output = high
        self._switch_up_times: list[float] = []
        self._pv_min = math.inf
        self._pv_max = -math.inf
        self.result: Optional[RelayResult] = None

    @property
    def output(self) -> float:
        """Current relay actuator level."""
        return self._output

    @property
    def done(self) -> bool:
        """True once Ku and Tu have been measured."""
        return self.result is not None

    def step(self, time: float, process_variable: float) -> float:
        """Record one sample; returns the actuator level to apply next."""
        self._pv_min = min(self._pv_min, process_variable)
        self._pv_max = max(self._pv_max, process_variable)

        if (
            self._output == self.high
            and process_variable > self.setpoint + self.hysteresis
        ):
            self._output = self.low
        elif (
            self._output == self.low
            and process_variable < self.setpoint - self.hysteresis
        ):
            self._output = self.high
            self._switch_up_times.append(time)
            self._maybe_finish()
        return self._output

    def _maybe_finish(self) -> None:
        if self.done or len(self._switch_up_times) < self.cycles_needed + 1:
            return
        times = self._switch_up_times
        periods = [b - a for a, b in zip(times, times[1:])]
        tu = sum(periods) / len(periods)
        amplitude = (self._pv_max - self._pv_min) / 2.0
        if amplitude <= 0 or tu <= 0:
            return
        relay_half_amplitude = (self.high - self.low) / 2.0
        ku = 4.0 * relay_half_amplitude / (math.pi * amplitude)
        self.result = RelayResult(
            ultimate_gain=ku,
            ultimate_period=tu,
            oscillation_amplitude=2.0 * amplitude,
            cycles=len(periods),
        )
