"""PID controllers: classical (positional) and velocity forms.

The paper drives migration speed with a PID controller whose output at
time t is (Equation 5)::

    out(t) = Kp*e(t) + Ki*integral(e) + Kd*de/dt

and specifically uses the **velocity algorithm** — "an alternative form
of the classical algorithm that outputs a delta rather than an absolute
value at each timestep and does not use a sum of past errors, thus
avoiding integral windup" (Section 4.2.3).  Windup matters in Slacker
because a lightly loaded server can sit far below the latency setpoint
for the whole migration, saturating a positional controller's integral
term.

Both forms are implemented (the ablation bench contrasts them), plus a
clamping anti-windup option for the positional form.  Controllers are
unit-agnostic; Slacker feeds errors in milliseconds and interprets
output as percent of maximum migration speed, with the paper's gains
Kp = 0.025, Ki = 0.005, Kd = 0.015.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "PidGains",
    "PAPER_GAINS",
    "VelocityPidController",
    "PositionalPidController",
]


@dataclass(frozen=True)
class PidGains:
    """Proportional, integral, and derivative gains."""

    kp: float
    ki: float
    kd: float

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError(f"gains must be non-negative, got {self}")

    def scaled(self, factor: float) -> "PidGains":
        """All three gains multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return PidGains(self.kp * factor, self.ki * factor, self.kd * factor)


#: The gains the paper uses for its evaluation (footnote 1, Section 5.3):
#: Ki small and Kd large relative to Kp, "owing to the slow reaction
#: speed of transaction latency to a change in the migration speed".
PAPER_GAINS = PidGains(kp=0.025, ki=0.005, kd=0.015)


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


class VelocityPidController:
    """Velocity (incremental) PID: each step emits a *delta* output.

    The absolute actuator value is integrated here for convenience and
    clamped to [output_min, output_max]; because there is no explicit
    error sum, clamping cannot cause windup.

    The velocity update with timestep dt is::

        du = Kp*(e_t - e_{t-1}) + Ki*e_t*dt + Kd*(e_t - 2 e_{t-1} + e_{t-2})/dt
    """

    def __init__(
        self,
        gains: PidGains,
        setpoint: float,
        output_min: float = 0.0,
        output_max: float = 100.0,
        initial_output: float = 0.0,
    ):
        if output_min >= output_max:
            raise ValueError(
                f"output_min {output_min} must be < output_max {output_max}"
            )
        self.gains = gains
        self.setpoint = setpoint
        self.output_min = output_min
        self.output_max = output_max
        self._output = _clamp(initial_output, output_min, output_max)
        self._e1: Optional[float] = None  # e_{t-1}
        self._e2: Optional[float] = None  # e_{t-2}
        self.steps = 0
        #: Error computed by the most recent :meth:`update` (None before
        #: the first step) — read by the observability layer.
        self.last_error: Optional[float] = None

    @property
    def output(self) -> float:
        """Current actuator value (absolute, clamped)."""
        return self._output

    def error(self, process_variable: float) -> float:
        """Control error for the given measurement."""
        return self.setpoint - process_variable

    def update(self, process_variable: float, dt: float = 1.0) -> float:
        """Advance one timestep; returns the new absolute output."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        e = self.error(process_variable)
        e1 = self._e1 if self._e1 is not None else e
        e2 = self._e2 if self._e2 is not None else e1
        delta = (
            self.gains.kp * (e - e1)
            + self.gains.ki * e * dt
            + self.gains.kd * (e - 2.0 * e1 + e2) / dt
        )
        self._output = _clamp(self._output + delta, self.output_min, self.output_max)
        self._e2, self._e1 = e1, e
        self.steps += 1
        self.last_error = e
        return self._output

    def set_setpoint(self, setpoint: float) -> None:
        """Retarget the controller without a derivative kick.

        The stored error history is *rebased* onto the new setpoint:
        since e = setpoint - pv, shifting every remembered error by the
        setpoint change keeps the (e - e1) and (e - 2*e1 + e2)
        differences exactly what the process variable alone produced.
        Without the rebase, the next update would see the whole setpoint
        step as a one-timestep error jump and the Kp/Kd terms would
        inject a spurious output spike ("derivative kick"); rebased,
        a retarget alone changes the output only through the Ki term.
        """
        shift = setpoint - self.setpoint
        if self._e1 is not None:
            self._e1 += shift
        if self._e2 is not None:
            self._e2 += shift
        self.setpoint = setpoint

    def set_output(self, output: float) -> None:
        """Force the actuator value (e.g. pause migration)."""
        self._output = _clamp(output, self.output_min, self.output_max)

    def reset(self, initial_output: float = 0.0) -> None:
        """Clear history and restart from ``initial_output``."""
        self._output = _clamp(initial_output, self.output_min, self.output_max)
        self._e1 = None
        self._e2 = None
        self.steps = 0
        self.last_error = None


class PositionalPidController:
    """Classical PID computing an absolute output from an error integral.

    Included for the velocity-vs-positional ablation: without
    anti-windup (``windup_limit=None`` disables clamping of the
    integral), an extended period below the setpoint saturates the
    integral term and the controller badly overshoots when load
    arrives — the failure mode Section 4.2.3 describes.
    """

    def __init__(
        self,
        gains: PidGains,
        setpoint: float,
        output_min: float = 0.0,
        output_max: float = 100.0,
        windup_limit: Optional[float] = None,
    ):
        if output_min >= output_max:
            raise ValueError(
                f"output_min {output_min} must be < output_max {output_max}"
            )
        if windup_limit is not None and windup_limit <= 0:
            raise ValueError(f"windup_limit must be positive, got {windup_limit}")
        self.gains = gains
        self.setpoint = setpoint
        self.output_min = output_min
        self.output_max = output_max
        self.windup_limit = windup_limit
        self._integral = 0.0
        self._e1: Optional[float] = None
        self._output = output_min
        self.steps = 0
        #: Error computed by the most recent :meth:`update` (None before
        #: the first step) — read by the observability layer.
        self.last_error: Optional[float] = None

    @property
    def output(self) -> float:
        """Current actuator value (absolute, clamped)."""
        return self._output

    @property
    def integral(self) -> float:
        """Accumulated error integral (inspectable for windup tests)."""
        return self._integral

    def error(self, process_variable: float) -> float:
        """Control error for the given measurement."""
        return self.setpoint - process_variable

    def update(self, process_variable: float, dt: float = 1.0) -> float:
        """Advance one timestep; returns the new absolute output."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        e = self.error(process_variable)
        self._integral += e * dt
        if self.windup_limit is not None:
            self._integral = _clamp(
                self._integral, -self.windup_limit, self.windup_limit
            )
        e1 = self._e1 if self._e1 is not None else e
        derivative = (e - e1) / dt
        raw = (
            self.gains.kp * e
            + self.gains.ki * self._integral
            + self.gains.kd * derivative
        )
        self._output = _clamp(raw, self.output_min, self.output_max)
        self._e1 = e
        self.steps += 1
        self.last_error = e
        return self._output

    def set_setpoint(self, setpoint: float) -> None:
        """Retarget the controller (integral is kept)."""
        self.setpoint = setpoint

    def reset(self) -> None:
        """Clear the integral and error history."""
        self._integral = 0.0
        self._e1 = None
        self._output = self.output_min
        self.steps = 0
        self.last_error = None
