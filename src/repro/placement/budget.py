"""Per-node slack-budget ledger for concurrent migrations.

Slacker's PID throttle discovers a *single* stream's slack: the latency
headroom between the observed baseline and the setpoint.  Run two
migrations that touch the same node and each controller ramps until the
shared setpoint is reached — together they consume the slack twice and
starve each other (the reason the original manager hard-serialized on a
``_migrating`` flag).

The :class:`SlackBudgetLedger` makes that slack an explicit, divisible
resource.  Every node carries a budget normalized to ``capacity``
(1.0 = the whole node's slack).  Each migration stream reserves a
``share`` of the budget at *both* endpoints — outbound slack at the
source, inbound slack at the target — and the reservation's share feeds
the migration's **effective setpoint** (see
:func:`repro.control.tuning.budget_setpoint`): a stream holding half a
node's slack targets half the latency headroom, so the sum of
concurrent targets never exceeds what one serialized migration was
allowed to consume.

The ledger is pure bookkeeping — no simulation state, no randomness —
and records an audit ``history`` of every reserve/release so tests can
prove the invariant: **no node's inbound + outbound reservations ever
exceed its capacity at any simulated time**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BudgetReservation", "BudgetEvent", "SlackBudgetLedger"]

#: Tolerance for float accumulation in capacity checks.
_EPSILON = 1e-9


@dataclass(frozen=True)
class BudgetReservation:
    """One stream's hold on slack at both endpoints of a migration."""

    tenant_id: int
    source: str
    target: str
    #: Fraction of each endpoint's slack budget this stream holds, (0, 1].
    share: float


@dataclass(frozen=True)
class BudgetEvent:
    """One audit-trail entry: a reserve or release at a node."""

    time: float
    node: str
    #: "reserve" or "release".
    action: str
    tenant_id: int
    #: Node budget in use *after* this event.
    used_after: float


class SlackBudgetLedger:
    """Tracks inbound + outbound slack reservations per node.

    ``capacity`` is the per-node budget (1.0 = the node's full slack);
    ``default_share`` is the fraction a single stream reserves when the
    caller does not pick one.  ``default_share=1.0`` reproduces the
    serialized world: one stream per node, full setpoint — the K=1
    bit-identity anchor.
    """

    def __init__(self, capacity: float = 1.0, default_share: float = 1.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 < default_share <= capacity:
            raise ValueError(
                f"default_share must be in (0, {capacity}], got {default_share}"
            )
        self.capacity = capacity
        self.default_share = default_share
        self._used: dict[str, float] = {}
        self._active: dict[int, BudgetReservation] = {}
        #: Audit trail of every reserve/release, in event order.
        self.history: list[BudgetEvent] = []
        #: Highest budget ever observed in use on any node.
        self.peak_used = 0.0

    # -- queries ---------------------------------------------------------

    def used(self, node: str) -> float:
        """Budget currently reserved at a node (inbound + outbound)."""
        return self._used.get(node, 0.0)

    def available(self, node: str) -> float:
        """Budget still free at a node."""
        return self.capacity - self.used(node)

    def active_streams(self) -> int:
        """Number of reservations currently held."""
        return len(self._active)

    def reservation(self, tenant_id: int) -> Optional[BudgetReservation]:
        """The live reservation for a tenant, if any."""
        return self._active.get(tenant_id)

    def reservations(self) -> tuple[BudgetReservation, ...]:
        """All live reservations, in admission order."""
        return tuple(self._active.values())

    def can_admit(self, source: str, target: str, share: float) -> bool:
        """Whether both endpoints can absorb a stream of ``share``."""
        if share <= 0:
            return False
        return (
            self.used(source) + share <= self.capacity + _EPSILON
            and self.used(target) + share <= self.capacity + _EPSILON
        )

    # -- mutation --------------------------------------------------------

    def reserve(
        self,
        tenant_id: int,
        source: str,
        target: str,
        share: Optional[float] = None,
        time: float = 0.0,
    ) -> BudgetReservation:
        """Reserve ``share`` of slack at both endpoints.

        Raises :class:`ValueError` on oversubscription or a duplicate
        tenant reservation — the executor must check :meth:`can_admit`
        first; the raise is the invariant's last line of defense.
        """
        share = self.default_share if share is None else share
        if tenant_id in self._active:
            raise ValueError(f"tenant {tenant_id} already holds a reservation")
        if source == target:
            raise ValueError(f"source and target are both {source!r}")
        if not self.can_admit(source, target, share):
            raise ValueError(
                f"budget oversubscribed: {source}={self.used(source):.3f} "
                f"{target}={self.used(target):.3f} + share {share:.3f} "
                f"> capacity {self.capacity:.3f}"
            )
        reservation = BudgetReservation(
            tenant_id=tenant_id, source=source, target=target, share=share
        )
        self._active[tenant_id] = reservation
        for node in (source, target):
            after = self.used(node) + share
            self._used[node] = after
            self.peak_used = max(self.peak_used, after)
            self.history.append(
                BudgetEvent(
                    time=time,
                    node=node,
                    action="reserve",
                    tenant_id=tenant_id,
                    used_after=after,
                )
            )
        return reservation

    def release(self, reservation: BudgetReservation, time: float = 0.0) -> None:
        """Return a reservation's slack to both endpoints.  Idempotent."""
        live = self._active.pop(reservation.tenant_id, None)
        if live is None:
            return
        for node in (reservation.source, reservation.target):
            after = max(0.0, self.used(node) - reservation.share)
            self._used[node] = after
            self.history.append(
                BudgetEvent(
                    time=time,
                    node=node,
                    action="release",
                    tenant_id=reservation.tenant_id,
                    used_after=after,
                )
            )

    # -- audit -----------------------------------------------------------

    def oversubscriptions(self) -> list[BudgetEvent]:
        """History entries that exceeded capacity (must be empty)."""
        return [
            event
            for event in self.history
            if event.used_after > self.capacity + _EPSILON
        ]
