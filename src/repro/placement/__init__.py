"""Placement: when to migrate, which tenant, and where to.

The paper's Section 8 lists these as synergistic questions around
Slacker's "how".  This subpackage provides load monitoring, hotspot
detection, tenant/target choosers, and an autonomous rebalancing
manager built on Slacker's latency-aware migrations — scaled out by a
wave planner/executor that runs concurrent migrations under per-node
slack budgets (docs/FLEET.md).
"""

from .budget import BudgetEvent, BudgetReservation, SlackBudgetLedger
from .costs import CostEstimate, CostParameters, MigrationCostBenefit
from .decisions import DrainReport, PlacementDecision, PlacementStats
from .executor import WaveExecutor, WavePlanner
from .manager import PlacementManager
from .monitor import LoadMonitor, NodeLoad, TenantLoad
from .policy import (
    ConsolidationChooser,
    GreedyReliefChooser,
    HotspotDetector,
    LatencyHotspotDetector,
    MigrationProposal,
    PlacementChooser,
    UtilizationHotspotDetector,
)

__all__ = [
    "BudgetEvent",
    "BudgetReservation",
    "ConsolidationChooser",
    "CostEstimate",
    "CostParameters",
    "DrainReport",
    "MigrationCostBenefit",
    "GreedyReliefChooser",
    "HotspotDetector",
    "LatencyHotspotDetector",
    "LoadMonitor",
    "MigrationProposal",
    "NodeLoad",
    "PlacementChooser",
    "PlacementDecision",
    "PlacementManager",
    "PlacementStats",
    "SlackBudgetLedger",
    "TenantLoad",
    "UtilizationHotspotDetector",
    "WaveExecutor",
    "WavePlanner",
]
