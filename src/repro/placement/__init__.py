"""Placement: when to migrate, which tenant, and where to.

The paper's Section 8 lists these as synergistic questions around
Slacker's "how".  This subpackage provides load monitoring, hotspot
detection, tenant/target choosers, and an autonomous rebalancing
manager built on Slacker's latency-aware migrations.
"""

from .costs import CostEstimate, CostParameters, MigrationCostBenefit
from .manager import PlacementDecision, PlacementManager
from .monitor import LoadMonitor, NodeLoad, TenantLoad
from .policy import (
    ConsolidationChooser,
    GreedyReliefChooser,
    HotspotDetector,
    LatencyHotspotDetector,
    MigrationProposal,
    PlacementChooser,
    UtilizationHotspotDetector,
)

__all__ = [
    "ConsolidationChooser",
    "CostEstimate",
    "CostParameters",
    "MigrationCostBenefit",
    "GreedyReliefChooser",
    "HotspotDetector",
    "LatencyHotspotDetector",
    "LoadMonitor",
    "MigrationProposal",
    "NodeLoad",
    "PlacementChooser",
    "PlacementDecision",
    "PlacementManager",
    "TenantLoad",
    "UtilizationHotspotDetector",
]
