"""Wave planning and execution: concurrent migrations under slack budgets.

The original manager hard-serialized on a ``_migrating`` flag — correct
(two PID throttles on one node each consume the slack the other is
discovering) but hopeless at fleet scale, where draining a node or
rebalancing a hundred-node cluster must run many transfers at once.

The refactor splits the old detect-propose-execute loop into:

* :class:`WavePlanner` — turns one load snapshot into a *wave* of
  non-conflicting :class:`~repro.placement.policy.MigrationProposal`s
  (no node or tenant appears twice in a wave);
* :class:`WaveExecutor` — admits proposals against the per-node
  :class:`~repro.placement.budget.SlackBudgetLedger` and a fleet-wide
  concurrency cap, then runs each admitted migration as its own
  process.  A stream's budget share scales its latency setpoint via
  :func:`repro.control.tuning.budget_setpoint`, so concurrent
  transfers split a node's slack instead of fighting over it.

The executor is the **only** placement module allowed to call
``node.migrate_tenant`` (lint rule SLK106): every migration the
placement layer starts is visible to the ledger, so the oversubscription
invariant holds by construction.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..control.tuning import budget_setpoint
from ..middleware.cluster import SlackerCluster
from ..migration.live import MigrationAborted
from .budget import BudgetReservation, SlackBudgetLedger
from .decisions import PlacementDecision, PlacementStats
from .monitor import NodeLoad
from .policy import HotspotDetector, MigrationProposal, PlacementChooser

__all__ = ["WavePlanner", "WaveExecutor"]

#: Tolerance for float accumulation in budget comparisons.
_EPSILON = 1e-9


class WavePlanner:
    """Turns one load snapshot into a wave of non-conflicting proposals.

    Detection order and chooser inputs reproduce the legacy serialized
    manager exactly when nothing is busy: the first proposal of a
    ``plan(..., max_proposals=1)`` call is the proposal the old
    ``PlacementManager.step`` would have executed.
    """

    def __init__(self, detector: HotspotDetector, chooser: PlacementChooser):
        self.detector = detector
        self.chooser = chooser

    def plan(
        self,
        loads: dict[str, NodeLoad],
        busy_tenants: Iterable[int] = (),
        busy_nodes: Iterable[str] = (),
        excluded_targets: Iterable[str] = (),
        max_proposals: Optional[int] = None,
    ) -> list[MigrationProposal]:
        """One detector-driven wave for the given snapshot.

        ``busy_tenants``/``busy_nodes`` are already migrating (or
        budget-saturated) and are planned around; ``excluded_targets``
        (draining or dead nodes) never receive tenants.  Each proposal
        claims its tenant and both endpoints, so the wave is
        conflict-free by construction.
        """
        claimed_nodes = set(busy_nodes)
        claimed_tenants = set(busy_tenants)
        excluded = set(excluded_targets)
        wave: list[MigrationProposal] = []
        for hot in self.detector.hot_nodes(loads):
            if max_proposals is not None and len(wave) >= max_proposals:
                break
            if hot in claimed_nodes:
                continue
            visible = {
                name: load
                for name, load in loads.items()
                if name == hot
                or (name not in claimed_nodes and name not in excluded)
            }
            proposal = self.chooser.propose(hot, visible)
            if proposal is None or proposal.tenant_id in claimed_tenants:
                continue
            wave.append(proposal)
            claimed_nodes.update((proposal.source, proposal.target))
            claimed_tenants.add(proposal.tenant_id)
        return wave

    def plan_drain(
        self,
        source: str,
        loads: dict[str, NodeLoad],
        busy_tenants: Iterable[int] = (),
        excluded_targets: Iterable[str] = (),
        max_proposals: Optional[int] = None,
    ) -> list[MigrationProposal]:
        """A wave evacuating every remaining tenant of ``source``.

        Targets are the alive, non-excluded nodes; tenants are spread
        by projected (tenant count, data bytes) so one wave does not
        pile a whole node onto the single coolest neighbour.  Biggest
        data directories go first: the longest transfers start
        earliest, so the drain's makespan tracks the largest tenant
        rather than the sum.
        """
        source_load = loads.get(source)
        if source_load is None:
            return []
        claimed = set(busy_tenants)
        excluded = set(excluded_targets) | {source}
        targets = [
            load
            for name, load in loads.items()
            if name not in excluded and load.alive
        ]
        if not targets:
            return []
        # Projected per-target pressure (count, bytes) as this wave is
        # laid out, seeded from the snapshot.
        projected: dict[str, list[float]] = {
            load.node: [
                float(load.tenant_count),
                float(sum(t.data_bytes for t in load.tenants)),
            ]
            for load in targets
        }
        pending = sorted(
            (t for t in source_load.tenants if t.tenant_id not in claimed),
            key=lambda t: (-t.data_bytes, t.tenant_id),
        )
        wave: list[MigrationProposal] = []
        for tenant in pending:
            if max_proposals is not None and len(wave) >= max_proposals:
                break
            name = min(
                projected,
                key=lambda n: (projected[n][0], projected[n][1], n),
            )
            projected[name][0] += 1.0
            projected[name][1] += float(tenant.data_bytes)
            wave.append(
                MigrationProposal(
                    tenant_id=tenant.tenant_id,
                    source=source,
                    target=name,
                    reason=f"drain {source}: tenant {tenant.tenant_id} to {name}",
                )
            )
        return wave


class WaveExecutor:
    """Admits and runs waves of migrations under the slack-budget ledger.

    ``max_concurrent`` caps fleet-wide in-flight migrations;
    ``max_streams_per_node`` fixes each stream's budget share at
    ``capacity / max_streams_per_node``, which in turn scales the
    stream's effective latency setpoint.  With both at 1 the executor's
    serialized path (:meth:`execute_serial`) is bit-identical to the
    pre-wave manager.
    """

    def __init__(
        self,
        cluster: SlackerCluster,
        setpoint: float,
        stats: Optional[PlacementStats] = None,
        ledger: Optional[SlackBudgetLedger] = None,
        cooldown: float = 30.0,
        max_concurrent: int = 1,
        max_streams_per_node: int = 1,
        obs=None,
    ):
        if setpoint <= 0:
            raise ValueError(f"setpoint must be positive, got {setpoint}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_streams_per_node < 1:
            raise ValueError(
                f"max_streams_per_node must be >= 1, got {max_streams_per_node}"
            )
        self.cluster = cluster
        self.setpoint = setpoint
        self.stats = stats if stats is not None else PlacementStats()
        self.ledger = ledger if ledger is not None else SlackBudgetLedger()
        self.cooldown = cooldown
        self.max_concurrent = max_concurrent
        self.max_streams_per_node = max_streams_per_node
        #: Budget share each admitted stream reserves at both endpoints.
        self.share = self.ledger.capacity / max_streams_per_node
        self.obs = obs
        #: tenant_id -> in-flight migration process.
        self.active: dict[int, object] = {}
        #: Global rest applied by the serialized path (legacy semantics).
        self.cooldown_until = 0.0
        self._node_cooldown_until: dict[str, float] = {}

    # -- queries ---------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self.active)

    def busy_tenants(self) -> frozenset[int]:
        """Tenants currently mid-migration."""
        return frozenset(self.active)

    def blocked_nodes(self, now: float) -> set[str]:
        """Nodes that cannot take another stream right now.

        A node is blocked while it rests in its post-migration cooldown
        or while its remaining budget cannot fit one more share.
        """
        blocked = {
            node
            for node, until in self._node_cooldown_until.items()
            if now < until
        }
        for reservation in self.ledger.reservations():
            for node in (reservation.source, reservation.target):
                if self.ledger.available(node) < self.share - _EPSILON:
                    blocked.add(node)
        return blocked

    def active_for_node(self, node: str) -> int:
        """In-flight migrations touching ``node`` (either endpoint)."""
        return sum(
            1
            for r in self.ledger.reservations()
            if node in (r.source, r.target)
        )

    # -- serialized path (legacy semantics, K = 1) -----------------------

    def execute_serial(self, proposal: MigrationProposal):
        """Process: run one migration inline, blocking the caller.

        This is the pre-wave ``PlacementManager._execute`` verbatim —
        same checks, same event sequence, full-capacity budget share so
        the setpoint passes through untouched — plus the abort fix:
        a mid-flight :class:`MigrationAborted` now records an
        ``"aborted"`` decision, counts in stats, and still applies the
        cooldown instead of crashing the control loop.
        """
        env = self.cluster.env
        source = self.cluster.node(proposal.source)
        if proposal.tenant_id not in source.registry:
            self.stats.skipped += 1
            self.stats.decisions.append(
                PlacementDecision(
                    time=env.now,
                    proposal=proposal,
                    executed=False,
                    outcome="skipped",
                )
            )
            return
        reservation = self.ledger.reserve(
            proposal.tenant_id,
            proposal.source,
            proposal.target,
            share=self.ledger.capacity,
            time=env.now,
        )
        decision = PlacementDecision(
            time=env.now, proposal=proposal, executed=False
        )
        self.stats.decisions.append(decision)
        try:
            result = yield env.process(
                source.migrate_tenant(
                    proposal.tenant_id,
                    proposal.target,
                    setpoint=self.setpoint,
                    chunks=proposal.chunks or None,
                )
            )
        except MigrationAborted:
            decision.outcome = "aborted"
            self.stats.aborted += 1
            self.cooldown_until = env.now + self.cooldown
            if self.obs is not None:
                self.obs.on_fleet_migration(aborted=True)
            return
        finally:
            self.ledger.release(reservation, time=env.now)
        self.cooldown_until = env.now + self.cooldown
        self.stats.migrations += 1
        decision.executed = True
        decision.outcome = "completed"
        decision.duration = result.duration
        decision.downtime = result.downtime
        if self.obs is not None:
            self.obs.on_fleet_migration(aborted=False, seconds=result.duration)

    # -- wave path (K > 1, drains, rebalancing) --------------------------

    def launch_wave(
        self,
        proposals: Sequence[MigrationProposal],
        respect_cooldown: bool = True,
        setpoint: Optional[float] = None,
    ) -> list[PlacementDecision]:
        """Admit and start as many proposals as budget allows.

        Proposals are considered in order; each is admitted only if the
        fleet-wide cap has room, its tenant is not already moving, both
        endpoints are out of cooldown (unless ``respect_cooldown`` is
        off — drains do not rest), and the ledger can fit one more
        share at both endpoints.  Returns the decisions actually
        launched; budget-deferred proposals are simply re-planned next
        wave, while stale ones (tenant already gone) record a skip.
        """
        env = self.cluster.env
        now = env.now
        launched: list[PlacementDecision] = []
        for proposal in proposals:
            if len(self.active) >= self.max_concurrent:
                break
            if proposal.tenant_id in self.active:
                continue
            if respect_cooldown and (
                now < self._node_cooldown_until.get(proposal.source, 0.0)
                or now < self._node_cooldown_until.get(proposal.target, 0.0)
            ):
                continue
            source = self.cluster.node(proposal.source)
            if not source.alive:
                continue
            if proposal.tenant_id not in source.registry:
                self.stats.skipped += 1
                self.stats.decisions.append(
                    PlacementDecision(
                        time=now,
                        proposal=proposal,
                        executed=False,
                        outcome="skipped",
                    )
                )
                continue
            if not self.ledger.can_admit(
                proposal.source, proposal.target, self.share
            ):
                continue
            reservation = self.ledger.reserve(
                proposal.tenant_id,
                proposal.source,
                proposal.target,
                share=self.share,
                time=now,
            )
            decision = PlacementDecision(
                time=now, proposal=proposal, executed=False
            )
            self.stats.decisions.append(decision)
            process = env.process(
                self._run_one(proposal, reservation, decision, setpoint)
            )
            self.active[proposal.tenant_id] = process
            launched.append(decision)
        if launched:
            self.stats.waves += 1
            if self.obs is not None:
                self.obs.on_wave(len(launched))
        return launched

    def _run_one(
        self,
        proposal: MigrationProposal,
        reservation: BudgetReservation,
        decision: PlacementDecision,
        setpoint: Optional[float] = None,
    ):
        """Process: one budgeted migration, releasing its share at exit."""
        env = self.cluster.env
        source = self.cluster.node(proposal.source)
        base = self.setpoint if setpoint is None else setpoint
        effective = budget_setpoint(
            base, reservation.share / self.ledger.capacity
        )
        try:
            result = yield env.process(
                source.migrate_tenant(
                    proposal.tenant_id,
                    proposal.target,
                    setpoint=effective,
                    chunks=proposal.chunks or None,
                )
            )
        except MigrationAborted:
            decision.outcome = "aborted"
            self.stats.aborted += 1
            if self.obs is not None:
                self.obs.on_fleet_migration(aborted=True)
        else:
            decision.executed = True
            decision.outcome = "completed"
            decision.duration = result.duration
            decision.downtime = result.downtime
            self.stats.migrations += 1
            if self.obs is not None:
                self.obs.on_fleet_migration(
                    aborted=False, seconds=result.duration
                )
        finally:
            self.active.pop(proposal.tenant_id, None)
            self.ledger.release(reservation, time=env.now)
            rest = env.now + self.cooldown
            self._node_cooldown_until[proposal.source] = rest
            self._node_cooldown_until[proposal.target] = rest

    def settle(self):
        """Process: wait until every in-flight migration has finished."""
        env = self.cluster.env
        while self.active:
            yield env.all_of(tuple(self.active.values()))
