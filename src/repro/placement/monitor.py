"""Load monitoring for placement decisions.

Slacker answers *how* to migrate; the paper's Section 8 lists the
complementary questions — "when migrations are necessary, which tenants
should be migrated, and where such tenants should be migrated to" — as
synergistic future work.  This subpackage implements that layer.

:class:`LoadMonitor` periodically snapshots every node: disk
utilization over the sampling interval (the critical resource,
Section 5.1.2) and each tenant's mean latency over the same interval.
Policies consume these :class:`NodeLoad` snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..middleware.cluster import SlackerCluster
from ..simulation import PeriodicTicker, Series, Trace

__all__ = ["TenantLoad", "NodeLoad", "LoadMonitor"]


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's observed load over a sampling interval."""

    tenant_id: int
    #: Mean transaction latency over the interval, seconds (NaN if no
    #: transaction completed).
    mean_latency: float
    #: Transactions completed in the interval.
    throughput: int
    #: Tenant data directory size, bytes (migration cost proxy).
    data_bytes: int

    @property
    def is_idle(self) -> bool:
        """True when no transaction completed in the interval.

        Idle tenants have no latency signal (``mean_latency`` is NaN);
        policies must filter on this predicate rather than comparing
        against NaN, which silently fails every ordering test.
        """
        return self.throughput == 0


@dataclass(frozen=True)
class NodeLoad:
    """One node's observed load over a sampling interval."""

    node: str
    time: float
    #: Disk busy fraction over the interval, in [0, 1].
    disk_utilization: float
    tenants: tuple[TenantLoad, ...] = field(default_factory=tuple)
    #: Whether the node's middleware daemon was up at snapshot time.
    #: Placement policies must not pick a dead node as a target.
    alive: bool = True

    @property
    def tenant_count(self) -> int:
        return len(self.tenants)

    def active_tenants(self) -> tuple[TenantLoad, ...]:
        """Tenants that completed at least one transaction (non-idle).

        The latency signal only exists for these; idle tenants carry a
        NaN ``mean_latency`` that would poison any max/sort over it.
        """
        return tuple(t for t in self.tenants if not t.is_idle)

    def hottest_tenant(self) -> Optional[TenantLoad]:
        """The tenant with the highest interval latency, if any."""
        candidates = self.active_tenants()
        if not candidates:
            return None
        return max(candidates, key=lambda t: t.mean_latency)


class LoadMonitor:
    """Snapshots cluster load at a fixed interval.

    Latency series are the ones workload clients attach to nodes (the
    same series the migration PID consumes), so the monitor sees
    exactly what the controller sees.
    """

    def __init__(
        self,
        cluster: SlackerCluster,
        trace: Trace,
        interval: float = 10.0,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.cluster = cluster
        self.trace = trace
        self.interval = interval
        self._last_busy: dict[str, float] = {}
        self._last_time: dict[str, float] = {}
        self.history: list[dict[str, NodeLoad]] = []

    def _tenant_series(self, tenant_id: int) -> Optional[Series]:
        name = f"tenant-{tenant_id}"
        return self.trace[name] if name in self.trace else None

    def snapshot(self) -> dict[str, NodeLoad]:
        """Take one load snapshot of every node (interval-differenced)."""
        env = self.cluster.env
        now = env.now
        loads: dict[str, NodeLoad] = {}
        for name, node in self.cluster.nodes.items():
            busy = node.server.disk.stats.busy_time
            last_busy = self._last_busy.get(name, 0.0)
            last_time = self._last_time.get(name, 0.0)
            span = now - last_time
            utilization = (busy - last_busy) / span if span > 0 else 0.0
            self._last_busy[name] = busy
            self._last_time[name] = now

            tenants = []
            for tenant in node.registry:
                series = self._tenant_series(tenant.tenant_id)
                values = (
                    series.window_values(now - self.interval, now)
                    if series is not None
                    else []
                )
                mean = sum(values) / len(values) if values else float("nan")
                tenants.append(
                    TenantLoad(
                        tenant_id=tenant.tenant_id,
                        mean_latency=mean,
                        throughput=len(values),
                        data_bytes=tenant.data_bytes,
                    )
                )
            loads[name] = NodeLoad(
                node=name,
                time=now,
                disk_utilization=min(1.0, max(0.0, utilization)),
                tenants=tuple(sorted(tenants, key=lambda t: t.tenant_id)),
                alive=getattr(node, "alive", True),
            )
        self.history.append(loads)
        return loads

    def dead_nodes(self, loads: Optional[dict[str, NodeLoad]] = None) -> list[str]:
        """Nodes whose daemon was down in the given (or latest) snapshot."""
        if loads is None:
            loads = self.history[-1] if self.history else {}
        return sorted(name for name, load in loads.items() if not load.alive)

    def run(self):
        """Process: snapshot forever at the configured interval.

        Every tick does real work (the snapshot), so there is nothing
        to elide; the ticker keeps the sample grid on the kernel's
        coalesced-timer API with exact chained-addition timestamps.
        """
        ticker = PeriodicTicker(self.cluster.env, self.interval)
        while True:
            yield ticker.tick()
            self.snapshot()
