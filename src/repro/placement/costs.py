"""Migration economics: is a migration worth its cost?

Section 1.3 of the paper frames migration as a cost/benefit decision:
"the benefits of migration come with several costs ... the unavoidable
cost is that of copying the tenant's data ... SLA-related costs (e.g.,
SLA penalty due to system downtime and unacceptable query latency) and
human-related costs (e.g., costs for experienced DBAs)".  Slacker
drives the human cost toward zero and the interference cost toward the
setpoint's; this module makes the remaining comparison explicit.

:class:`MigrationCostBenefit` compares, over a planning horizon:

* **cost of staying** — the SLA penalties the hot server is currently
  accruing, projected forward; versus
* **cost of migrating** — penalties expected *during* the migration
  (driven by the setpoint's relation to the SLA bound) plus a fixed
  operational cost per migration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.sla import LatencySla, SlaMonitor
from ..simulation.trace import Series

__all__ = ["CostParameters", "CostEstimate", "MigrationCostBenefit"]


@dataclass(frozen=True)
class CostParameters:
    """Monetary knobs of the decision."""

    #: Penalty charged per violated SLA accounting window.
    penalty_per_window: float = 1.0
    #: SLA accounting window length, seconds.
    window: float = 10.0
    #: Fixed operational cost per migration (provisioning, risk; the
    #: "experienced DBA" line item driven low by automation).
    migration_fixed_cost: float = 0.5
    #: Planning horizon over which staying costs are projected, seconds.
    horizon: float = 3600.0

    def __post_init__(self) -> None:
        if self.penalty_per_window < 0 or self.migration_fixed_cost < 0:
            raise ValueError("costs must be non-negative")
        if self.window <= 0 or self.horizon <= 0:
            raise ValueError("window and horizon must be positive")


@dataclass(frozen=True)
class CostEstimate:
    """The two sides of the decision, in penalty units."""

    cost_of_staying: float
    cost_of_migrating: float
    expected_migration_seconds: float
    observed_violation_rate: float

    @property
    def net_benefit(self) -> float:
        """Positive means the migration pays for itself."""
        return self.cost_of_staying - self.cost_of_migrating

    @property
    def worthwhile(self) -> bool:
        return self.net_benefit > 0


class MigrationCostBenefit:
    """Estimates both sides of the migrate-or-stay decision."""

    def __init__(
        self,
        sla: LatencySla,
        params: CostParameters | None = None,
    ):
        self.sla = sla
        self.params = params or CostParameters()
        self._monitor = SlaMonitor(
            sla, window=self.params.window, penalty=self.params.penalty_per_window
        )

    def observed_violation_rate(
        self, latency: Series, start: float, end: float
    ) -> float:
        """Fraction of recent accounting windows that violated the SLA."""
        reports = self._monitor.evaluate(latency, start, end)
        # Idle windows (no completed transaction) carry no latency
        # signal; counting them either way would skew the rate, so they
        # are excluded — the same idle-filtering discipline as
        # NodeLoad.active_tenants().
        measured = [r for r in reports if r.transactions > 0]
        if not measured:
            return 0.0
        return sum(1 for r in measured if not r.satisfied) / len(measured)

    def expected_migration_seconds(
        self, data_bytes: int, expected_rate: float
    ) -> float:
        """Projected migration duration at the expected average rate."""
        if data_bytes < 0:
            raise ValueError(f"data_bytes must be >= 0, got {data_bytes}")
        if expected_rate <= 0:
            raise ValueError(f"expected_rate must be positive, got {expected_rate}")
        return data_bytes / expected_rate

    def estimate(
        self,
        latency: Series,
        now: float,
        lookback: float,
        data_bytes: int,
        expected_rate: float,
        setpoint: float,
    ) -> CostEstimate:
        """Compare staying vs. migrating for a tenant.

        ``setpoint`` matters because the migration's own interference is
        bounded by it: with a setpoint at or below the SLA bound, the
        controller keeps the server SLA-clean during the move; a
        setpoint above the bound converts every migration window into a
        likely violation.
        """
        params = self.params
        violation_rate = self.observed_violation_rate(
            latency, max(0.0, now - lookback), now
        )
        windows_per_horizon = params.horizon / params.window
        cost_staying = (
            violation_rate * windows_per_horizon * params.penalty_per_window
        )

        duration = self.expected_migration_seconds(data_bytes, expected_rate)
        migration_windows = math.ceil(duration / params.window)
        if setpoint <= self.sla.bound:
            # The controller holds latency near the setpoint, under the
            # bound: expect roughly the pre-existing violation rate.
            migration_violation_rate = violation_rate
        else:
            migration_violation_rate = 1.0
        cost_migrating = (
            migration_violation_rate * migration_windows * params.penalty_per_window
            + params.migration_fixed_cost
        )
        return CostEstimate(
            cost_of_staying=cost_staying,
            cost_of_migrating=cost_migrating,
            expected_migration_seconds=duration,
            observed_violation_rate=violation_rate,
        )
