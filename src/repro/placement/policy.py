"""Placement policies: when to migrate, which tenant, and where to.

Two detectors and two choosers, composable by the
:class:`~repro.placement.manager.PlacementManager`:

* :class:`LatencyHotspotDetector` — "when": a node is hot once its
  tenants' latency breaches an SLA-derived threshold for consecutive
  snapshots (debounced, so a single burst does not trigger a
  migration).
* :class:`UtilizationHotspotDetector` — "when": disk utilization
  threshold, the Eq. 1 view.
* :class:`GreedyReliefChooser` — "which"/"where" for hotspot relief:
  move the hottest (latency-wise) tenant, tie-broken toward the
  smallest data directory (cheapest to move), to the least-utilized
  node with headroom.
* :class:`ConsolidationChooser` — "which"/"where" for packing: drain
  the least-loaded node onto the fullest node that still has headroom
  (first-fit-decreasing flavoured), freeing servers to power down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from .monitor import NodeLoad

__all__ = [
    "MigrationProposal",
    "HotspotDetector",
    "LatencyHotspotDetector",
    "UtilizationHotspotDetector",
    "PlacementChooser",
    "GreedyReliefChooser",
    "ConsolidationChooser",
]


@dataclass(frozen=True)
class MigrationProposal:
    """A policy's suggestion: move ``tenant_id`` from ``source`` to ``target``."""

    tenant_id: int
    source: str
    target: str
    reason: str
    #: Fluid chunk count; 0 = whole-tenant live migration.
    chunks: int = 0


class HotspotDetector(Protocol):
    """Decides *when* a node needs relief."""

    def hot_nodes(self, loads: dict[str, NodeLoad]) -> list[str]:
        """Names of nodes currently needing relief."""
        ...  # pragma: no cover


class LatencyHotspotDetector:
    """A node is hot when its worst tenant latency exceeds a threshold
    for ``patience`` consecutive snapshots."""

    def __init__(self, latency_threshold: float, patience: int = 2):
        if latency_threshold <= 0:
            raise ValueError(
                f"latency_threshold must be positive, got {latency_threshold}"
            )
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.latency_threshold = latency_threshold
        self.patience = patience
        self._streak: dict[str, int] = {}

    def hot_nodes(self, loads: dict[str, NodeLoad]) -> list[str]:
        hot = []
        for name, load in loads.items():
            # hottest_tenant() already excludes idle tenants, so its
            # latency is a real number whenever it is not None.
            worst = load.hottest_tenant()
            breached = (
                worst is not None
                and worst.mean_latency > self.latency_threshold
            )
            if breached:
                self._streak[name] = self._streak.get(name, 0) + 1
            else:
                self._streak[name] = 0
            if self._streak[name] >= self.patience:
                hot.append(name)
        return hot


class UtilizationHotspotDetector:
    """A node is hot when disk utilization exceeds a threshold for
    ``patience`` consecutive snapshots (the Eq. 1 resource view)."""

    def __init__(self, utilization_threshold: float = 0.85, patience: int = 2):
        if not 0 < utilization_threshold <= 1:
            raise ValueError(
                f"utilization_threshold must be in (0, 1], got {utilization_threshold}"
            )
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.utilization_threshold = utilization_threshold
        self.patience = patience
        self._streak: dict[str, int] = {}

    def hot_nodes(self, loads: dict[str, NodeLoad]) -> list[str]:
        hot = []
        for name, load in loads.items():
            if load.disk_utilization > self.utilization_threshold:
                self._streak[name] = self._streak.get(name, 0) + 1
            else:
                self._streak[name] = 0
            if self._streak[name] >= self.patience:
                hot.append(name)
        return hot


class PlacementChooser(Protocol):
    """Decides *which* tenant moves and *where*."""

    def propose(
        self, hot: str, loads: dict[str, NodeLoad]
    ) -> Optional[MigrationProposal]:
        """A proposal for relieving ``hot``, or None if impossible."""
        ...  # pragma: no cover


class GreedyReliefChooser:
    """Move the hottest tenant off a hot node to the coolest node."""

    def __init__(self, target_headroom: float = 0.7):
        if not 0 < target_headroom <= 1:
            raise ValueError(
                f"target_headroom must be in (0, 1], got {target_headroom}"
            )
        #: A target is eligible while its utilization stays below this.
        self.target_headroom = target_headroom

    def propose(
        self, hot: str, loads: dict[str, NodeLoad]
    ) -> Optional[MigrationProposal]:
        load = loads[hot]
        if load.tenant_count < 2 and len(loads) > 1:
            # A lone tenant gains nothing from neighbours leaving, but
            # still benefits from moving to an idle node if one exists.
            pass
        # Only tenants with a latency signal can be ranked; an idle
        # tenant (NaN latency) is never the one causing the hotspot.
        candidates = load.active_tenants()
        if not candidates:
            return None
        # Hottest first; among near-equals prefer the cheapest to move.
        victim = max(
            candidates, key=lambda t: (t.mean_latency, -t.data_bytes)
        )
        targets = [
            other
            for name, other in loads.items()
            if name != hot and other.disk_utilization < self.target_headroom
        ]
        if not targets:
            return None
        target = min(targets, key=lambda n: (n.disk_utilization, n.tenant_count))
        return MigrationProposal(
            tenant_id=victim.tenant_id,
            source=hot,
            target=target.node,
            reason=(
                f"hotspot relief: tenant {victim.tenant_id} at "
                f"{victim.mean_latency * 1000:.0f} ms on {hot}; "
                f"{target.node} at {target.disk_utilization:.0%} util"
            ),
        )


class ConsolidationChooser:
    """Drain the least-loaded node onto the fullest eligible node."""

    def __init__(
        self,
        max_target_utilization: float = 0.5,
        min_source_utilization: float = 0.25,
    ):
        if not 0 < max_target_utilization <= 1:
            raise ValueError("max_target_utilization must be in (0, 1]")
        if not 0 <= min_source_utilization < 1:
            raise ValueError("min_source_utilization must be in [0, 1)")
        self.max_target_utilization = max_target_utilization
        self.min_source_utilization = min_source_utilization

    def candidate_source(self, loads: dict[str, NodeLoad]) -> Optional[str]:
        """The node worth draining: least-loaded, non-empty, idle enough."""
        nonempty = [
            load
            for load in loads.values()
            if load.tenant_count > 0
            and load.disk_utilization < self.min_source_utilization
        ]
        if len(nonempty) < 1 or len(loads) < 2:
            return None
        return min(nonempty, key=lambda n: (n.tenant_count, n.disk_utilization)).node

    def propose(
        self, source: str, loads: dict[str, NodeLoad]
    ) -> Optional[MigrationProposal]:
        load = loads[source]
        if load.tenant_count == 0:
            return None
        # Smallest tenant first: cheapest step toward an empty node.
        victim = min(load.tenants, key=lambda t: t.data_bytes)
        targets = [
            other
            for name, other in loads.items()
            if name != source
            and other.disk_utilization < self.max_target_utilization
        ]
        if not targets:
            return None
        # Fullest eligible target: pack, don't spread.
        target = max(targets, key=lambda n: (n.tenant_count, n.disk_utilization))
        return MigrationProposal(
            tenant_id=victim.tenant_id,
            source=source,
            target=target.node,
            reason=(
                f"consolidation: drain {source} "
                f"({load.tenant_count} tenants at "
                f"{load.disk_utilization:.0%} util) onto {target.node}"
            ),
        )
