"""Shared placement record types: decisions, stats, drain reports.

Lives below both the manager and the wave executor so each can append
to the same :class:`PlacementStats` without a circular import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .policy import MigrationProposal

__all__ = ["PlacementDecision", "PlacementStats", "DrainReport"]


@dataclass
class PlacementDecision:
    """One executed (or skipped/aborted) rebalancing decision.

    ``outcome`` is the authoritative disposition:

    * ``"pending"`` — the migration is still in flight;
    * ``"completed"`` — finished; ``duration``/``downtime`` are set;
    * ``"aborted"`` — the migration rolled back mid-flight (crash,
      dead peer, injected abort); the tenant stayed at the source;
    * ``"skipped"`` — the proposal was stale (tenant already gone).

    ``executed`` is kept as the legacy boolean view
    (``outcome == "completed"``) for pre-wave callers.
    """

    time: float
    proposal: MigrationProposal
    executed: bool
    duration: Optional[float] = None
    downtime: Optional[float] = None
    outcome: str = "pending"


@dataclass
class PlacementStats:
    """Running counters for one manager/executor pair."""

    snapshots: int = 0
    migrations: int = 0
    skipped: int = 0
    #: Migrations that started but rolled back (MigrationAborted).
    aborted: int = 0
    #: Waves that launched at least one migration.
    waves: int = 0
    decisions: list[PlacementDecision] = field(default_factory=list)


@dataclass(frozen=True)
class DrainReport:
    """Outcome of one ``PlacementManager.drain`` run."""

    node: str
    #: Simulated seconds from drain start to the last tenant leaving
    #: (or to giving up).
    duration: float
    #: Migrations completed on behalf of this drain.
    migrations: int
    #: Migrations aborted during the drain (retried in later waves).
    aborted: int
    #: Tenants still on the node when the drain returned (0 = success).
    remaining: int

    @property
    def drained(self) -> bool:
        return self.remaining == 0
