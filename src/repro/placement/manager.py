"""The placement manager: an autonomous rebalancing control loop.

Glues the monitor and policies to Slacker's migration machinery: every
snapshot interval it asks the detector *when* relief is needed, the
chooser *which/where*, and then executes at most one latency-aware
migration at a time (serialized — concurrent migrations would each
consume the slack the other's PID is trying to discover).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..middleware.cluster import SlackerCluster
from ..simulation import Trace
from .monitor import LoadMonitor
from .policy import (
    GreedyReliefChooser,
    HotspotDetector,
    LatencyHotspotDetector,
    MigrationProposal,
    PlacementChooser,
)

__all__ = ["PlacementDecision", "PlacementManager"]


@dataclass
class PlacementDecision:
    """One executed (or skipped) rebalancing decision."""

    time: float
    proposal: MigrationProposal
    executed: bool
    duration: Optional[float] = None
    downtime: Optional[float] = None


@dataclass
class PlacementStats:
    """Running counters for one manager."""

    snapshots: int = 0
    migrations: int = 0
    skipped: int = 0
    decisions: list[PlacementDecision] = field(default_factory=list)


class PlacementManager:
    """Periodically detects hotspots and migrates tenants to fix them."""

    def __init__(
        self,
        cluster: SlackerCluster,
        trace: Trace,
        setpoint: float,
        detector: Optional[HotspotDetector] = None,
        chooser: Optional[PlacementChooser] = None,
        interval: float = 10.0,
        cooldown: float = 30.0,
    ):
        if setpoint <= 0:
            raise ValueError(f"setpoint must be positive, got {setpoint}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.cluster = cluster
        self.monitor = LoadMonitor(cluster, trace, interval=interval)
        self.setpoint = setpoint
        self.detector = detector or LatencyHotspotDetector(
            latency_threshold=setpoint
        )
        self.chooser = chooser or GreedyReliefChooser()
        self.cooldown = cooldown
        self.stats = PlacementStats()
        self._migrating = False
        self._cooldown_until = 0.0

    def step(self):
        """Process: one monitor snapshot + at most one migration."""
        env = self.cluster.env
        loads = self.monitor.snapshot()
        self.stats.snapshots += 1
        if self._migrating or env.now < self._cooldown_until:
            return
        for hot in self.detector.hot_nodes(loads):
            proposal = self.chooser.propose(hot, loads)
            if proposal is None:
                continue
            yield from self._execute(proposal)
            break  # one migration per step

    def _execute(self, proposal: MigrationProposal):
        env = self.cluster.env
        source = self.cluster.node(proposal.source)
        if proposal.tenant_id not in source.registry:
            self.stats.skipped += 1
            self.stats.decisions.append(
                PlacementDecision(time=env.now, proposal=proposal, executed=False)
            )
            return
        self._migrating = True
        decision = PlacementDecision(
            time=env.now, proposal=proposal, executed=False
        )
        self.stats.decisions.append(decision)
        try:
            result = yield env.process(
                source.migrate_tenant(
                    proposal.tenant_id, proposal.target, setpoint=self.setpoint
                )
            )
        finally:
            self._migrating = False
        self._cooldown_until = env.now + self.cooldown
        self.stats.migrations += 1
        decision.executed = True
        decision.duration = result.duration
        decision.downtime = result.downtime

    def run(self):
        """Process: the rebalancing loop, forever."""
        env = self.cluster.env
        while True:
            yield env.timeout(self.monitor.interval)
            yield from self.step()
