"""The placement manager: an autonomous rebalancing control loop.

Glues the monitor and policies to Slacker's migration machinery
through the wave stack: every snapshot interval the detector says
*when* relief is needed, the :class:`~repro.placement.executor.WavePlanner`
turns the snapshot into a wave of non-conflicting proposals, and the
:class:`~repro.placement.executor.WaveExecutor` admits up to
``max_concurrent`` of them under the per-node slack-budget ledger.

With ``max_concurrent=1`` (the default) the manager takes the
serialized path and is bit-identical to the pre-wave implementation:
one inline migration at a time, detector streaks frozen during
cooldown, full setpoint.  At fleet scale, raise ``max_concurrent`` and
``max_streams_per_node`` and use :meth:`drain`/:meth:`rebalance` —
see docs/FLEET.md.
"""

from __future__ import annotations

from typing import Optional

from ..middleware.cluster import SlackerCluster
from ..simulation import Trace
from .budget import SlackBudgetLedger
from .decisions import DrainReport, PlacementDecision, PlacementStats
from .executor import WaveExecutor, WavePlanner
from .monitor import LoadMonitor
from .policy import (
    GreedyReliefChooser,
    HotspotDetector,
    LatencyHotspotDetector,
    PlacementChooser,
)

__all__ = [
    "DrainReport",
    "PlacementDecision",
    "PlacementStats",
    "PlacementManager",
]


class PlacementManager:
    """Periodically detects hotspots and migrates tenants to fix them."""

    def __init__(
        self,
        cluster: SlackerCluster,
        trace: Trace,
        setpoint: float,
        detector: Optional[HotspotDetector] = None,
        chooser: Optional[PlacementChooser] = None,
        interval: float = 10.0,
        cooldown: float = 30.0,
        max_concurrent: int = 1,
        max_streams_per_node: int = 1,
        ledger: Optional[SlackBudgetLedger] = None,
        obs=None,
    ):
        if setpoint <= 0:
            raise ValueError(f"setpoint must be positive, got {setpoint}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.cluster = cluster
        self.monitor = LoadMonitor(cluster, trace, interval=interval)
        self.setpoint = setpoint
        self.detector = detector or LatencyHotspotDetector(
            latency_threshold=setpoint
        )
        self.chooser = chooser or GreedyReliefChooser()
        self.cooldown = cooldown
        self.max_concurrent = max_concurrent
        self.stats = PlacementStats()
        self.planner = WavePlanner(self.detector, self.chooser)
        self.executor = WaveExecutor(
            cluster,
            setpoint=setpoint,
            stats=self.stats,
            ledger=ledger,
            cooldown=cooldown,
            max_concurrent=max_concurrent,
            max_streams_per_node=max_streams_per_node,
            obs=obs,
        )
        self.obs = obs
        #: Nodes currently being drained: never valid migration targets.
        self._draining: set[str] = set()

    @property
    def ledger(self) -> SlackBudgetLedger:
        """The executor's slack-budget ledger (for audits and tests)."""
        return self.executor.ledger

    def step(self):
        """Process: one monitor snapshot + at most one wave.

        Serialized mode (``max_concurrent=1``) reproduces the legacy
        loop exactly: no detection while migrating or cooling down
        (streaks stay frozen), first viable proposal only, executed
        inline.  Wave mode keeps snapshotting while migrations run in
        the background and launches a budget-bounded wave per snapshot.
        """
        env = self.cluster.env
        loads = self.monitor.snapshot()
        self.stats.snapshots += 1
        if self.max_concurrent == 1:
            if self.executor.active_count or env.now < self.executor.cooldown_until:
                return
            wave = self.planner.plan(
                loads, excluded_targets=self._draining, max_proposals=1
            )
            if wave:
                yield from self.executor.execute_serial(wave[0])
            return
        excluded = self._draining | set(self.monitor.dead_nodes(loads))
        wave = self.planner.plan(
            loads,
            busy_tenants=self.executor.busy_tenants(),
            busy_nodes=self.executor.blocked_nodes(env.now),
            excluded_targets=excluded,
        )
        self.executor.launch_wave(wave)

    def run(self):
        """Process: the rebalancing loop, forever.

        Not a fixed tick grid: the interval is measured from *step
        completion*, and a serial-mode step runs a whole migration
        inline, consuming simulated time.  A PeriodicTicker grid would
        change when snapshots happen, so the eager timeout is the
        correct form here.
        """
        env = self.cluster.env
        while True:
            yield env.timeout(self.monitor.interval)  # slackerlint: disable=SLK011
            yield from self.step()

    # -- fleet verbs -----------------------------------------------------

    def drain(
        self,
        node_name: str,
        setpoint: Optional[float] = None,
        max_stalled_rounds: int = 3,
    ):
        """Process: evacuate every tenant from ``node_name``.

        Launches budget-bounded waves (cooldowns waived — a drain is
        maintenance, not steady-state rebalancing) until the node's
        registry is empty, re-planning each round around aborts, dead
        targets, and budget pressure.  Gives up after
        ``max_stalled_rounds`` consecutive rounds in which nothing
        could launch and nothing was in flight (no viable targets).
        Returns a :class:`DrainReport`.
        """
        env = self.cluster.env
        node = self.cluster.node(node_name)  # fail fast on unknown nodes
        self._draining.add(node_name)
        start = env.now
        migrations_before = self.stats.migrations
        aborted_before = self.stats.aborted
        stalled_rounds = 0
        try:
            while len(node.registry) and node.alive:
                loads = self.monitor.snapshot()
                self.stats.snapshots += 1
                excluded = self._draining | set(self.monitor.dead_nodes(loads))
                wave = self.planner.plan_drain(
                    node_name,
                    loads,
                    busy_tenants=self.executor.busy_tenants(),
                    excluded_targets=excluded,
                )
                launched = self.executor.launch_wave(
                    wave, respect_cooldown=False, setpoint=setpoint
                )
                if not launched and not self.executor.active_for_node(node_name):
                    stalled_rounds += 1
                    if stalled_rounds >= max_stalled_rounds:
                        break
                else:
                    stalled_rounds = 0
                yield env.timeout(self.monitor.interval)
            # Let in-flight evacuations settle before reporting.
            yield from self.executor.settle()
        finally:
            self._draining.discard(node_name)
        duration = env.now - start
        report = DrainReport(
            node=node_name,
            duration=duration,
            migrations=self.stats.migrations - migrations_before,
            aborted=self.stats.aborted - aborted_before,
            remaining=len(node.registry),
        )
        if self.obs is not None and report.drained:
            self.obs.on_drain_complete(node_name, duration)
        return report

    def rebalance(self, rounds: int = 1):
        """Process: run ``rounds`` detector-driven waves to completion.

        Each round takes a snapshot, launches one wave, and waits for
        it to settle — a one-shot (or N-shot) alternative to the
        open-ended :meth:`run` loop.  Returns the decisions made.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        env = self.cluster.env
        decisions_before = len(self.stats.decisions)
        for _ in range(rounds):
            yield env.timeout(self.monitor.interval)
            loads = self.monitor.snapshot()
            self.stats.snapshots += 1
            excluded = self._draining | set(self.monitor.dead_nodes(loads))
            wave = self.planner.plan(
                loads,
                busy_tenants=self.executor.busy_tenants(),
                busy_nodes=self.executor.blocked_nodes(env.now),
                excluded_targets=excluded,
            )
            self.executor.launch_wave(wave)
            yield from self.executor.settle()
        return self.stats.decisions[decisions_before:]
