"""Command-line entry point: run the paper's experiments by id.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig5             # regenerate one figure
    python -m repro run fig11 --scale .5 # faster, shape-preserving
    python -m repro run all              # everything (a few minutes)
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from .experiments import REGISTRY

#: One-line description per experiment id.
DESCRIPTIONS = {
    "fig5": "latency under fixed throttles (case study, Figures 5a-5d)",
    "fig6": "slack exceeded: 16 MB/s overload divergence (Figure 6)",
    "fig7": "migration speed vs. performance tradeoff (Figure 7)",
    "fig11": "fixed vs. Slacker sweeps: knee, plateau, tracking (Figure 11)",
    "fig12": "throttle/latency time series at 1000 ms setpoint (Figure 12)",
    "fig13a": "+40% workload surge mid-migration (Figure 13a)",
    "fig13b": "migrating 1 of 5 collocated tenants (Figure 13b)",
    "stop-and-copy": "downtime vs. database size (Section 2.3.1)",
    "ext-source-target": "max(source, target) throttling (Section 6)",
}


def _walltime() -> float:
    """Wall-clock seconds, for reporting how long a driver took.

    This is the one sanctioned wall-clock read in the package: it only
    feeds the human-facing "[figN: 12.3 s wall]" footer and never enters
    simulated results, so the linter exception stays scoped to this
    helper rather than allowlisting the whole module.
    """
    return time.time()  # slackerlint: disable=SLK001


def _render(experiment_id: str, result) -> str:
    if hasattr(result, "table"):
        return result.table().render()
    if hasattr(result, "table_11a"):
        return result.table_11a().render() + "\n\n" + result.table_11b().render()
    return repr(result)


def cmd_list() -> int:
    width = max(len(eid) for eid in REGISTRY)
    for eid in REGISTRY:
        print(f"  {eid.ljust(width)}  {DESCRIPTIONS.get(eid, '')}")
    return 0


def cmd_run(
    experiment_ids: list[str],
    scale: float,
    seed: int | None,
    config_path: str | None = None,
    jobs: int = 1,
) -> int:
    if experiment_ids == ["all"]:
        experiment_ids = list(REGISTRY)
    unknown = [eid for eid in experiment_ids if eid not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list`", file=sys.stderr)
        return 2
    config = None
    if config_path is not None:
        from .core.configfile import ConfigFileError, load_config

        try:
            config = load_config(config_path)
        except ConfigFileError as exc:
            print(f"config error: {exc}", file=sys.stderr)
            return 2
    # Sweep drivers dispatch their points through the SweepRunner; with
    # --jobs they share one warm WorkerPool for the whole command, so
    # `run all --jobs 4` spawns workers once, not once per figure.
    pool = None
    if jobs != 1:
        from .parallel import WorkerPool

        pool = WorkerPool(jobs)
    try:
        for eid in experiment_ids:
            module = REGISTRY[eid]
            started = _walltime()
            kwargs = {}
            # stop-and-copy sweeps sizes rather than scaling one tenant
            if eid != "stop-and-copy":
                kwargs["scale"] = scale
            if seed is not None:
                kwargs["seed"] = seed
            if config is not None:
                kwargs["config"] = config
            parameters = inspect.signature(module.run).parameters
            if jobs != 1 and "jobs" in parameters:
                kwargs["jobs"] = jobs
            if pool is not None and "pool" in parameters:
                kwargs["pool"] = pool
            result = module.run(**kwargs)
            print(_render(eid, result))
            print(f"[{eid}: {_walltime() - started:.1f} s wall]\n")
    finally:
        if pool is not None:
            pool.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Slacker (EDBT 2012) reproduction: run paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runner = sub.add_parser("run", help="run experiments by id (or 'all')")
    runner.add_argument("experiments", nargs="+", metavar="ID")
    runner.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="database-size scale factor (default 1.0 = the paper's 1 GB)",
    )
    runner.add_argument(
        "--seed", type=int, default=None, help="override the preset RNG seed"
    )
    runner.add_argument(
        "--config",
        default=None,
        help="TOML config file overriding the experiment preset",
    )
    runner.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep experiments (0 = all cores; "
        "one warm pool is shared across the whole command and results "
        "are bit-identical to serial)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    return cmd_run(args.experiments, args.scale, args.seed, args.config, args.jobs)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
