"""The fault injector: binds a :class:`FaultPlan` to one simulation.

The injector hooks the existing layers rather than replacing them:

* message faults ride the bus's ``faults`` attribute — the transport
  asks :meth:`FaultInjector.message_fate` once per delivery and
  :meth:`FaultInjector.is_down` at each end of the hop;
* node crashes call :meth:`SlackerNode.crash` (fail-stop of the
  middleware daemon: heartbeats stop, messages vanish, outgoing
  migrations abort) and later :meth:`SlackerNode.restart`;
* NIC/disk stalls hold the underlying capacity-1 resource at high
  priority, so everything behind them queues — exactly what a hung
  controller or a firmware pause looks like;
* NIC/disk rate collapses rebind the resource's parameter block to a
  scaled-bandwidth copy for the duration;
* ``abort_backup`` cancels whatever migration the named node is
  running mid-stream via :meth:`LiveMigration.try_abort`.

All randomness comes from one named ``RandomStreams`` child stream, so
a chaos run is a pure function of (config seed, plan) and replays
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..simulation import Environment, RandomStreams
from .plan import FaultPlan, ScheduledFault

__all__ = ["MessageFate", "FaultStats", "FaultInjector"]


@dataclass(frozen=True)
class MessageFate:
    """The injector's verdict for one message delivery."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0


@dataclass
class FaultStats:
    """Running counters for one injector."""

    fates_drawn: int = 0
    node_crashes: int = 0
    node_restarts: int = 0
    nic_stalls: int = 0
    nic_rate_collapses: int = 0
    disk_stalls: int = 0
    disk_rate_collapses: int = 0
    backup_aborts: int = 0
    #: Scheduled faults that found nothing to act on (e.g. an
    #: ``abort_backup`` when no migration was in flight).
    noops: int = 0

    def counters(self) -> dict[str, int]:
        return {
            "fates_drawn": self.fates_drawn,
            "node_crashes": self.node_crashes,
            "node_restarts": self.node_restarts,
            "nic_stalls": self.nic_stalls,
            "nic_rate_collapses": self.nic_rate_collapses,
            "disk_stalls": self.disk_stalls,
            "disk_rate_collapses": self.disk_rate_collapses,
            "backup_aborts": self.backup_aborts,
            "noops": self.noops,
        }


class FaultInjector:
    """Executes a :class:`FaultPlan` against one cluster."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        streams: RandomStreams,
    ):
        self.env = env
        self.plan = plan
        self._rng = streams.stream("faults:messages")
        self.stats = FaultStats()
        self._down: set[str] = set()
        self.cluster = None
        #: Optional :class:`~repro.obs.Observability`, set by
        #: ``Observability.attach``; ``None`` keeps fault paths free of
        #: metric updates.
        self.obs = None

    def attach(self, cluster) -> "FaultInjector":
        """Hook the plan into a :class:`SlackerCluster`; returns self.

        Attaching an *empty* plan is free: the bus hook short-circuits
        before drawing anything, and no scheduler processes start.
        """
        self.cluster = cluster
        cluster.bus.faults = self
        for fault in self.plan.scheduled:
            self.env.process(self._run_scheduled(fault))
        return self

    # -- bus hooks ---------------------------------------------------------

    def is_down(self, name: str) -> bool:
        """True while ``name``'s middleware daemon is crashed."""
        return name in self._down

    def message_fate(self, sender: str, recipient: str) -> Optional[MessageFate]:
        """Draw the fate of one message, or ``None`` for fault-free."""
        mf = self.plan.messages
        if not mf.active or self.env.now < mf.after:
            return None
        rng = self._rng
        self.stats.fates_drawn += 1
        if mf.drop_prob > 0 and rng.random() < mf.drop_prob:
            if self.obs is not None:
                self.obs.fault_activations.inc()
            return MessageFate(drop=True)
        duplicate = mf.dup_prob > 0 and rng.random() < mf.dup_prob
        delay = 0.0
        if mf.delay_prob > 0 and rng.random() < mf.delay_prob:
            delay = rng.uniform(mf.delay_min, mf.delay_max)
        elif mf.reorder_prob > 0 and rng.random() < mf.reorder_prob:
            # Reordering is a targeted long delay: later messages on
            # the same hop overtake this one.
            delay = mf.reorder_delay
        if not duplicate and delay <= 0.0:
            return None
        if self.obs is not None:
            self.obs.fault_activations.inc()
        return MessageFate(duplicate=duplicate, delay=delay)

    # -- scheduled faults --------------------------------------------------

    def _node(self, name: str):
        if self.cluster is None:
            raise RuntimeError("injector is not attached to a cluster")
        return self.cluster.node(name)

    def _run_scheduled(self, fault: ScheduledFault):
        yield self.env.timeout(fault.at)
        if self.obs is not None:
            self.obs.on_scheduled_fault(fault)
        kind = fault.kind
        if kind == "crash_node":
            yield from self._crash(fault)
        elif kind == "restart_node":
            self._restart(fault.node)
        elif kind == "nic_stall":
            server = self._node(fault.node).server
            self.stats.nic_stalls += 1
            yield from self._stall(server.nic_out._wire, fault.duration)
        elif kind == "disk_stall":
            server = self._node(fault.node).server
            self.stats.disk_stalls += 1
            yield from self._stall(server.disk._arm, fault.duration)
        elif kind == "nic_rate":
            server = self._node(fault.node).server
            self.stats.nic_rate_collapses += 1
            yield from self._collapse_nic(server, fault)
        elif kind == "disk_rate":
            server = self._node(fault.node).server
            self.stats.disk_rate_collapses += 1
            yield from self._collapse_disk(server, fault)
        elif kind == "abort_backup":
            self._abort_backup(fault)

    def _crash(self, fault: ScheduledFault):
        node = self._node(fault.node)
        self._down.add(fault.node)
        node.crash(reason=fault.reason or f"injected crash at t={fault.at:g}")
        self.stats.node_crashes += 1
        if fault.duration > 0:
            yield self.env.timeout(fault.duration)
            self._restart(fault.node)

    def _restart(self, name: str) -> None:
        node = self._node(name)
        self._down.discard(name)
        if not node.alive:
            node.restart()
            self.stats.node_restarts += 1
        else:
            self.stats.noops += 1

    def _stall(self, resource, duration: float):
        """Hold a capacity-1 resource so everything behind it queues."""
        with resource.request(priority=-(10**6)) as grant:
            yield grant
            yield self.env.timeout(duration)

    def _collapse_nic(self, server, fault: ScheduledFault):
        for link in (server.nic_out, server.nic_in):
            link.params = replace(
                link.params, bandwidth=link.params.bandwidth * fault.factor
            )
        yield self.env.timeout(fault.duration)
        for link in (server.nic_out, server.nic_in):
            link.params = replace(
                link.params, bandwidth=link.params.bandwidth / fault.factor
            )

    def _collapse_disk(self, server, fault: ScheduledFault):
        disk = server.disk
        disk.params = replace(
            disk.params,
            sequential_bandwidth=disk.params.sequential_bandwidth * fault.factor,
            random_bandwidth=disk.params.random_bandwidth * fault.factor,
        )
        yield self.env.timeout(fault.duration)
        disk.params = replace(
            disk.params,
            sequential_bandwidth=disk.params.sequential_bandwidth / fault.factor,
            random_bandwidth=disk.params.random_bandwidth / fault.factor,
        )

    def _abort_backup(self, fault: ScheduledFault) -> None:
        node = self._node(fault.node)
        reason = fault.reason or "backup stream aborted by fault injection"
        aborted = False
        for migration in list(node.active_migrations.values()):
            if migration.try_abort(reason):
                aborted = True
                self.stats.backup_aborts += 1
        if not aborted:
            self.stats.noops += 1
