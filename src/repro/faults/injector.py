"""The fault injector: binds a :class:`FaultPlan` to one simulation.

The injector hooks the existing layers rather than replacing them:

* message faults ride the bus's ``faults`` attribute — the transport
  asks :meth:`FaultInjector.message_fate` once per delivery and
  :meth:`FaultInjector.is_down` at each end of the hop;
* node crashes call :meth:`SlackerNode.crash` (fail-stop of the
  middleware daemon: heartbeats stop, messages vanish, outgoing
  migrations abort) and later :meth:`SlackerNode.restart`;
* NIC/disk stalls hold the underlying capacity-1 resource at high
  priority, so everything behind them queues — exactly what a hung
  controller or a firmware pause looks like;
* NIC/disk rate collapses rebind the resource's parameter block to a
  scaled-bandwidth copy for the duration;
* ``abort_backup`` cancels whatever migration the named node is
  running mid-stream via :meth:`LiveMigration.try_abort`.

All randomness comes from one named ``RandomStreams`` child stream, so
a chaos run is a pure function of (config seed, plan) and replays
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..simulation import Environment, RandomStreams
from .plan import FaultPlan, PartitionFault, ScheduledFault

__all__ = ["MessageFate", "FaultStats", "FaultInjector"]


@dataclass(frozen=True)
class MessageFate:
    """The injector's verdict for one message delivery."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0


@dataclass
class FaultStats:
    """Running counters for one injector."""

    fates_drawn: int = 0
    node_crashes: int = 0
    node_restarts: int = 0
    nic_stalls: int = 0
    nic_rate_collapses: int = 0
    disk_stalls: int = 0
    disk_rate_collapses: int = 0
    backup_aborts: int = 0
    partitions_started: int = 0
    partitions_ended: int = 0
    gray_drops: int = 0
    #: Scheduled faults that found nothing to act on (e.g. an
    #: ``abort_backup`` when no migration was in flight).
    noops: int = 0

    def counters(self) -> dict[str, int]:
        return {
            "fates_drawn": self.fates_drawn,
            "node_crashes": self.node_crashes,
            "node_restarts": self.node_restarts,
            "nic_stalls": self.nic_stalls,
            "nic_rate_collapses": self.nic_rate_collapses,
            "disk_stalls": self.disk_stalls,
            "disk_rate_collapses": self.disk_rate_collapses,
            "backup_aborts": self.backup_aborts,
            "partitions_started": self.partitions_started,
            "partitions_ended": self.partitions_ended,
            "gray_drops": self.gray_drops,
            "noops": self.noops,
        }


class FaultInjector:
    """Executes a :class:`FaultPlan` against one cluster."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        streams: RandomStreams,
    ):
        self.env = env
        self.plan = plan
        self._rng = streams.stream("faults:messages")
        self.stats = FaultStats()
        self._down: set[str] = set()
        #: Hard-blocked (sender, recipient) links, refcounted because
        #: overlapping splits/oneways may block the same pair.
        self._blocked_links: dict[tuple[str, str], int] = {}
        #: Active flapping faults (checked per message via arithmetic,
        #: not timer processes, so an idle flap costs zero events).
        self._flapping: list[PartitionFault] = []
        #: node -> active gray failures touching it.
        self._gray: dict[str, list[PartitionFault]] = {}
        #: Lazily-created stream for gray-failure fate draws; separate
        #: from ``faults:messages`` so adding a partition to a plan
        #: never perturbs the probabilistic message-fault draws.
        self._streams = streams
        self._gray_rng = None
        self.cluster = None
        #: Optional :class:`~repro.obs.Observability`, set by
        #: ``Observability.attach``; ``None`` keeps fault paths free of
        #: metric updates.
        self.obs = None

    def attach(self, cluster) -> "FaultInjector":
        """Hook the plan into a :class:`SlackerCluster`; returns self.

        Attaching an *empty* plan is free: the bus hook short-circuits
        before drawing anything, and no scheduler processes start.
        """
        self.cluster = cluster
        cluster.bus.faults = self
        for fault in self.plan.scheduled:
            self.env.process(self._run_scheduled(fault))
        for fault in self.plan.partitions:
            self.env.process(self._run_partition(fault))
        return self

    # -- bus hooks ---------------------------------------------------------

    def is_down(self, name: str) -> bool:
        """True while ``name``'s middleware daemon is crashed."""
        return name in self._down

    def link_blocked(self, sender: str, recipient: str) -> bool:
        """True while the ``sender`` → ``recipient`` link is cut.

        Hard blocks (oneway/split windows) are refcounted set lookups;
        flapping links are pure arithmetic on the window phase, so no
        timer events fire per flap cycle.
        """
        if self._blocked_links.get((sender, recipient), 0) > 0:
            return True
        if self._flapping:
            now = self.env.now
            for fault in self._flapping:
                if fault.src == sender and fault.dst == recipient:
                    phase = (now - fault.at) % fault.period
                    if phase < fault.period * fault.duty:
                        return True
        return False

    def message_fate(self, sender: str, recipient: str) -> Optional[MessageFate]:
        """Draw the fate of one message, or ``None`` for fault-free."""
        fate: Optional[MessageFate] = None
        mf = self.plan.messages
        if mf.active and self.env.now >= mf.after:
            rng = self._rng
            self.stats.fates_drawn += 1
            if mf.drop_prob > 0 and rng.random() < mf.drop_prob:
                if self.obs is not None:
                    self.obs.fault_activations.inc()
                return MessageFate(drop=True)
            duplicate = mf.dup_prob > 0 and rng.random() < mf.dup_prob
            delay = 0.0
            if mf.delay_prob > 0 and rng.random() < mf.delay_prob:
                delay = rng.uniform(mf.delay_min, mf.delay_max)
            elif mf.reorder_prob > 0 and rng.random() < mf.reorder_prob:
                # Reordering is a targeted long delay: later messages on
                # the same hop overtake this one.
                delay = mf.reorder_delay
            if duplicate or delay > 0.0:
                if self.obs is not None:
                    self.obs.fault_activations.inc()
                fate = MessageFate(duplicate=duplicate, delay=delay)
        if self._gray:
            fate = self._gray_fate(sender, recipient, fate)
        return fate

    def _gray_fate(
        self, sender: str, recipient: str, fate: Optional[MessageFate]
    ) -> Optional[MessageFate]:
        """Layer active gray failures on top of a probabilistic fate."""
        drop_prob = 0.0
        extra_delay = 0.0
        for name in (sender, recipient):
            for fault in self._gray.get(name, ()):
                drop_prob = max(drop_prob, fault.drop_prob)
                extra_delay += fault.delay
        if drop_prob <= 0.0 and extra_delay <= 0.0:
            return fate
        if self._gray_rng is None:
            self._gray_rng = self._streams.stream("faults:gray")
        if drop_prob > 0.0 and self._gray_rng.random() < drop_prob:
            self.stats.gray_drops += 1
            if self.obs is not None:
                self.obs.fault_activations.inc()
            return MessageFate(drop=True)
        if extra_delay <= 0.0:
            return fate
        if fate is None:
            return MessageFate(delay=extra_delay)
        return MessageFate(duplicate=fate.duplicate, delay=fate.delay + extra_delay)

    # -- scheduled faults --------------------------------------------------

    def _node(self, name: str):
        if self.cluster is None:
            raise RuntimeError("injector is not attached to a cluster")
        return self.cluster.node(name)

    def _run_scheduled(self, fault: ScheduledFault):
        yield self.env.timeout(fault.at)
        if self.obs is not None:
            self.obs.on_scheduled_fault(fault)
        kind = fault.kind
        if kind == "crash_node":
            yield from self._crash(fault)
        elif kind == "restart_node":
            self._restart(fault.node)
        elif kind == "nic_stall":
            server = self._node(fault.node).server
            self.stats.nic_stalls += 1
            yield from self._stall(server.nic_out._wire, fault.duration)
        elif kind == "disk_stall":
            server = self._node(fault.node).server
            self.stats.disk_stalls += 1
            yield from self._stall(server.disk._arm, fault.duration)
        elif kind == "nic_rate":
            server = self._node(fault.node).server
            self.stats.nic_rate_collapses += 1
            yield from self._collapse_nic(server, fault)
        elif kind == "disk_rate":
            server = self._node(fault.node).server
            self.stats.disk_rate_collapses += 1
            yield from self._collapse_disk(server, fault)
        elif kind == "abort_backup":
            self._abort_backup(fault)

    def _crash(self, fault: ScheduledFault):
        node = self._node(fault.node)
        self._down.add(fault.node)
        node.crash(reason=fault.reason or f"injected crash at t={fault.at:g}")
        self.stats.node_crashes += 1
        if fault.duration > 0:
            yield self.env.timeout(fault.duration)
            self._restart(fault.node)

    def _restart(self, name: str) -> None:
        node = self._node(name)
        self._down.discard(name)
        if not node.alive:
            node.restart()
            self.stats.node_restarts += 1
        else:
            self.stats.noops += 1

    def _stall(self, resource, duration: float):
        """Hold a capacity-1 resource so everything behind it queues."""
        with resource.request(priority=-(10**6)) as grant:
            yield grant
            yield self.env.timeout(duration)

    def _collapse_nic(self, server, fault: ScheduledFault):
        for link in (server.nic_out, server.nic_in):
            link.params = replace(
                link.params, bandwidth=link.params.bandwidth * fault.factor
            )
        yield self.env.timeout(fault.duration)
        for link in (server.nic_out, server.nic_in):
            link.params = replace(
                link.params, bandwidth=link.params.bandwidth / fault.factor
            )

    def _collapse_disk(self, server, fault: ScheduledFault):
        disk = server.disk
        disk.params = replace(
            disk.params,
            sequential_bandwidth=disk.params.sequential_bandwidth * fault.factor,
            random_bandwidth=disk.params.random_bandwidth * fault.factor,
        )
        yield self.env.timeout(fault.duration)
        disk.params = replace(
            disk.params,
            sequential_bandwidth=disk.params.sequential_bandwidth / fault.factor,
            random_bandwidth=disk.params.random_bandwidth / fault.factor,
        )

    # -- partitions --------------------------------------------------------

    def _run_partition(self, fault: PartitionFault):
        """Activate one partition window and tear it down after."""
        yield self.env.timeout(fault.at)
        self.stats.partitions_started += 1
        if self.obs is not None:
            self.obs.fault_activations.inc()
        links = fault.links()
        if fault.kind == "flap":
            self._flapping.append(fault)
        elif fault.kind == "gray":
            self._gray.setdefault(fault.node, []).append(fault)
        else:
            for link in links:
                self._blocked_links[link] = self._blocked_links.get(link, 0) + 1
        yield self.env.timeout(fault.duration)
        if fault.kind == "flap":
            self._flapping.remove(fault)
        elif fault.kind == "gray":
            entries = self._gray[fault.node]
            entries.remove(fault)
            if not entries:
                del self._gray[fault.node]
        else:
            for link in links:
                remaining = self._blocked_links[link] - 1
                if remaining:
                    self._blocked_links[link] = remaining
                else:
                    del self._blocked_links[link]
        self.stats.partitions_ended += 1

    def _abort_backup(self, fault: ScheduledFault) -> None:
        node = self._node(fault.node)
        reason = fault.reason or "backup stream aborted by fault injection"
        aborted = False
        for migration in list(node.active_migrations.values()):
            if migration.try_abort(reason):
                aborted = True
                self.stats.backup_aborts += 1
        if not aborted:
            self.stats.noops += 1
