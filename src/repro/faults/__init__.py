"""Deterministic, seeded fault injection for the Slacker simulation.

``FaultPlan`` declares what goes wrong (probabilistic message faults +
scheduled node/NIC/disk/backup faults); ``FaultInjector`` binds a plan
to one cluster and one RNG stream so chaos runs replay bit-identically
from their seed.  See ``docs/FAULTS.md`` for the fault model, rollback
semantics, and the invariants the chaos sweep checks.
"""

from .injector import FaultInjector, FaultStats, MessageFate
from .plan import FaultPlan, MessageFaults, PartitionFault, ScheduledFault

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "MessageFate",
    "MessageFaults",
    "PartitionFault",
    "ScheduledFault",
]
