"""Declarative fault plans.

A :class:`FaultPlan` is pure data: probabilistic message faults plus a
list of scheduled faults, validated at construction.  Plans carry no
simulation state, so the same plan object can drive many runs — the
:class:`~repro.faults.injector.FaultInjector` binds a plan to one
environment and one seeded RNG stream, which is what makes every chaos
run replay bit-identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FaultKind",
    "MessageFaults",
    "ScheduledFault",
    "PartitionFault",
    "FaultPlan",
]

#: The scheduled-fault kinds the injector understands.
FaultKind = str

#: Valid values for :attr:`ScheduledFault.kind`.
SCHEDULED_KINDS = frozenset(
    {
        "crash_node",
        "restart_node",
        "nic_stall",
        "nic_rate",
        "disk_stall",
        "disk_rate",
        "abort_backup",
    }
)

#: Kinds that need a positive ``duration``.
_DURATION_KINDS = frozenset({"nic_stall", "nic_rate", "disk_stall", "disk_rate"})

#: Kinds that need a ``factor`` in (0, 1]: the resource keeps
#: ``factor`` of its nominal bandwidth for the duration.
_FACTOR_KINDS = frozenset({"nic_rate", "disk_rate"})


@dataclass(frozen=True)
class MessageFaults:
    """Probabilistic per-message faults on the control-plane bus.

    Each delivered message independently draws its fate from the
    injector's seeded stream: dropped with ``drop_prob``, duplicated
    with ``dup_prob``, held back ``delay_min..delay_max`` seconds with
    ``delay_prob``, or held back a fixed ``reorder_delay`` with
    ``reorder_prob`` (long enough that later messages overtake it —
    reordering is just a targeted delay).  Faults only apply from
    ``after`` seconds of simulated time, so warmup traffic is clean.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_min: float = 0.0
    delay_max: float = 0.05
    reorder_prob: float = 0.0
    reorder_delay: float = 0.25
    after: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob", "reorder_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise ValueError(
                f"need 0 <= delay_min <= delay_max, got "
                f"[{self.delay_min}, {self.delay_max}]"
            )
        if self.reorder_delay < 0:
            raise ValueError(f"reorder_delay must be >= 0, got {self.reorder_delay}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")

    @property
    def active(self) -> bool:
        """True when any fault probability is non-zero."""
        return (
            self.drop_prob > 0
            or self.dup_prob > 0
            or self.delay_prob > 0
            or self.reorder_prob > 0
        )


@dataclass(frozen=True)
class ScheduledFault:
    """One fault fired at an absolute simulated time.

    ``kind`` selects the mechanism (see :data:`SCHEDULED_KINDS`);
    ``node`` names the cluster node it targets.  ``duration`` bounds
    transient faults: a ``crash_node`` with a positive duration
    restarts automatically, stalls and rate collapses always end after
    ``duration`` seconds.  ``factor`` scales bandwidth for the rate
    kinds.  ``reason`` is carried into abort records and logs.
    """

    at: float
    kind: FaultKind
    node: str
    duration: float = 0.0
    factor: float = 1.0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.kind not in SCHEDULED_KINDS:
            raise ValueError(
                f"kind must be one of {sorted(SCHEDULED_KINDS)}, got {self.kind!r}"
            )
        if not self.node:
            raise ValueError("scheduled faults must name a node")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.kind in _DURATION_KINDS and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind in _FACTOR_KINDS and not 0.0 < self.factor <= 1.0:
            raise ValueError(f"{self.kind} needs a factor in (0, 1], got {self.factor}")


#: Valid values for :attr:`PartitionFault.kind`.
PARTITION_KINDS = frozenset({"oneway", "split", "flap", "gray"})


@dataclass(frozen=True)
class PartitionFault:
    """A link-level network fault active over a time window.

    Partitions act on *links* (ordered sender→recipient pairs) rather
    than nodes, so one-way silence is expressible: an ``oneway``
    partition blocks ``src``→``dst`` while the reverse direction keeps
    flowing.  A ``split`` cuts every link crossing between the two
    ``groups`` (both directions).  A ``flap`` blocks ``src``→``dst``
    only during the first ``duty`` fraction of each ``period`` — a link
    that comes and goes.  A ``gray`` failure targets a *node*: every
    message it sends or receives is dropped with ``drop_prob`` and
    delayed by ``delay`` — slow and lossy, but not dead, which is what
    confuses failure detectors built on silence horizons.
    """

    at: float
    duration: float
    kind: FaultKind = "oneway"
    src: str = ""
    dst: str = ""
    groups: tuple[tuple[str, ...], tuple[str, ...]] = ((), ())
    period: float = 1.0
    duty: float = 0.5
    node: str = ""
    drop_prob: float = 0.5
    delay: float = 0.0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.kind not in PARTITION_KINDS:
            raise ValueError(
                f"kind must be one of {sorted(PARTITION_KINDS)}, got {self.kind!r}"
            )
        if self.kind in ("oneway", "flap"):
            if not self.src or not self.dst:
                raise ValueError(f"{self.kind} partitions need src and dst")
            if self.src == self.dst:
                raise ValueError("src and dst must differ")
        if self.kind == "flap":
            if self.period <= 0:
                raise ValueError(f"flap period must be > 0, got {self.period}")
            if not 0.0 < self.duty < 1.0:
                raise ValueError(f"flap duty must be in (0, 1), got {self.duty}")
        if self.kind == "split":
            # Normalise group containers to tuples so plans stay hashable.
            groups = tuple(tuple(g) for g in self.groups)
            object.__setattr__(self, "groups", groups)
            if len(groups) != 2 or not groups[0] or not groups[1]:
                raise ValueError("split partitions need two non-empty groups")
            if set(groups[0]) & set(groups[1]):
                raise ValueError("split groups must be disjoint")
        if self.kind == "gray":
            if not self.node:
                raise ValueError("gray failures must name a node")
            if not 0.0 <= self.drop_prob <= 1.0:
                raise ValueError(
                    f"drop_prob must be in [0, 1], got {self.drop_prob}"
                )
            if self.delay < 0:
                raise ValueError(f"delay must be >= 0, got {self.delay}")

    def links(self) -> tuple[tuple[str, str], ...]:
        """The ordered (sender, recipient) pairs this fault hard-blocks.

        Only meaningful for ``oneway``/``flap`` (one link) and ``split``
        (every cross-group link, both directions); gray failures do not
        block links outright.
        """
        if self.kind in ("oneway", "flap"):
            return ((self.src, self.dst),)
        if self.kind == "split":
            a, b = self.groups
            pairs: list[tuple[str, str]] = []
            for x in a:
                for y in b:
                    pairs.append((x, y))
                    pairs.append((y, x))
            return tuple(pairs)
        return ()


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong in one run, as declarative data."""

    messages: MessageFaults = field(default_factory=MessageFaults)
    scheduled: tuple[ScheduledFault, ...] = ()
    partitions: tuple[PartitionFault, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists; store a hashable tuple.
        if not isinstance(self.scheduled, tuple):
            object.__setattr__(self, "scheduled", tuple(self.scheduled))
        for fault in self.scheduled:
            if not isinstance(fault, ScheduledFault):
                raise TypeError(f"scheduled entries must be ScheduledFault, got {fault!r}")
        if not isinstance(self.partitions, tuple):
            object.__setattr__(self, "partitions", tuple(self.partitions))
        for fault in self.partitions:
            if not isinstance(fault, PartitionFault):
                raise TypeError(
                    f"partition entries must be PartitionFault, got {fault!r}"
                )

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.messages.active
            and not self.scheduled
            and not self.partitions
        )
