"""Declarative fault plans.

A :class:`FaultPlan` is pure data: probabilistic message faults plus a
list of scheduled faults, validated at construction.  Plans carry no
simulation state, so the same plan object can drive many runs — the
:class:`~repro.faults.injector.FaultInjector` binds a plan to one
environment and one seeded RNG stream, which is what makes every chaos
run replay bit-identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultKind", "MessageFaults", "ScheduledFault", "FaultPlan"]

#: The scheduled-fault kinds the injector understands.
FaultKind = str

#: Valid values for :attr:`ScheduledFault.kind`.
SCHEDULED_KINDS = frozenset(
    {
        "crash_node",
        "restart_node",
        "nic_stall",
        "nic_rate",
        "disk_stall",
        "disk_rate",
        "abort_backup",
    }
)

#: Kinds that need a positive ``duration``.
_DURATION_KINDS = frozenset({"nic_stall", "nic_rate", "disk_stall", "disk_rate"})

#: Kinds that need a ``factor`` in (0, 1]: the resource keeps
#: ``factor`` of its nominal bandwidth for the duration.
_FACTOR_KINDS = frozenset({"nic_rate", "disk_rate"})


@dataclass(frozen=True)
class MessageFaults:
    """Probabilistic per-message faults on the control-plane bus.

    Each delivered message independently draws its fate from the
    injector's seeded stream: dropped with ``drop_prob``, duplicated
    with ``dup_prob``, held back ``delay_min..delay_max`` seconds with
    ``delay_prob``, or held back a fixed ``reorder_delay`` with
    ``reorder_prob`` (long enough that later messages overtake it —
    reordering is just a targeted delay).  Faults only apply from
    ``after`` seconds of simulated time, so warmup traffic is clean.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_min: float = 0.0
    delay_max: float = 0.05
    reorder_prob: float = 0.0
    reorder_delay: float = 0.25
    after: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob", "reorder_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise ValueError(
                f"need 0 <= delay_min <= delay_max, got "
                f"[{self.delay_min}, {self.delay_max}]"
            )
        if self.reorder_delay < 0:
            raise ValueError(f"reorder_delay must be >= 0, got {self.reorder_delay}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")

    @property
    def active(self) -> bool:
        """True when any fault probability is non-zero."""
        return (
            self.drop_prob > 0
            or self.dup_prob > 0
            or self.delay_prob > 0
            or self.reorder_prob > 0
        )


@dataclass(frozen=True)
class ScheduledFault:
    """One fault fired at an absolute simulated time.

    ``kind`` selects the mechanism (see :data:`SCHEDULED_KINDS`);
    ``node`` names the cluster node it targets.  ``duration`` bounds
    transient faults: a ``crash_node`` with a positive duration
    restarts automatically, stalls and rate collapses always end after
    ``duration`` seconds.  ``factor`` scales bandwidth for the rate
    kinds.  ``reason`` is carried into abort records and logs.
    """

    at: float
    kind: FaultKind
    node: str
    duration: float = 0.0
    factor: float = 1.0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.kind not in SCHEDULED_KINDS:
            raise ValueError(
                f"kind must be one of {sorted(SCHEDULED_KINDS)}, got {self.kind!r}"
            )
        if not self.node:
            raise ValueError("scheduled faults must name a node")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.kind in _DURATION_KINDS and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind in _FACTOR_KINDS and not 0.0 < self.factor <= 1.0:
            raise ValueError(f"{self.kind} needs a factor in (0, 1], got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong in one run, as declarative data."""

    messages: MessageFaults = field(default_factory=MessageFaults)
    scheduled: tuple[ScheduledFault, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists; store a hashable tuple.
        if not isinstance(self.scheduled, tuple):
            object.__setattr__(self, "scheduled", tuple(self.scheduled))
        for fault in self.scheduled:
            if not isinstance(fault, ScheduledFault):
                raise TypeError(f"scheduled entries must be ScheduledFault, got {fault!r}")

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self.messages.active and not self.scheduled
