"""Process-pool sweep runner.

Every figure in the paper is a *sweep*: one full, seed-deterministic
simulation per fixed throttle (Figure 5), per setpoint (Figure 11), or
per design variant (the ablations).  The points are independent — each
builds its own :class:`~repro.simulation.Environment` from its own
:class:`RandomStreams` — so they fan out across worker processes with
no shared state and recombine in deterministic point order, bit-
identical to a serial run.

Usage::

    runner = SweepRunner(jobs=4, cache=ResultCache("results/.sweep-cache"))
    records = runner.run([
        SweepPoint(label="4mb", config=cfg, spec=MigrationSpec.fixed(4 * MB)),
        SweepPoint(label="8mb", config=cfg, spec=MigrationSpec.fixed(8 * MB)),
    ])

Guarantees:

* **Order** — ``run()`` returns one record per point, in the order the
  points were given, regardless of completion order.
* **Serial equivalence** — ``jobs=1`` executes the same task functions
  inline (no pool); results are bit-identical either way, which
  ``tests/test_parallel_runner.py`` asserts.
* **Caching** — with a :class:`~repro.parallel.cache.ResultCache`,
  points whose content key (config, spec, kwargs, code fingerprint)
  already has an entry are served from disk and never re-simulated.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool uses resolve_jobs)
    from .pool import WorkerPool

from ..core.config import ExperimentConfig
from ..experiments.harness import MigrationSpec
from .cache import ResultCache, code_fingerprint, point_key
from .tasks import SINGLE_TENANT, execute, execute_batch

__all__ = ["SweepPoint", "SweepRunner", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 -> all cores, floor 1."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


@dataclass(frozen=True)
class SweepPoint:
    """One independent point of a sweep.

    ``task`` is a ``"module:function"`` path (see
    :mod:`repro.parallel.tasks`); ``kwargs`` must be picklable and are
    part of the point's cache identity.
    """

    #: Sweep-local identifier (a throttle rate, a setpoint, a variant
    #: label); used by drivers to key their result maps.
    label: Any
    config: ExperimentConfig
    spec: Optional[MigrationSpec] = None
    task: str = SINGLE_TENANT
    kwargs: dict = field(default_factory=dict)

    def cache_key(self, fingerprint: Optional[str] = None) -> str:
        """Content hash identifying this point's inputs and code version."""
        return point_key(
            self.task, self.config, self.spec, self.kwargs, fingerprint
        )


class SweepRunner:
    """Fan independent sweep points across worker processes.

    ``jobs=1`` (the default) is a strict serial fallback: tasks run in
    this process with no executor, so environments without working
    ``multiprocessing`` lose nothing but speed.  ``jobs=0`` means "all
    cores".

    Passing a warm :class:`~repro.parallel.pool.WorkerPool` makes the
    runner dispatch onto the pool's long-lived executor instead of
    spinning one up per ``run()`` — the pool's worker count wins over
    ``jobs``, and the pool (whose owner controls its lifetime) is never
    shut down here.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        pool: Optional["WorkerPool"] = None,
    ):
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
        self.cache = cache
        #: Points dispatched per worker round-trip; ``None`` picks
        #: ceil(pending / (workers * 4)) — 4 chunks per worker, enough
        #: slack to absorb uneven point runtimes without rebalancing.
        self.chunksize = chunksize
        #: Optional shared warm pool; ``None`` keeps the historical
        #: executor-per-run behaviour.
        self.pool = pool

    def run(self, points: Sequence[SweepPoint]) -> list[Any]:
        """Execute ``points``, returning their records in point order."""
        points = list(points)
        results: list[Any] = [None] * len(points)

        # Serve cached points first; only the remainder is computed.
        pending: list[int] = []
        keys: dict[int, str] = {}
        if self.cache is not None:
            fingerprint = code_fingerprint()
            for index, point in enumerate(points):
                key = point.cache_key(fingerprint)
                keys[index] = key
                record = self.cache.get(key)
                if record is None:
                    pending.append(index)
                else:
                    results[index] = record
        else:
            pending = list(range(len(points)))

        if not pending:
            return results

        if self.jobs == 1 or len(pending) == 1:
            for index in pending:
                point = points[index]
                results[index] = execute(
                    point.task, point.config, point.spec, point.kwargs
                )
        elif self.pool is not None:
            self._dispatch(self.pool.executor(), points, pending, results)
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as executor:
                self._dispatch(executor, points, pending, results)

        if self.cache is not None:
            for index in pending:
                self.cache.put(keys[index], results[index])
        return results

    def _dispatch(self, executor, points, pending, results) -> None:
        """Chunk ``pending`` onto ``executor``; fill ``results`` in place."""
        workers = min(self.jobs, len(pending))
        chunk = self.chunksize or max(1, -(-len(pending) // (workers * 4)))
        batches = []
        for start in range(0, len(pending), chunk):
            block = pending[start : start + chunk]
            items = [
                (
                    points[index].task,
                    points[index].config,
                    points[index].spec,
                    points[index].kwargs,
                )
                for index in block
            ]
            batches.append((block, executor.submit(execute_batch, items)))
        # Collect by submission index: deterministic result order no
        # matter which worker finishes first.
        for block, future in batches:
            for index, record in zip(block, future.result()):
                results[index] = record

    def run_labelled(self, points: Sequence[SweepPoint]) -> dict:
        """Like :meth:`run`, keyed by each point's ``label``."""
        points = list(points)
        return {
            point.label: record
            for point, record in zip(points, self.run(points))
        }
