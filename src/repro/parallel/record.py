"""Compact, picklable result records for parallel sweeps.

A sweep worker runs one full simulation and must ship its results back
to the parent process.  Pickling the live :class:`~repro.experiments.harness.ExperimentOutcome`
is impossible (migration results hold the target engine, whose server
holds running generator processes) and wasteful (the full
:class:`~repro.simulation.trace.Trace` carries every series the run
recorded).  :class:`PointRecord` keeps exactly what the figure drivers
consume — the measured latency/throttle series plus scalar summaries —
in plain dataclasses of floats, lists, and strings, so it pickles
compactly and hashes deterministically for the result cache.

``PointRecord`` mirrors the query API of ``ExperimentOutcome``
(``mean_latency``, ``latency_percentile``, ``tenants[i].latency`` ...),
so a driver ported onto the sweep runner keeps its downstream code
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..experiments.harness import ExperimentOutcome, MigrationSpec, PooledLatencyStats
from ..core.config import ExperimentConfig
from ..migration.fluid import FluidMigrationResult
from ..migration.on_demand import OnDemandMigrationResult
from ..migration.stop_and_copy import StopAndCopyResult
from ..obs import RunReport
from ..resources.units import PAGE_SIZE
from ..simulation import Series

__all__ = ["MigrationRecord", "TenantRecord", "PointRecord"]


@dataclass(frozen=True)
class MigrationRecord:
    """Scalar summary of a migration result, detached from the engines."""

    #: "live", "stop-and-copy", "dump-reimport", "fluid", or "on-demand".
    kind: str
    #: End-to-end migration time, seconds.
    duration: float
    #: Freeze/handover window (live) or the whole copy (stop-and-copy).
    downtime: float
    #: Bytes moved end to end (snapshot + deltas, or the full copy).
    total_bytes: int
    #: Mean transfer rate over the whole migration, bytes/second.
    average_rate: float
    #: Live-migration detail: snapshot volume and delta-round count.
    snapshot_bytes: int = 0
    delta_rounds: int = 0
    #: Fluid-migration detail: chunk count and summed freeze time.
    num_chunks: int = 0
    total_freeze_time: float = 0.0
    #: On-demand detail: pages pulled remotely inside transactions.
    remote_fetches: int = 0

    @classmethod
    def from_result(cls, result) -> "MigrationRecord":
        """Summarize any migration-result flavor into plain scalars."""
        if isinstance(result, StopAndCopyResult):
            duration = result.duration
            return cls(
                kind=result.method,
                duration=duration,
                downtime=result.downtime,
                total_bytes=result.bytes_copied,
                average_rate=result.bytes_copied / max(duration, 1e-9),
            )
        if isinstance(result, FluidMigrationResult):
            return cls(
                kind="fluid",
                duration=result.duration,
                downtime=result.downtime,
                total_bytes=result.total_bytes,
                average_rate=result.average_rate,
                num_chunks=result.num_chunks,
                total_freeze_time=result.total_freeze_time,
            )
        if isinstance(result, OnDemandMigrationResult):
            duration = result.duration
            total_bytes = (
                result.remote_fetches + result.pushed_pages
            ) * PAGE_SIZE
            return cls(
                kind="on-demand",
                duration=duration,
                downtime=result.switch_latency,
                total_bytes=total_bytes,
                average_rate=total_bytes / max(duration, 1e-9),
                remote_fetches=result.remote_fetches,
            )
        return cls(
            kind="live",
            duration=result.duration,
            downtime=result.downtime,
            total_bytes=result.total_bytes,
            average_rate=result.average_rate,
            snapshot_bytes=result.snapshot_bytes,
            delta_rounds=len(result.delta_rounds),
        )


@dataclass
class TenantRecord:
    """Per-tenant measurements, structurally matching ``TenantOutcome``."""

    tenant_id: int
    latency: Series
    completed: int

    def window_latencies(self, start: float, end: float) -> list[float]:
        return self.latency.window_values(start, end)


@dataclass
class PointRecord(PooledLatencyStats):
    """One sweep point's results, ready to cross a process boundary."""

    config: ExperimentConfig
    spec: Optional[MigrationSpec]
    tenants: list[TenantRecord]
    window_start: float
    window_end: float
    migration: Optional[MigrationRecord] = None
    throttle_series: Optional[Series] = None
    controller_latency_series: Optional[Series] = None
    #: Task-specific extra measurements (small picklable values only).
    extras: dict = field(default_factory=dict)
    #: Observability snapshot (plain dicts/tuples, pickles compactly)
    #: when the point ran with ``observe=True``.
    run_report: Optional[RunReport] = None

    @property
    def average_migration_rate(self) -> float:
        """Mean transfer rate over the migration, bytes/second."""
        return self.migration.average_rate if self.migration is not None else 0.0

    @classmethod
    def from_outcome(cls, outcome: ExperimentOutcome) -> "PointRecord":
        """Strip an in-process outcome down to its portable essentials."""
        return cls(
            config=outcome.config,
            spec=outcome.spec,
            tenants=[
                TenantRecord(
                    tenant_id=t.tenant_id, latency=t.latency, completed=t.completed
                )
                for t in outcome.tenants
            ],
            window_start=outcome.window_start,
            window_end=outcome.window_end,
            migration=(
                MigrationRecord.from_result(outcome.migration)
                if outcome.migration is not None
                else None
            ),
            throttle_series=outcome.throttle_series,
            controller_latency_series=outcome.controller_latency_series,
            extras=dict(outcome.extras),
            run_report=outcome.run_report,
        )
