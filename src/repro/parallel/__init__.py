"""Parallel sweep execution: process-pool runner, records, result cache.

The paper's figures are sweeps of independent, seed-deterministic
simulation runs; this subpackage fans those points across worker
processes (:class:`SweepRunner`), ships compact picklable results back
(:class:`PointRecord`), and memoizes points on disk keyed by a content
hash of their inputs and the repo's code fingerprint
(:class:`ResultCache`).  See ``docs/PERF.md``.

The core invariant — no shared mutable module-level state reachable
from worker entry points — is machine-enforced by slackerlint rule
SLK008 rather than left as convention.
"""

from .cache import ResultCache, code_fingerprint, point_key
from .pool import WorkerPool
from .record import MigrationRecord, PointRecord, TenantRecord
from .runner import SweepPoint, SweepRunner, resolve_jobs
from .tasks import MULTI_TENANT, SINGLE_TENANT, resolve_task

__all__ = [
    "MigrationRecord",
    "MULTI_TENANT",
    "PointRecord",
    "ResultCache",
    "SINGLE_TENANT",
    "SweepPoint",
    "SweepRunner",
    "TenantRecord",
    "WorkerPool",
    "code_fingerprint",
    "point_key",
    "resolve_jobs",
    "resolve_task",
]
