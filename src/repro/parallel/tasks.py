"""Standard worker entry points for sweep points.

A :class:`~repro.parallel.runner.SweepPoint` names its task as a
``"module:function"`` string rather than carrying a callable, so points
pickle trivially and the worker process resolves the function against
*its own* imported code.  The contract for a task function:

* it is importable at module top level (no closures, no lambdas);
* it takes ``(config, spec, **kwargs)`` with picklable kwargs;
* it is deterministic in those inputs (fresh ``Environment``, RNG
  derived from ``config.seed`` — never shared module state, which lint
  rule SLK008 enforces for this package);
* it returns a compact picklable record, normally a
  :class:`~repro.parallel.record.PointRecord`.

The two tasks here wrap the shared experiment harness; experiment
modules may register their own (see ``repro.experiments.ablations``).
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable, Optional

from ..core.config import ExperimentConfig
from ..experiments.harness import (
    MigrationSpec,
    run_multi_tenant,
    run_single_tenant,
)
from .record import PointRecord

__all__ = [
    "SINGLE_TENANT",
    "MULTI_TENANT",
    "resolve_task",
    "single_tenant_point",
    "multi_tenant_point",
    "execute_batch",
]

#: Task path of :func:`single_tenant_point` (the default for sweeps).
SINGLE_TENANT = "repro.parallel.tasks:single_tenant_point"
#: Task path of :func:`multi_tenant_point`.
MULTI_TENANT = "repro.parallel.tasks:multi_tenant_point"


def resolve_task(path: str) -> Callable:
    """Import a ``"module:function"`` task path."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"task path {path!r} is not 'module:function'")
    function = getattr(import_module(module_name), attr, None)
    if not callable(function):
        raise ValueError(f"task path {path!r} does not name a callable")
    return function


def single_tenant_point(
    config: ExperimentConfig, spec: MigrationSpec, **kwargs
) -> PointRecord:
    """One single-tenant run (the paper's fundamental case), as a record."""
    return PointRecord.from_outcome(run_single_tenant(config, spec, **kwargs))


def multi_tenant_point(
    config: ExperimentConfig, spec: MigrationSpec, **kwargs
) -> PointRecord:
    """One multi-tenant run (the Figure 13b scenario), as a record."""
    return PointRecord.from_outcome(run_multi_tenant(config, spec, **kwargs))


def execute(
    task: str,
    config: ExperimentConfig,
    spec: Optional[MigrationSpec],
    kwargs: Optional[dict] = None,
):
    """Resolve and run one task — the function worker processes execute."""
    return resolve_task(task)(config, spec, **(kwargs or {}))


def execute_batch(items) -> list:
    """Run a chunk of tasks in one worker round-trip, results in order.

    ``items`` is a sequence of ``(task, config, spec, kwargs)`` tuples.
    Submitting chunks instead of single points amortizes the process
    pool's per-task overhead (argument pickling, queue round-trips,
    future bookkeeping) across the whole chunk — the difference between
    a win and a loss for sweeps whose per-point runtime is comparable
    to the dispatch cost itself.  Points within a chunk still run in
    submission order, so results stay deterministic.
    """
    return [execute(task, config, spec, kwargs) for task, config, spec, kwargs in items]
