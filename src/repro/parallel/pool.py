"""Warm, reusable worker pool for back-to-back sweeps.

A :class:`~repro.parallel.runner.SweepRunner` without a pool pays for a
fresh ``ProcessPoolExecutor`` on every ``run()`` — each worker process
starts, imports :mod:`repro`, runs its chunks, and dies.  For a driver
that runs *many* sweeps back to back (``run_all_experiments.py``,
``python -m repro run all``), that start-up tax repeats per sweep and
dominates once the simulations themselves get fast.

:class:`WorkerPool` keeps one executor alive across sweeps:

* workers are spawned **once**, lazily on first dispatch, from a
  ``forkserver`` context — the forkserver preloads
  :mod:`repro.parallel.tasks` (pulling in the simulation kernel and
  the experiment harness), so every worker forks warm from an
  interpreter that has already paid the import cost;
* subsequent sweeps reuse the same processes; there is no per-sweep
  executor teardown barrier;
* the pool is an explicit object handed down from the driver's
  entry point (``with WorkerPool(jobs) as pool: ...``) — never a
  module-level singleton, which worker entry points could observe and
  lint rule SLK008 exists to prevent.

The pool changes *where* points run, never *what* they compute: tasks
are resolved and executed by the same :mod:`repro.parallel.tasks`
machinery, so results remain bit-identical to a cold pool or a serial
run.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from .runner import resolve_jobs

__all__ = ["WorkerPool", "PREFERRED_CONTEXT"]

#: Start method used when the platform offers it.  ``forkserver``
#: combines fork-speed worker creation with spawn-grade isolation from
#: the (possibly thread-carrying) driver process.
PREFERRED_CONTEXT = "forkserver"

#: Modules the forkserver imports before the first fork, so every
#: worker starts with the kernel and harness already loaded.
_PRELOAD_MODULES = ("repro.parallel.tasks",)


class WorkerPool:
    """One executor, spawned lazily, shared across any number of sweeps.

    Parameters
    ----------
    jobs:
        Worker count; ``0``/``None`` means all cores (see
        :func:`~repro.parallel.runner.resolve_jobs`).
    context:
        ``multiprocessing`` start-method name.  Defaults to
        ``forkserver``; silently falls back to the platform default if
        the method is unavailable.
    """

    def __init__(self, jobs: int = 0, context: str = PREFERRED_CONTEXT):
        self.jobs = resolve_jobs(jobs)
        self._context_name = context
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Number of ``executor()`` calls that found the pool already
        #: warm — i.e. dispatches that skipped worker start-up.
        self.warm_hits = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def started(self) -> bool:
        """True once the executor (and its workers) exists."""
        return self._executor is not None

    def executor(self) -> ProcessPoolExecutor:
        """The shared executor, created on first use."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=self._make_context()
            )
        else:
            self.warm_hits += 1
        return self._executor

    def _make_context(self):
        try:
            context = multiprocessing.get_context(self._context_name)
        except ValueError:
            return multiprocessing.get_context()
        if self._context_name == "forkserver":
            try:
                context.set_forkserver_preload(list(_PRELOAD_MODULES))
            except (AttributeError, OSError):  # pragma: no cover
                pass
        return context

    def close(self) -> None:
        """Shut the workers down.  Idempotent; the pool restarts lazily
        if used again."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        state = "warm" if self.started else "cold"
        return f"WorkerPool(jobs={self.jobs}, {state})"
