"""On-disk result cache for sweep points.

A sweep point is a pure function of its inputs: the experiment is
seed-deterministic, so ``(task, config, spec, kwargs)`` plus the code
that interprets them fully determines the result.  The cache key is a
SHA-256 over a canonical rendering of exactly those inputs, including a
*code fingerprint* — a hash of every ``repro`` source file — so editing
any simulation code invalidates every cached point, while re-running an
unchanged sweep recomputes nothing.

Entries are one pickle file per point under the cache root, written
atomically (temp file + ``os.replace``) so a crashed or parallel run
never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache", "code_fingerprint", "point_key"]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; any code edit anywhere in the package
    changes the fingerprint and therefore every cache key.  Hashing the
    whole package rather than an import graph keeps the invalidation
    rule trivially sound (never a stale hit) at the cost of occasional
    over-invalidation, which only costs recompute time.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _canonical(value: Any) -> str:
    """Deterministic, process-independent rendering of a point input.

    Dataclasses render as their sorted field dict, mappings sort by key
    rendering, and containers recurse — so logically equal inputs hash
    equal regardless of construction order, and nothing falls back to
    a default ``repr`` that could embed a memory address.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: getattr(value, f.name) for f in dataclasses.fields(value)
        }
        return f"{type(value).__name__}({_canonical(fields)})"
    if isinstance(value, dict):
        items = sorted(
            (_canonical(k), _canonical(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, (str, int, float, bool, bytes)) or value is None:
        return repr(value)
    # Enums and other value-like objects: repr is stable for these; a
    # genuinely repr-unstable object would also fail to pickle portably
    # and has no business in a sweep-point input.
    return repr(value)


def point_key(
    task: str,
    config: Any,
    spec: Any,
    kwargs: Optional[dict] = None,
    fingerprint: Optional[str] = None,
) -> str:
    """Content-hash cache key for one sweep point."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    payload = "\0".join(
        (
            task,
            _canonical(config),
            _canonical(spec),
            _canonical(kwargs or {}),
            fingerprint,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Pickle-per-point cache rooted at a directory.

    >>> cache = ResultCache("/tmp/sweeps")        # doctest: +SKIP
    >>> cache.get(key) is None                    # doctest: +SKIP
    True
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached record for ``key``, or None (counting hit/miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                record = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            # A stale or corrupt entry behaves like a miss; the fresh
            # result will overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Any) -> None:
        """Store ``record`` under ``key`` atomically."""
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
