"""Render findings as SARIF 2.1.0 for code-scanning uploads.

One run, one driver ("slackerlint"), one rule entry per registered
rule (per-file and project), one result per finding.  Only the subset
of SARIF that GitHub code scanning and IDE SARIF viewers consume is
emitted: ruleId, message, and a physical location with region.
"""

from __future__ import annotations

import json
from typing import Iterable

from .framework import Finding, all_rules
from .project.rules import all_project_rules

__all__ = ["to_sarif", "render_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Findings with these ids are hard errors, not rule violations.
_ERROR_IDS = {"E000", "E001"}


def _rule_descriptors() -> list[dict]:
    descriptors = []
    merged = {**all_rules(), **all_project_rules()}
    for rule_id in sorted(merged):
        summary = merged[rule_id].summary or rule_id
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    for error_id in sorted(_ERROR_IDS):
        descriptors.append(
            {
                "id": error_id,
                "shortDescription": {"text": "file could not be analyzed"},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }


def to_sarif(findings: Iterable[Finding]) -> dict:
    """SARIF log dict for ``findings``."""
    return {
        "version": _SARIF_VERSION,
        "$schema": _SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "slackerlint",
                        "informationUri": "https://example.invalid/slackerlint",
                        "rules": _rule_descriptors(),
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }


def render_sarif(findings: Iterable[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
