"""Project analysis driver: build the graph once, run every rule on it."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..config import LintConfig
from ..framework import Finding, merge_findings
from .graph import ProjectGraph
from .rules import all_project_rules

__all__ = ["ProjectResult", "analyze_project"]


@dataclass
class ProjectResult:
    """Outcome of one project-level analysis pass."""

    graph: ProjectGraph
    findings: list[Finding]
    #: module path -> ids of project rules that ran on that module
    #: (feeds the unused-pragma accounting alongside the per-file pass).
    ran_by_file: dict[str, set[str]] = field(default_factory=dict)


def analyze_project(
    paths: Iterable[str | Path],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
    graph: Optional[ProjectGraph] = None,
) -> ProjectResult:
    """Run all registered project rules over ``paths``.

    ``graph`` lets a caller that already built one (the CLI runner,
    which shares parsed trees with the per-file pass) skip the reparse.
    Unparseable files surface as E000/E001 findings, same as the
    per-file pass.
    """
    config = config or LintConfig()
    if graph is None:
        graph = ProjectGraph.build(paths, root=root)
    findings: list[Finding] = list(graph.errors)
    ran_by_file: dict[str, set[str]] = {}
    for rule_id, rule_cls in sorted(all_project_rules().items()):
        if rule_id in config.disable:
            continue
        rule = rule_cls()
        for module in rule.scope(graph, config):
            ran_by_file.setdefault(module.path, set()).add(rule_id)
        findings.extend(rule.run(graph, config))
    return ProjectResult(
        graph=graph,
        findings=merge_findings(findings),
        ran_by_file=ran_by_file,
    )
