"""Cross-module project rules SLK101–SLK108.

Each rule sees the whole :class:`~repro.lint.project.graph.ProjectGraph`
rather than one file, so it can reason about reachability, registration
exhaustiveness, and dataflow across import boundaries.  All rules share
the framework's suppression machinery: a ``# slackerlint:
disable=SLK10x`` pragma in the module where the finding lands filters
it (and records the pragma as used).

The cardinal design rule: **unresolved means no finding**.  Every
check here fires only on names the graph resolved to a concrete
project symbol (or an exact well-known external like ``time.sleep``);
anything dynamic stays silent rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Type

from ..config import LintConfig
from ..framework import Finding
from ..rules import _OBS_NAMING_METHODS, _OBS_RECEIVERS, WALL_CLOCK_CALLS
from . import dataflow
from .graph import ClassInfo, FunctionInfo, ModuleInfo, ProjectGraph, dotted_name

__all__ = [
    "ProjectRule",
    "register_project",
    "all_project_rules",
]

#: Registry of project-level rules, keyed by rule id.
_PROJECT_REGISTRY: dict[str, Type["ProjectRule"]] = {}


def register_project(rule_cls: Type["ProjectRule"]) -> Type["ProjectRule"]:
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule_cls.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate project rule id {rule_cls.id}")
    _PROJECT_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_project_rules() -> dict[str, Type["ProjectRule"]]:
    return dict(_PROJECT_REGISTRY)


def _in_prefixes(rel_path: str, prefixes: tuple[str, ...]) -> bool:
    return any(rel_path.startswith(prefix) for prefix in prefixes)


class ProjectRule:
    """Base class: run over a graph, accumulate suppressed-aware findings."""

    id: str = ""
    summary: str = ""

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    def scope(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterable[ModuleInfo]:
        """Modules this rule is considered to have *run on* (for the
        unused-pragma accounting).  Default: every module."""
        return graph.modules.values()

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        raise NotImplementedError

    def report(
        self, module: ModuleInfo, line: int, col: int, message: str
    ) -> None:
        if module.pragmas.suppresses(self.id, line):
            return
        self.findings.append(
            Finding(
                path=module.path,
                line=line,
                col=col + 1,
                rule=self.id,
                message=message,
            )
        )


# ---------------------------------------------------------------------------
# SLK101: sim-process blocking-call reachability
# ---------------------------------------------------------------------------

#: Exact call targets that block on the OS or read the wall clock.
_BLOCKING_EXACT = frozenset(WALL_CLOCK_CALLS) | frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "input",
        "urllib.request.urlopen",
    }
)
#: Call-target prefixes whose whole families block.
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "http.client.")


def _blocking_target(target: str) -> bool:
    return target in _BLOCKING_EXACT or target.startswith(_BLOCKING_PREFIXES)


@register_project
class SimBlockingReachability(ProjectRule):
    """Generator processes must stay inside simulated time.

    A SimPy-style process is a generator driven by the simulation
    environment; if it (transitively) calls ``time.sleep``,
    ``subprocess``, sockets, or any wall-clock read, the simulation
    silently mixes real time into virtual time.  This walks the call
    graph from every generator in ``sim_scope`` and flags the call
    site, with the chain that reaches the blocking call.
    """

    id = "SLK101"
    summary = (
        "simulation generator process transitively reaches a "
        "wall-clock/OS-blocking call"
    )

    def scope(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterable[ModuleInfo]:
        if not config.sim_scope:
            return []
        return [
            m
            for m in graph.modules.values()
            if _in_prefixes(m.rel_path, config.sim_scope)
            and not _in_prefixes(m.rel_path, config.sim_exclude)
        ]

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        scope_modules = list(self.scope(graph, config))
        #: qualname -> shortest chain of qualnames ending in a blocking
        #: target, or None when nothing blocking is reachable.
        self._memo: dict[str, Optional[tuple[str, ...]]] = {}
        self._graph = graph
        for module in scope_modules:
            for func in module.iter_functions():
                if not func.is_generator:
                    continue
                for call, target in graph.call_targets(func):
                    chain = self._chain_from(target, frozenset({func.qualname}))
                    if chain is None:
                        continue
                    rendered = " -> ".join((f"{func.qualname}()", *chain))
                    self.report(
                        module,
                        call.lineno,
                        call.col,
                        f"sim process reaches blocking call: {rendered}",
                    )
        return self.findings

    def _chain_from(
        self, target: str, seen: frozenset[str]
    ) -> Optional[tuple[str, ...]]:
        """Chain of calls from ``target`` to a blocking call, inclusive."""
        if _blocking_target(target):
            return (f"{target}()",)
        if target in seen:
            return None
        if target in self._memo:
            return self._memo[target]
        func = self._graph.functions.get(target)
        if func is None:
            return None
        self._memo[target] = None  # cycle guard for re-entry via memo
        best: Optional[tuple[str, ...]] = None
        for _, callee in self._graph.call_targets(func):
            sub = self._chain_from(callee, seen | {target})
            if sub is not None and (best is None or len(sub) + 1 < len(best)):
                best = (f"{target}()", *sub)
        self._memo[target] = best
        return best


# ---------------------------------------------------------------------------
# SLK102: protocol message/handler exhaustiveness
# ---------------------------------------------------------------------------


@register_project
class ProtocolExhaustiveness(ProjectRule):
    """Every registered wire message has a dispatch arm, and vice versa.

    Messages are classes decorated with ``register_message``; dispatch
    functions are those whose name contains a ``dispatch_markers``
    substring.  A registered message no dispatch function ever
    ``isinstance``-checks is unhandled (it would fall through to the
    dead-letter path); an ``isinstance`` arm against an *unregistered*
    class from a message-declaring module is a message that can never
    arrive.
    """

    id = "SLK102"
    summary = "protocol message registry and dispatch arms disagree"

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        registered = self._registered_messages(graph)
        if not registered:
            return self.findings
        message_modules = {cls.module for cls in registered.values()}
        dispatchers = [
            (module, func)
            for module in graph.modules.values()
            for func in module.iter_functions()
            if any(mark in func.name.lower() for mark in config.dispatch_markers)
        ]
        if not dispatchers:
            return self.findings
        handled: set[str] = set()
        for module, func in dispatchers:
            for call, class_name in self._isinstance_targets(func.node):
                target = graph.resolve(module, class_name)
                if target in registered:
                    handled.add(target)
                elif (
                    target in graph.classes
                    and graph.classes[target].module in message_modules
                ):
                    self.report(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"dispatch arm handles `{class_name}`, which is not "
                        "a registered protocol message (missing "
                        "@register_message?)",
                    )
        for qualname in sorted(registered):
            if qualname in handled:
                continue
            cls = registered[qualname]
            module = graph.modules[cls.module]
            self.report(
                module,
                cls.lineno,
                cls.col,
                f"registered message `{cls.name}` has no isinstance arm in "
                "any dispatch function — it will hit the dead-letter path",
            )
        return self.findings

    @staticmethod
    def _registered_messages(graph: ProjectGraph) -> dict[str, ClassInfo]:
        registered: dict[str, ClassInfo] = {}
        for module in graph.modules.values():
            for cls in module.classes.values():
                for dec in cls.decorators:
                    resolved = graph.resolve(module, dec)
                    if resolved == "register_message" or resolved.endswith(
                        ".register_message"
                    ):
                        registered[cls.qualname] = cls
                        break
        return registered

    @staticmethod
    def _isinstance_targets(func_node: ast.AST) -> list[tuple[ast.Call, str]]:
        """(call, dotted class name) for every isinstance check."""
        out: list[tuple[ast.Call, str]] = []
        for node in ast.walk(func_node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                continue
            second = node.args[1]
            elements = second.elts if isinstance(second, ast.Tuple) else [second]
            for element in elements:
                name = dotted_name(element)
                if name is not None:
                    out.append((node, name))
        return out


# ---------------------------------------------------------------------------
# SLK103: state-machine conformance
# ---------------------------------------------------------------------------


@register_project
class StateMachineConformance(ProjectRule):
    """Transition tables and their call sites must agree.

    For every module-level ``*TRANSITIONS`` dict keyed by enum members:
    all members appear as keys, all declared targets are members, every
    ``_transition(Phase.X)`` call site targets a declared edge, every
    phase outside the no-abort set can still reach ``ABORTED``, and
    every phase reaches a terminal phase (one with no outgoing edges).
    """

    id = "SLK103"
    summary = "state-machine transition table and call sites disagree"

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        for module in graph.modules.values():
            for const_name, value in module.constants.items():
                if not const_name.endswith("TRANSITIONS"):
                    continue
                if not isinstance(value, ast.Dict):
                    continue
                self._check_table(graph, module, const_name, value)
        return self.findings

    def _check_table(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        const_name: str,
        table: ast.Dict,
    ) -> None:
        edges: dict[str, set[str]] = {}
        enum_qual: Optional[str] = None
        for key, value in zip(table.keys, table.values):
            member = self._member_of(key)
            if member is None:
                return  # not an enum-keyed table; out of scope
            cls_name, member_name = member
            resolved = graph.resolve(module, cls_name)
            if enum_qual is None:
                enum_qual = resolved
            elif resolved != enum_qual:
                return  # mixed key types; out of scope
            edges[member_name] = {
                name
                for _, name in self._member_attrs(value, graph, module, enum_qual)
            }
        if enum_qual is None:
            return
        enum_cls = graph.classes.get(enum_qual)
        if enum_cls is None:
            return
        members = self._enum_members(enum_cls)
        if not members:
            return

        line, col = table.lineno, table.col_offset
        for member in sorted(members - set(edges)):
            self.report(
                module,
                line,
                col,
                f"{const_name}: enum member `{member}` has no entry — "
                "add it (terminal phases get an empty edge set)",
            )
        for source in sorted(edges):
            for target in sorted(edges[source] - members):
                self.report(
                    module,
                    line,
                    col,
                    f"{const_name}: `{source}` declares a transition to "
                    f"`{target}`, which is not a member of {enum_cls.name}",
                )

        self._check_call_sites(graph, module, const_name, enum_qual, edges)
        self._check_reachability(module, const_name, enum_cls, edges)

    def _check_call_sites(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        const_name: str,
        enum_qual: str,
        edges: dict[str, set[str]],
    ) -> None:
        declared_targets = set().union(*edges.values()) if edges else set()
        for mod in graph.modules.values():
            for func in mod.iter_functions():
                for node in ast.walk(func.node):
                    if not (
                        isinstance(node, ast.Call)
                        and node.args
                        and (dotted_name(node.func) or "").split(".")[-1]
                        == "_transition"
                    ):
                        continue
                    member = self._member_of(node.args[0])
                    if member is None:
                        continue
                    cls_name, member_name = member
                    if graph.resolve(mod, cls_name) != enum_qual:
                        continue
                    if member_name not in declared_targets:
                        self.report(
                            mod,
                            node.lineno,
                            node.col_offset,
                            f"_transition({cls_name}.{member_name}) has no "
                            f"incoming edge in {const_name} — the call can "
                            "only raise",
                        )

    def _check_reachability(
        self,
        module: ModuleInfo,
        const_name: str,
        enum_cls: ClassInfo,
        edges: dict[str, set[str]],
    ) -> None:
        terminals = {m for m, targets in edges.items() if not targets}
        abort_like = {m for m in edges if m in ("ABORTED", "ABORT", "FAILED")}
        no_abort = self._no_abort_members(module)
        line = enum_cls.lineno if enum_cls.module == module.name else 1
        for source in sorted(edges):
            reachable = self._reachable_from(source, edges)
            if abort_like and source not in no_abort | abort_like | terminals:
                if not reachable & abort_like:
                    self.report(
                        module,
                        line,
                        0,
                        f"{const_name}: `{source}` is abortable (not in the "
                        "no-abort set) but has no path to "
                        f"{'/'.join(sorted(abort_like))}",
                    )
            if source not in terminals and not reachable & terminals:
                self.report(
                    module,
                    line,
                    0,
                    f"{const_name}: `{source}` cannot reach any terminal "
                    "phase — runs entering it never finish",
                )

    def _no_abort_members(self, module: ModuleInfo) -> set[str]:
        for const_name, value in module.constants.items():
            if const_name.endswith("NO_ABORT_PHASES"):
                return {
                    name.rpartition(".")[2]
                    for name in (
                        dotted_name(n)
                        for n in ast.walk(value)
                        if isinstance(n, ast.Attribute)
                    )
                    if name is not None
                }
        return set()

    @staticmethod
    def _reachable_from(source: str, edges: dict[str, set[str]]) -> set[str]:
        seen: set[str] = set()
        queue = list(edges.get(source, ()))
        while queue:
            node = queue.pop()
            if node in seen:
                continue
            seen.add(node)
            queue.extend(edges.get(node, ()))
        return seen

    @staticmethod
    def _member_of(node: ast.expr) -> Optional[tuple[str, str]]:
        """``Phase.X`` -> ("Phase", "X"); anything else -> None."""
        name = dotted_name(node)
        if name is None or "." not in name:
            return None
        prefix, _, member = name.rpartition(".")
        return prefix, member

    def _member_attrs(
        self,
        node: ast.expr,
        graph: ProjectGraph,
        module: ModuleInfo,
        enum_qual: str,
    ) -> list[tuple[str, str]]:
        """Enum-member references anywhere inside ``node``."""
        out: list[tuple[str, str]] = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Attribute):
                continue
            member = self._member_of(sub)
            if member is None:
                continue
            cls_name, member_name = member
            if graph.resolve(module, cls_name) == enum_qual:
                out.append((cls_name, member_name))
        return out

    @staticmethod
    def _enum_members(cls: ClassInfo) -> set[str]:
        if not any(base.split(".")[-1] in ("Enum", "IntEnum") for base in cls.bases):
            return set()
        members: set[str] = set()
        for stmt in cls.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        members.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                members.add(stmt.target.id)
        return members


# ---------------------------------------------------------------------------
# SLK104: units-flow mismatch
# ---------------------------------------------------------------------------


@register_project
class UnitsFlow(ProjectRule):
    """Seconds/millis/bytes/pages must not mix without conversion.

    Runs the intra-procedural dataflow pass
    (:mod:`repro.lint.project.dataflow`) over every function in
    ``units_flow_scope`` and reports each inferred mismatch.
    """

    id = "SLK104"
    summary = "arithmetic/assignment/call mixes incompatible unit kinds"

    def scope(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterable[ModuleInfo]:
        if not config.units_flow_scope:
            return []
        return [
            m
            for m in graph.modules.values()
            if _in_prefixes(m.rel_path, config.units_flow_scope)
        ]

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        for module in self.scope(graph, config):
            for func in module.iter_functions():
                for node, message in dataflow.check_function(func, module, graph):
                    self.report(
                        module,
                        getattr(node, "lineno", func.lineno),
                        getattr(node, "col_offset", 0),
                        message,
                    )
        return self.findings


# ---------------------------------------------------------------------------
# SLK105: cross-module obs-name resolution
# ---------------------------------------------------------------------------


@register_project
class ObsNameResolution(ProjectRule):
    """Metric/span names must resolve to constants in the names registry.

    The per-file SLK010 insists instrumentation sites pass ``names.X``
    rather than string literals; this rule closes the loop across
    modules: every ``names.X`` (however imported) must be a constant
    that actually exists in ``obs_names_module``, and obs calls must
    not smuggle in name constants defined elsewhere.
    """

    id = "SLK105"
    summary = "obs name does not resolve to a constant in the names registry"

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        names_module = graph.modules.get(config.obs_names_module)
        if names_module is None:
            return self.findings
        defined = (
            set(names_module.constants)
            | set(names_module.functions)
            | set(names_module.classes)
        )
        prefix = names_module.name + "."
        for module in graph.modules.values():
            if module.name == names_module.name:
                continue
            self._check_imports(module, names_module, defined)
            self._check_attributes(graph, module, prefix, defined)
            self._check_obs_calls(graph, module, names_module)
        return self.findings

    def _check_imports(
        self, module: ModuleInfo, names_module: ModuleInfo, defined: set[str]
    ) -> None:
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ImportFrom):
                continue
            package = (
                module.name if module.is_package else module.name.rpartition(".")[0]
            )
            base = ProjectGraph._import_base(stmt, module, package)
            if base != names_module.name:
                continue
            for alias in stmt.names:
                if alias.name != "*" and alias.name not in defined:
                    self.report(
                        module,
                        stmt.lineno,
                        stmt.col_offset,
                        f"`{alias.name}` is not defined in "
                        f"{names_module.name} — typo or missing registry "
                        "entry",
                    )

    def _check_attributes(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        prefix: str,
        defined: set[str],
    ) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            resolved = graph.resolve(module, dotted)
            if not resolved.startswith(prefix):
                continue
            rest = resolved[len(prefix) :]
            if "." in rest or rest in defined:
                continue
            self.report(
                module,
                node.lineno,
                node.col_offset,
                f"`{dotted}` resolves to {resolved}, but the names "
                "registry defines no such constant",
            )

    def _check_obs_calls(
        self, graph: ProjectGraph, module: ModuleInfo, names_module: ModuleInfo
    ) -> None:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and node.args
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _OBS_NAMING_METHODS
                and self._obs_receiver(node.func.value)
            ):
                continue
            arg = node.args[0]
            dotted = dotted_name(arg)
            if dotted is None:
                continue
            resolved = graph.resolve(module, dotted)
            owner, _, const = resolved.rpartition(".")
            owner_module = graph.modules.get(owner)
            if (
                owner_module is not None
                and owner_module.name != names_module.name
                and const in owner_module.constants
            ):
                self.report(
                    module,
                    arg.lineno,
                    arg.col_offset,
                    f"obs name `{dotted}` resolves to a constant in "
                    f"{owner_module.name}; all metric/span names belong in "
                    f"{names_module.name}",
                )

    @staticmethod
    def _obs_receiver(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _OBS_RECEIVERS
        if isinstance(node, ast.Attribute):
            return node.attr in _OBS_RECEIVERS
        return False


# ---------------------------------------------------------------------------
# SLK106: placement migrations go through the wave executor
# ---------------------------------------------------------------------------

#: Node verbs that launch a migration stream when called on a node.
_LAUNCH_VERBS = frozenset({"migrate_tenant", "enqueue_migration"})


@register_project
class PlacementLaunchPath(ProjectRule):
    """Placement code must launch migrations via the budget ledger.

    The slack-budget invariant (no node's inbound + outbound stream
    shares ever exceed its capacity) only holds if every migration the
    placement layer starts is admitted through the wave executor's
    ledger.  A direct ``node.migrate_tenant(...)`` or
    ``node.enqueue_migration(...)`` call anywhere else under
    ``placement_scope`` bypasses admission control — it can silently
    oversubscribe a node the moment two code paths race.  Only the
    modules in ``placement_launch_allow`` (the executor itself) may
    call the node verbs.
    """

    id = "SLK106"
    summary = (
        "placement code launches a migration directly instead of "
        "through the wave executor's budget ledger"
    )

    def scope(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterable[ModuleInfo]:
        if not config.placement_scope:
            return []
        return [
            m
            for m in graph.modules.values()
            if _in_prefixes(m.rel_path, config.placement_scope)
            and not _in_prefixes(m.rel_path, config.placement_launch_allow)
        ]

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        for module in self.scope(graph, config):
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _LAUNCH_VERBS
                ):
                    continue
                self.report(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"`.{node.func.attr}(...)` bypasses the wave executor's "
                    "slack-budget admission — launch placement migrations "
                    "through WaveExecutor (launch_wave/execute_serial) so "
                    "per-node budgets stay enforced",
                )
        return self.findings


# ---------------------------------------------------------------------------
# SLK107: migration-scope protocol frames carry their fencing token
# ---------------------------------------------------------------------------


@register_project
class FencingTokenRequired(ProjectRule):
    """Token-bearing protocol frames must be built with ``token=``.

    The fencing invariant (a stale owner's frames bounce off every
    receiver) only holds if each migration protocol message carries the
    sender's fencing token.  The wire default of 0 exists solely for
    the lease-free legacy path — a frame constructed in migration scope
    without ``token=`` silently rides that unfenced path and defeats
    the staleness check.  The rule finds every registered message class
    declaring a ``token`` field and requires any construction of it
    under ``fencing_scope`` to pass ``token=`` explicitly (or spread
    ``**kwargs`` that may carry it).  Deliberately unfenced legacy
    constructors take a line pragma.
    """

    id = "SLK107"
    summary = (
        "migration protocol frame constructed without its fencing token"
    )

    def scope(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterable[ModuleInfo]:
        if not config.fencing_scope:
            return []
        return [
            m
            for m in graph.modules.values()
            if _in_prefixes(m.rel_path, config.fencing_scope)
        ]

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        registered = ProtocolExhaustiveness._registered_messages(graph)
        tokened = {
            qualname
            for qualname, cls in registered.items()
            if any(
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "token"
                for stmt in cls.node.body
            )
        }
        if not tokened:
            return self.findings
        for module in self.scope(graph, config):
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                target = graph.resolve(module, name)
                if target not in tokened:
                    continue
                if any(
                    kw.arg == "token" or kw.arg is None
                    for kw in node.keywords
                ):
                    continue
                self.report(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"`{name}(...)` built without `token=` — migration "
                    "protocol frames must carry the sender's fencing "
                    "token so stale owners bounce off receivers (pass "
                    "token=..., or pragma a deliberately legacy "
                    "constructor)",
                )
        return self.findings


# ---------------------------------------------------------------------------
# SLK108: chunk-ownership flips go through the fencing-token check
# ---------------------------------------------------------------------------

#: Verbs that change which node owns a chunk of the tenant's page space.
_CHUNK_FLIP_VERBS = frozenset({"flip_chunk", "update_chunk_location"})


@register_project
class ChunkFlipFenced(ProjectRule):
    """Chunk-ownership flips must present a fencing token.

    Fluid migration hands a tenant over chunk by chunk; each flip
    changes which node serves a slice of the page space.  The
    exactly-once-ownership invariant survives crashes and partitions
    only because every flip is gated on the migration's fencing token —
    a stale driver's flips bounce off the monotonic token floor.  A
    ``.flip_chunk(...)`` or ``.update_chunk_location(...)`` call under
    ``fencing_scope`` that omits ``token=`` rides the unfenced default
    (token 0 always passes) and lets a deposed migration re-flip chunks
    it no longer owns.  ``**kwargs`` spreads are trusted to carry the
    token; deliberately unfenced callers take a line pragma.
    """

    id = "SLK108"
    summary = "chunk-ownership flip performed without its fencing token"

    def scope(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterable[ModuleInfo]:
        if not config.fencing_scope:
            return []
        return [
            m
            for m in graph.modules.values()
            if _in_prefixes(m.rel_path, config.fencing_scope)
        ]

    def run(self, graph: ProjectGraph, config: LintConfig) -> list[Finding]:
        for module in self.scope(graph, config):
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CHUNK_FLIP_VERBS
                ):
                    continue
                if any(
                    kw.arg == "token" or kw.arg is None
                    for kw in node.keywords
                ):
                    continue
                self.report(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"`.{node.func.attr}(...)` flips chunk ownership "
                    "without `token=` — flips must go through the "
                    "fencing-token check or a deposed migration can "
                    "re-flip chunks it no longer owns (pass token=..., "
                    "or pragma a deliberately unfenced caller)",
                )
        return self.findings
