"""Lightweight intra-procedural units dataflow (rule SLK104).

Quantities in this codebase follow naming conventions anchored by
``resources/units.py``: seconds (floats), milliseconds (``*_ms``),
bytes (``*_bytes``), pages (``*_pages``).  This pass infers a *unit
kind* for expressions from

* the name conventions above (variables, attributes, parameters),
* the ``units`` constructors/converters (``from_millis`` returns
  seconds, ``to_millis`` milliseconds, ``KB``/``MB``/``GB``/
  ``PAGE_SIZE`` are byte counts),

and flows kinds through straight-line assignments.  It flags only the
unambiguous mistakes: ``+``/``-``/comparisons mixing two *known,
different* kinds, assigning a known kind into a name that declares a
different one, and passing a known kind to a project-local parameter
declaring a different one.  Multiplication and division deliberately
erase the kind (they change the dimension: bytes / seconds is a rate),
and anything unknown stays unknown — no finding is ever produced from
an inference the pass is not sure of.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Optional

from .graph import dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .graph import FunctionInfo, ModuleInfo, ProjectGraph

__all__ = ["KINDS", "kind_of_name", "check_function"]

#: The unit-kind lattice (plus implicit ``None`` = unknown).
KINDS = ("seconds", "millis", "bytes", "pages")

#: Name conventions, tried in order; first match wins.
_KIND_PATTERNS: tuple[tuple[str, re.Pattern], ...] = (
    ("millis", re.compile(r"(_ms|_millis|^millis)$")),
    ("seconds", re.compile(r"(_seconds|^seconds|_secs|duration|downtime)$")),
    ("bytes", re.compile(r"(_bytes|^nbytes|_nbytes)$|^bytes_")),
    ("pages", re.compile(r"(_pages|^npages|^pages)$")),
)

#: units-module symbols -> the kind of the value they denote/return.
_UNITS_VALUE_KINDS = {
    "repro.resources.units.KB": "bytes",
    "repro.resources.units.MB": "bytes",
    "repro.resources.units.GB": "bytes",
    "repro.resources.units.PAGE_SIZE": "bytes",
}
_UNITS_CALL_KINDS = {
    "repro.resources.units.from_millis": "seconds",
    "repro.resources.units.to_millis": "millis",
    "repro.resources.units.mb_per_sec": None,  # a rate, not in the lattice
    "repro.resources.units.to_mb": None,
    "repro.resources.units.to_mb_per_sec": None,
}


def kind_of_name(name: str) -> Optional[str]:
    """Unit kind a bare name declares by convention, or None."""
    lowered = name.lower()
    for kind, pattern in _KIND_PATTERNS:
        if pattern.search(lowered):
            return kind
    return None


class _UnitsChecker(ast.NodeVisitor):
    """One function's worth of inference; accumulates (node, message)."""

    def __init__(
        self, func: "FunctionInfo", module: "ModuleInfo", graph: "ProjectGraph"
    ):
        self.func = func
        self.module = module
        self.graph = graph
        self.env: dict[str, Optional[str]] = {}
        self.problems: list[tuple[ast.AST, str]] = []
        for param in func.params:
            kind = kind_of_name(param)
            if kind is not None:
                self.env[param] = kind

    # -- inference -----------------------------------------------------------

    def kind(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            dotted = node.id
            resolved = self.graph.resolve(self.module, dotted)
            if resolved in _UNITS_VALUE_KINDS:
                return _UNITS_VALUE_KINDS[resolved]
            return kind_of_name(node.id)
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                resolved = self.graph.resolve(self.module, dotted)
                if resolved in _UNITS_VALUE_KINDS:
                    return _UNITS_VALUE_KINDS[resolved]
            return kind_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self.kind(node.left)
                right = self.kind(node.right)
                if left is not None and right is not None and left != right:
                    return None  # the mismatch is reported by visit_BinOp
                return left if left is not None else right
            return None  # *, /, //, % ... change the dimension
        if isinstance(node, ast.UnaryOp):
            return self.kind(node.operand)
        if isinstance(node, ast.IfExp):
            body, orelse = self.kind(node.body), self.kind(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func)
            if raw is None:
                return None
            if raw in ("min", "max") and node.args and not node.keywords:
                kinds = {self.kind(arg) for arg in node.args}
                if len(kinds) == 1:
                    return kinds.pop()
                return None
            resolved = self.graph.resolve(self.module, raw)
            if resolved in _UNITS_CALL_KINDS:
                return _UNITS_CALL_KINDS[resolved]
            # A project function whose *name* declares its return kind
            # (e.g. ``pending_bytes()``).
            tail = resolved.rsplit(".", 1)[-1]
            if resolved in self.graph.functions:
                return kind_of_name(tail)
            return None
        return None

    # -- checks --------------------------------------------------------------

    def _mismatch(self, node: ast.AST, what: str, left: str, right: str) -> None:
        self.problems.append(
            (
                node,
                f"units mismatch: {what} mixes {left} with {right} — "
                "convert explicitly via resources.units "
                "(from_millis/to_millis, KB/MB/GB) so the dimension "
                "stays auditable",
            )
        )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.kind(node.left)
            right = self.kind(node.right)
            if left is not None and right is not None and left != right:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self._mismatch(node, f"`{op}`", left, right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        kinds = [self.kind(op) for op in operands]
        known = [k for k in kinds if k is not None]
        if len(known) >= 2 and len(set(known)) > 1:
            self._mismatch(node, "comparison", known[0], known[1])
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value_kind = self.kind(node.value)
        for target in node.targets:
            self._assign(target, value_kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._assign(node.target, self.kind(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            target_kind = self.kind(node.target)
            value_kind = self.kind(node.value)
            if (
                target_kind is not None
                and value_kind is not None
                and target_kind != value_kind
            ):
                op = "+=" if isinstance(node.op, ast.Add) else "-="
                self._mismatch(node, f"`{op}`", target_kind, value_kind)
        self.generic_visit(node)

    def _assign(self, target: ast.expr, value_kind: Optional[str]) -> None:
        if not isinstance(target, ast.Name):
            return
        declared = kind_of_name(target.id)
        if (
            declared is not None
            and value_kind is not None
            and declared != value_kind
        ):
            self._mismatch(
                target, f"assignment to `{target.id}`", declared, value_kind
            )
        # Flow-sensitive enough for straight-line code: later uses of
        # the name see the assigned kind (or the declared one).
        self.env[target.id] = value_kind if value_kind is not None else declared

    def visit_Call(self, node: ast.Call) -> None:
        raw = dotted_name(node.func)
        if raw is not None:
            callee = self._project_callee(raw)
            if callee is not None:
                self._check_call_boundary(node, callee)
        self.generic_visit(node)

    def _project_callee(self, raw: str):
        if raw.startswith("self.") and self.func.cls is not None:
            rest = raw[len("self.") :]
            if "." not in rest:
                return self.graph.lookup_method(self.module, self.func.cls, rest)
            return None
        resolved = self.graph.resolve(self.module, raw)
        return self.graph.functions.get(resolved)

    def _check_call_boundary(self, node: ast.Call, callee) -> None:
        params = list(callee.params)
        if callee.cls is not None and params and params[0] in ("self", "cls"):
            params = params[1:]
        for param, arg in zip(params, node.args):
            self._check_arg(node, callee, param, arg)
        by_name = set(params)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in by_name:
                self._check_arg(node, callee, keyword.arg, keyword.value)

    def _check_arg(self, node: ast.Call, callee, param: str, arg: ast.expr) -> None:
        declared = kind_of_name(param)
        if declared is None:
            return
        actual = self.kind(arg)
        if actual is not None and actual != declared:
            self.problems.append(
                (
                    arg,
                    f"units mismatch: argument for `{param}` of "
                    f"`{callee.name}()` carries {actual}, parameter "
                    f"declares {declared} — convert via resources.units "
                    "at the call site",
                )
            )


def check_function(
    func: "FunctionInfo", module: "ModuleInfo", graph: "ProjectGraph"
) -> list[tuple[ast.AST, str]]:
    """Run the units checker over one function; (node, message) pairs."""
    checker = _UnitsChecker(func, module, graph)
    body = func.node.body if isinstance(func.node.body, list) else [func.node.body]
    for stmt in body:
        checker.visit(stmt)
    return checker.problems
