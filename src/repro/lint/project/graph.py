"""Import/symbol graph and best-effort call graph over a file tree.

The builder parses every python file under the given roots exactly
once and derives, per module:

* the module's dotted name (from ``__init__.py`` package nesting, so
  ``src/repro/db/engine.py`` is ``repro.db.engine`` and
  ``scripts/bench_kernel.py`` is ``scripts.bench_kernel``);
* a symbol table mapping local names to dotted targets, with relative
  imports resolved against the module's package and re-exports through
  ``__init__.py`` chased to their defining module;
* every top-level function, class (with methods and bases), and
  module-level constant assignment;
* per-function call sites as written (``self._transition``,
  ``time.sleep``, ``names.FOO``), resolvable on demand.

Resolution is deliberately *best-effort*: anything the static view
cannot pin down (a call through an instance attribute of unknown type,
a dynamically built name) resolves to its raw dotted text, never to a
wrong symbol.  The project rules are written so that an unresolved name
means "no finding", keeping the engine free of type-inference-shaped
false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..framework import (
    Finding,
    Pragmas,
    _relative_to_root,
    iter_python_files,
    parse_pragmas,
)

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectGraph",
    "dotted_name",
    "module_name_for",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_name_for(path: Path) -> str:
    """Dotted module name from package nesting on disk.

    Walks up while the parent directory is a package (has an
    ``__init__.py``); ``pkg/sub/__init__.py`` names the package itself.
    """
    path = Path(path)
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass(frozen=True)
class CallSite:
    """One call expression, by its dotted target text as written."""

    raw: str
    lineno: int
    col: int


@dataclass
class FunctionInfo:
    """A module-level function or a method."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    lineno: int
    col: int
    is_generator: bool
    params: tuple[str, ...]
    calls: tuple[CallSite, ...]
    node: ast.AST = field(repr=False)


@dataclass
class ClassInfo:
    """A top-level class with its methods and raw base/decorator names."""

    qualname: str
    module: str
    name: str
    lineno: int
    col: int
    bases: tuple[str, ...]
    decorators: tuple[str, ...]
    methods: dict[str, FunctionInfo]
    node: ast.ClassDef = field(repr=False)


@dataclass
class ModuleInfo:
    """Everything the project rules need to know about one module."""

    name: str
    path: str
    rel_path: str
    source: str
    tree: ast.Module = field(repr=False)
    pragmas: Pragmas
    #: local name -> dotted import target (relative imports resolved).
    symbols: dict[str, str]
    functions: dict[str, FunctionInfo]
    classes: dict[str, ClassInfo]
    #: module-level ``NAME = <expr>`` assignments.
    constants: dict[str, ast.expr] = field(repr=False)
    is_package: bool = False

    def iter_functions(self) -> Iterable[FunctionInfo]:
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()


def _is_generator(func: ast.AST) -> bool:
    """Yield anywhere in the body, not counting nested defs/lambdas."""
    body = func.body if isinstance(func.body, list) else [func.body]
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _collect_calls(func: ast.AST) -> tuple[CallSite, ...]:
    """Every call with a dotted target anywhere in the function body.

    Nested defs are *included* deliberately — reachability rules treat
    a helper defined inside a process as part of that process (a safe
    over-approximation for a lint).
    """
    calls: list[CallSite] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func)
            if raw is not None:
                calls.append(CallSite(raw, node.lineno, node.col_offset))
    return tuple(calls)


def _param_names(func: ast.AST) -> tuple[str, ...]:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    return tuple(names)


class ProjectGraph:
    """Parsed modules plus symbol/call resolution over them."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: qualname -> FunctionInfo (module functions and methods).
        self.functions: dict[str, FunctionInfo] = {}
        #: qualname -> ClassInfo.
        self.classes: dict[str, ClassInfo] = {}
        #: files that failed to parse, as E000 findings.
        self.errors: list[Finding] = []

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        paths: Iterable[str | Path],
        root: Optional[Path] = None,
    ) -> "ProjectGraph":
        graph = cls()
        for file_path in iter_python_files(paths):
            graph._add_file(Path(file_path), root=root)
        return graph

    def _add_file(self, path: Path, root: Optional[Path] = None) -> None:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            self.errors.append(
                Finding(str(path), 0, 0, "E001", f"cannot read file: {exc}")
            )
            return
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.errors.append(
                Finding(
                    str(path),
                    exc.lineno or 0,
                    exc.offset or 0,
                    "E000",
                    f"syntax error: {exc.msg}",
                )
            )
            return
        name = module_name_for(path)
        is_package = path.name == "__init__.py"
        module = ModuleInfo(
            name=name,
            path=str(path),
            rel_path=_relative_to_root(path, root),
            source=source,
            tree=tree,
            pragmas=parse_pragmas(source),
            symbols={},
            functions={},
            classes={},
            constants={},
            is_package=is_package,
        )
        self._collect_top_level(module)
        if name in self.modules:
            # Same dotted name reached twice (e.g. two roots overlapping);
            # first one wins, deterministically (files are sorted).
            return
        self.modules[name] = module
        for func in module.iter_functions():
            self.functions[func.qualname] = func
        for cls_info in module.classes.values():
            self.classes[cls_info.qualname] = cls_info

    def _collect_top_level(self, module: ModuleInfo) -> None:
        package = module.name if module.is_package else module.name.rpartition(".")[0]
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.asname:
                        module.symbols[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        module.symbols[top] = top
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(stmt, module, package)
                if base is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.symbols[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[stmt.name] = self._function_info(
                    module, stmt, cls=None
                )
            elif isinstance(stmt, ast.ClassDef):
                module.classes[stmt.name] = self._class_info(module, stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.constants[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    module.constants[stmt.target.id] = stmt.value

    @staticmethod
    def _import_base(
        stmt: ast.ImportFrom, module: ModuleInfo, package: str
    ) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module or ""
        # Relative import: level 1 is the module's own package, each
        # further level strips one more component.
        base_parts = package.split(".") if package else []
        strip = stmt.level - 1
        if strip > len(base_parts):
            return None  # beyond the root; unresolvable here
        if strip:
            base_parts = base_parts[: len(base_parts) - strip]
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts)

    def _function_info(
        self, module: ModuleInfo, node: ast.AST, cls: Optional[str]
    ) -> FunctionInfo:
        qual = (
            f"{module.name}.{cls}.{node.name}" if cls else f"{module.name}.{node.name}"
        )
        return FunctionInfo(
            qualname=qual,
            module=module.name,
            name=node.name,
            cls=cls,
            lineno=node.lineno,
            col=node.col_offset,
            is_generator=_is_generator(node),
            params=_param_names(node),
            calls=_collect_calls(node),
            node=node,
        )

    def _class_info(self, module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        methods = {
            stmt.name: self._function_info(module, stmt, cls=node.name)
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        bases = tuple(
            name for name in (dotted_name(b) for b in node.bases) if name is not None
        )
        decorators = tuple(
            name
            for name in (
                dotted_name(d.func) if isinstance(d, ast.Call) else dotted_name(d)
                for d in node.decorator_list
            )
            if name is not None
        )
        return ClassInfo(
            qualname=f"{module.name}.{node.name}",
            module=module.name,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            bases=bases,
            decorators=decorators,
            methods=methods,
            node=node,
        )

    # -- resolution ----------------------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str) -> str:
        """Canonical fully-qualified name for ``dotted`` as seen from
        ``module`` — through imports, then through re-exports.

        Unresolvable names come back unchanged (e.g. builtins, names
        bound at runtime), so callers can still match externals like
        ``time.sleep`` textually.
        """
        head, _, rest = dotted.partition(".")
        if head in module.symbols:
            base = module.symbols[head]
        elif (
            head in module.functions
            or head in module.classes
            or head in module.constants
        ):
            base = f"{module.name}.{head}"
        else:
            return dotted
        full = f"{base}.{rest}" if rest else base
        return self.canonicalize(full)

    def canonicalize(self, fq: str, _seen: Optional[frozenset[str]] = None) -> str:
        """Chase re-exports: map ``repro.middleware.Heartbeat`` to
        ``repro.middleware.protocol.Heartbeat`` when the package
        ``__init__`` merely re-imported it.  Cycle-safe."""
        seen = _seen or frozenset()
        if fq in seen:
            return fq
        parts = fq.split(".")
        for i in range(len(parts), 0, -1):
            mod_name = ".".join(parts[:i])
            if mod_name not in self.modules:
                continue
            rest = parts[i:]
            if not rest:
                return fq
            module = self.modules[mod_name]
            head = rest[0]
            if (
                head in module.symbols
                and head not in module.functions
                and head not in module.classes
                and head not in module.constants
            ):
                target = module.symbols[head]
                tail = ".".join(rest[1:])
                full = f"{target}.{tail}" if tail else target
                return self.canonicalize(full, seen | {fq})
            return fq
        return fq

    def lookup_function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def lookup_method(
        self, module: ModuleInfo, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        """Find ``method`` on ``class_name`` (as visible from ``module``),
        chasing base classes that resolve within the project."""
        seen: set[str] = set()
        queue = [self.resolve(module, class_name)]
        while queue:
            qual = queue.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            base_module = self.modules.get(cls.module)
            if base_module is not None:
                queue.extend(self.resolve(base_module, b) for b in cls.bases)
        return None

    def call_targets(self, func: FunctionInfo) -> list[tuple[CallSite, str]]:
        """(call site, canonical target) pairs for one function.

        ``self.method()`` resolves within the enclosing class (and its
        project-local bases); other dotted calls resolve through the
        module's symbol table.  Unresolvable targets keep their raw
        dotted text.
        """
        module = self.modules.get(func.module)
        if module is None:
            return []
        out: list[tuple[CallSite, str]] = []
        for call in func.calls:
            target = call.raw
            if call.raw.startswith("self.") and func.cls is not None:
                rest = call.raw[len("self.") :]
                if "." not in rest:
                    method = self.lookup_method(module, func.cls, rest)
                    if method is not None:
                        target = method.qualname
            else:
                target = self.resolve(module, call.raw)
            out.append((call, target))
        return out
