"""Project-level static analysis: import/symbol/call graph + dataflow.

Where ``repro.lint`` proper checks one file at a time, this subpackage
builds a whole-program view of ``src/``, ``scripts/``, and
``benchmarks/`` — module graph, symbol table, best-effort call graph,
and a lightweight intra-procedural units dataflow — and runs the
cross-module SLK101–SLK105 rule family on it:

* **SLK101** — sim-process blocking-call reachability,
* **SLK102** — protocol message/handler exhaustiveness,
* **SLK103** — migration state-machine conformance,
* **SLK104** — units-flow mismatches (seconds/millis/bytes/pages),
* **SLK105** — cross-module obs-name resolution.

Entry point: :func:`analyze_project` (or ``python -m repro.lint
--project`` on the command line, with text/JSON/SARIF output and a
content-hash result cache for cheap CI reruns).
"""

from __future__ import annotations

from .engine import ProjectResult, analyze_project
from .graph import ClassInfo, FunctionInfo, ModuleInfo, ProjectGraph
from .rules import ProjectRule, all_project_rules

__all__ = [
    "ProjectGraph",
    "ModuleInfo",
    "ClassInfo",
    "FunctionInfo",
    "ProjectRule",
    "ProjectResult",
    "all_project_rules",
    "analyze_project",
]
