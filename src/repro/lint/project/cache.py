"""Content-hash result cache for lint runs.

CI reruns the linter on every push; most pushes change a handful of
files and none of the lint inputs.  The cache keys a run by a single
sha256 over (a) the source of the lint package itself — a rule change
invalidates everything, (b) the resolved configuration, and (c) the
relative path + content hash of every file in the run.  Any byte of
difference anywhere produces a different key, so entries never need
invalidation — stale keys are simply never looked up again (``prune``
keeps the directory from growing without bound).

Only findings are cached.  Unused-pragma accounting needs the rules to
actually execute, so the runner bypasses the cache when that report is
requested.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Optional

from ..config import LintConfig
from ..framework import Finding, _relative_to_root, iter_python_files

__all__ = ["DEFAULT_CACHE_DIR", "cache_key", "load", "store", "prune"]

DEFAULT_CACHE_DIR = ".slackerlint_cache"

#: Cache format version; bump when the stored shape changes.
_FORMAT = 2


def _lint_package_hash() -> str:
    """sha256 over the lint package's own source files."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(package_root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def cache_key(
    paths: Iterable[str | Path],
    config: LintConfig,
    root: Optional[Path] = None,
    project: bool = False,
) -> Optional[str]:
    """Run key, or None when any input file is unreadable."""
    digest = hashlib.sha256()
    digest.update(str(_FORMAT).encode())
    digest.update(_lint_package_hash().encode())
    digest.update(repr(config).encode())
    digest.update(b"project" if project else b"files")
    for file_path in iter_python_files(paths):
        file_path = Path(file_path)
        try:
            content = file_path.read_bytes()
        except OSError:
            return None
        digest.update(_relative_to_root(file_path, root).encode())
        digest.update(hashlib.sha256(content).digest())
    return digest.hexdigest()


def load(cache_dir: str | Path, key: str) -> Optional[list[Finding]]:
    """Cached findings for ``key``, or None on miss/corruption."""
    entry = Path(cache_dir) / f"{key}.json"
    try:
        data = json.loads(entry.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if data.get("format") != _FORMAT:
        return None
    try:
        return [Finding(**item) for item in data["findings"]]
    except (KeyError, TypeError):
        return None


def store(cache_dir: str | Path, key: str, findings: list[Finding]) -> None:
    """Persist ``findings`` under ``key``; failures are silent (cache
    misses are always correct, just slower)."""
    cache_dir = Path(cache_dir)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _FORMAT,
            "findings": [f.to_dict() for f in findings],
        }
        tmp = cache_dir / f"{key}.tmp"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(cache_dir / f"{key}.json")
    except OSError:
        pass


def prune(cache_dir: str | Path, keep: int = 32) -> None:
    """Drop all but the ``keep`` most recently touched entries."""
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        return
    entries = sorted(
        cache_dir.glob("*.json"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    for stale in entries[keep:]:
        try:
            stale.unlink()
        except OSError:
            pass
