"""Orchestrate per-file and project passes over one parse of the tree.

The CLI's engine room.  Files are parsed exactly once (by the project
graph builder); the same trees and pragma tables feed both the
per-file rules and the project rules, so suppression *usage* is
accumulated across passes and ``--show-unused-pragmas`` sees the whole
picture.  Results are optionally memoized in a content-hash cache
(:mod:`repro.lint.project.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .config import LintConfig
from .framework import Finding, lint_source, merge_findings
from .project import cache as result_cache
from .project.engine import analyze_project
from .project.graph import ProjectGraph

__all__ = ["LintRun", "run_lint"]


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    findings: list[Finding]
    #: (path, line, rule id) of pragmas that suppressed nothing.
    unused_pragmas: list[tuple[str, int, str]] = field(default_factory=list)
    cache_hit: bool = False


def run_lint(
    paths: Iterable[str | Path],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
    project: bool = False,
    use_cache: bool = False,
    cache_dir: str | Path = result_cache.DEFAULT_CACHE_DIR,
    collect_unused: bool = False,
) -> LintRun:
    """Lint ``paths``; with ``project`` the SLK10x rules run too.

    ``collect_unused`` forces a full run (the cache stores findings
    only — pragma usage requires the rules to execute).
    """
    config = config or LintConfig()
    paths = [Path(p) for p in paths]
    use_cache = use_cache and not collect_unused
    key: Optional[str] = None
    if use_cache:
        key = result_cache.cache_key(paths, config, root=root, project=project)
        if key is not None:
            cached = result_cache.load(cache_dir, key)
            if cached is not None:
                return LintRun(findings=cached, cache_hit=True)

    graph = ProjectGraph.build(paths, root=root)
    findings: list[Finding] = list(graph.errors)
    ran_by_file: dict[str, set[str]] = {}
    for module in graph.modules.values():
        ran: set[str] = set()
        findings.extend(
            lint_source(
                module.source,
                path=module.path,
                rel_path=module.rel_path,
                config=config,
                pragmas=module.pragmas,
                tree=module.tree,
                ran_rules=ran,
            )
        )
        ran_by_file[module.path] = ran
    if project:
        result = analyze_project(paths, config=config, root=root, graph=graph)
        findings.extend(result.findings)
        for path, ran in result.ran_by_file.items():
            ran_by_file.setdefault(path, set()).update(ran)

    findings = merge_findings(findings)
    unused: list[tuple[str, int, str]] = []
    if collect_unused:
        for module in graph.modules.values():
            ran = ran_by_file.get(module.path, set())
            for line, rule_id in module.pragmas.unused(ran):
                unused.append((module.path, line, rule_id))
        unused.sort()

    if use_cache and key is not None:
        result_cache.store(cache_dir, key, findings)
        result_cache.prune(cache_dir)
    return LintRun(findings=findings, unused_pragmas=unused)
