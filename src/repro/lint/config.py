"""Lint configuration, optionally loaded from ``[tool.repro.lint]``.

``pyproject.toml`` may carry::

    [tool.repro.lint]
    disable = ["SLK004"]
    wall_clock_allow = ["scripts/"]
    units_scope = ["src/repro"]
    worker_scope = ["repro/parallel/"]

On Python 3.11+ the stdlib :mod:`tomllib` parses the file; on 3.10,
where tomllib does not exist and this repo adds no third-party
dependencies, a minimal line-based parser handles the small subset of
TOML the lint table uses (strings and lists of strings).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 only
    tomllib = None  # type: ignore[assignment]

__all__ = ["LintConfig", "load_pyproject_config", "parse_lint_table"]


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter settings."""

    #: Rule ids disabled everywhere (e.g. ``("SLK004",)``).
    disable: tuple[str, ...] = ()
    #: Path prefixes (posix, relative) where wall-clock calls are allowed.
    wall_clock_allow: tuple[str, ...] = ("scripts/",)
    #: Path prefixes the raw-byte-literal rule (SLK006) is limited to;
    #: empty means "everywhere".
    units_scope: tuple[str, ...] = ()
    #: Path prefixes holding code reachable from sweep-worker entry
    #: points, where the shared-module-state rule (SLK008) applies;
    #: empty disables the rule.
    worker_scope: tuple[str, ...] = ("repro/parallel/",)
    #: Path prefixes where the bounded-retry rule (SLK009) applies;
    #: empty disables the rule.
    retry_scope: tuple[str, ...] = ("repro/",)
    #: Path prefixes where the metric/span naming rule (SLK010) applies;
    #: empty disables the rule.
    obs_scope: tuple[str, ...] = ("repro/", "scripts/")
    #: Path prefixes holding simulation code whose generator processes
    #: must not reach OS-blocking/wall-clock calls (SLK101); empty
    #: disables the rule.
    sim_scope: tuple[str, ...] = ("repro/",)
    #: Path prefixes exempt from SLK101 even inside ``sim_scope`` (the
    #: linter itself walks the filesystem, not the simulation).
    sim_exclude: tuple[str, ...] = ("repro/lint/",)
    #: Path prefixes where the units-flow dataflow rule (SLK104)
    #: applies; empty disables the rule.
    units_flow_scope: tuple[str, ...] = ("repro/",)
    #: Fully-qualified module holding the registered metric/span name
    #: constants SLK105 resolves against.
    obs_names_module: str = "repro.obs.names"
    #: Substrings marking a function as a message-dispatch loop for the
    #: protocol-exhaustiveness rule (SLK102).
    dispatch_markers: tuple[str, ...] = ("dispatch",)
    #: Path prefixes where migrations must be launched through the wave
    #: executor's budget ledger, never ``node.migrate_tenant`` directly
    #: (SLK106); empty disables the rule.
    placement_scope: tuple[str, ...] = ("repro/placement/",)
    #: Path prefixes inside ``placement_scope`` that ARE the launch
    #: path (the executor itself) and may call the node verbs.
    placement_launch_allow: tuple[str, ...] = ("repro/placement/executor.py",)
    #: Path prefixes where migration-protocol frames must carry their
    #: fencing token: any construction of a token-bearing registered
    #: message must pass ``token=`` explicitly (SLK107), and any
    #: chunk-ownership flip must pass ``token=`` through the fencing
    #: check (SLK108); empty disables both rules.
    fencing_scope: tuple[str, ...] = ("repro/middleware/", "repro/migration/")
    #: Path prefixes (hot, tick-dominated scopes) where eager periodic
    #: timeout loops must use the coalesced timer API (SLK011); empty
    #: disables the rule.
    periodic_scope: tuple[str, ...] = (
        "repro/middleware/",
        "repro/migration/",
        "repro/placement/",
        "repro/obs/",
    )

    def with_extra_disabled(self, rule_ids: tuple[str, ...]) -> "LintConfig":
        merged = tuple(dict.fromkeys(self.disable + rule_ids))
        return replace(self, disable=merged)


def _config_from_table(table: dict) -> LintConfig:
    def _str_tuple(key: str, default: tuple[str, ...]) -> tuple[str, ...]:
        value = table.get(key)
        if value is None:
            return default
        if isinstance(value, str):
            value = [value]
        return tuple(str(v) for v in value)

    defaults = LintConfig()
    obs_names_module = table.get("obs_names_module")
    return LintConfig(
        disable=_str_tuple("disable", defaults.disable),
        wall_clock_allow=_str_tuple("wall_clock_allow", defaults.wall_clock_allow),
        units_scope=_str_tuple("units_scope", defaults.units_scope),
        worker_scope=_str_tuple("worker_scope", defaults.worker_scope),
        retry_scope=_str_tuple("retry_scope", defaults.retry_scope),
        obs_scope=_str_tuple("obs_scope", defaults.obs_scope),
        sim_scope=_str_tuple("sim_scope", defaults.sim_scope),
        sim_exclude=_str_tuple("sim_exclude", defaults.sim_exclude),
        units_flow_scope=_str_tuple("units_flow_scope", defaults.units_flow_scope),
        obs_names_module=(
            str(obs_names_module)
            if obs_names_module is not None
            else defaults.obs_names_module
        ),
        dispatch_markers=_str_tuple("dispatch_markers", defaults.dispatch_markers),
        placement_scope=_str_tuple("placement_scope", defaults.placement_scope),
        placement_launch_allow=_str_tuple(
            "placement_launch_allow", defaults.placement_launch_allow
        ),
        fencing_scope=_str_tuple("fencing_scope", defaults.fencing_scope),
        periodic_scope=_str_tuple("periodic_scope", defaults.periodic_scope),
    )


#: ``key = "value"`` or ``key = ["a", "b"]`` within the lint table.
_KV_RE = re.compile(r"^\s*([A-Za-z0-9_-]+)\s*=\s*(.+?)\s*$")
_SECTION_RE = re.compile(r"^\s*\[(.+?)\]\s*$")


def parse_lint_table(text: str) -> dict:
    """Tiny fallback parser for the ``[tool.repro.lint]`` table.

    Handles only what the lint config needs — bare strings and flat
    lists of strings — so 3.10 (no :mod:`tomllib`) still works without
    adding a dependency.
    """
    table: dict = {}
    in_section = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        section = _SECTION_RE.match(line)
        if section:
            in_section = section.group(1).strip() == "tool.repro.lint"
            continue
        if not in_section:
            continue
        kv = _KV_RE.match(line)
        if not kv:
            continue
        key, value = kv.group(1), kv.group(2)
        if value.startswith("[") and value.endswith("]"):
            items = re.findall(r"""["']([^"']*)["']""", value)
            table[key] = items
        elif value[:1] in "\"'" and value[-1:] in "\"'":
            table[key] = value[1:-1]
    return table


def load_pyproject_config(path: str | Path = "pyproject.toml") -> Optional[LintConfig]:
    """Load ``[tool.repro.lint]`` from ``path``; None if absent."""
    path = Path(path)
    if not path.is_file():
        return None
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError:
            return None
        table = data.get("tool", {}).get("repro", {}).get("lint")
    else:  # pragma: no cover - 3.10 fallback
        table = parse_lint_table(text) or None
    if table is None:
        return None
    return _config_from_table(table)


def find_pyproject(start: str | Path = ".") -> Optional[Path]:
    """Walk up from ``start`` looking for a pyproject.toml."""
    current = Path(start).resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
