"""The SLK rule set: determinism and units discipline for the sim stack.

Each rule is a small :class:`~repro.lint.framework.Rule` visitor.  The
ids are stable and documented in ``docs/LINT.md``; add new rules at the
end and never reuse an id.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from .framework import Rule, register

__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "SwallowedExceptionRule",
    "RawByteLiteralRule",
    "WallClockCallbackRule",
    "SharedModuleStateRule",
    "UnboundedRetryRule",
    "DynamicMetricNameRule",
]

#: Call targets that read the wall clock (dotted names after import
#: resolution).  ``datetime.datetime.now`` covers ``import datetime``;
#: ``datetime.now`` covers ``from datetime import datetime``.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: Module-level ``random`` functions that mutate the hidden global RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)


def _wall_clock_target(qualname: Optional[str]) -> bool:
    return qualname is not None and qualname in WALL_CLOCK_CALLS


@register
class WallClockRule(Rule):
    """SLK001: no wall-clock reads inside simulation code.

    Simulated components must take time from ``env.now``; a wall-clock
    read couples results to host speed and destroys run-to-run
    determinism.  Paths in ``wall_clock_allow`` (default ``scripts/``)
    are exempt; anything else needs a line pragma with a justification.
    """

    id = "SLK001"
    summary = "wall-clock call (time.time, datetime.now, ...) in simulation code"

    def applies_to(self, rel_path: str) -> bool:
        return not any(
            rel_path.startswith(prefix) or f"/{prefix}" in f"/{rel_path}"
            for prefix in self.ctx.config.wall_clock_allow
        )

    def visit_Call(self, node: ast.Call) -> None:
        qualname = self.ctx.imports.qualname(node.func)
        if _wall_clock_target(qualname):
            self.report(
                node,
                f"wall-clock call `{qualname}` — use the simulation clock "
                "(env.now); wall time breaks determinism",
            )
        self.generic_visit(node)


@register
class GlobalRandomRule(Rule):
    """SLK002: no global-RNG use and no constant-seed ``Random`` defaults.

    Module-level ``random.*`` draws share one hidden global stream, so
    any new caller perturbs every existing one.  ``random.Random()``
    seeds from the OS (non-reproducible) and ``random.Random(<literal>)``
    hard-codes a seed — two components defaulting to the same literal
    silently produce *correlated* noise.  RNGs must be passed in or
    derived per purpose (``server.rng(purpose)`` /
    ``simulation.rng.default_rng(purpose)``).
    """

    id = "SLK002"
    summary = "global `random` module use or unseeded/constant-seed Random()"

    def visit_Call(self, node: ast.Call) -> None:
        qualname = self.ctx.imports.qualname(node.func)
        if qualname is not None:
            if (
                qualname.startswith("random.")
                and qualname.split(".", 1)[1] in GLOBAL_RANDOM_FUNCS
            ):
                self.report(
                    node,
                    f"global RNG call `{qualname}` — thread a seeded "
                    "random.Random through instead (server.rng(purpose))",
                )
            elif qualname in ("random.Random", "random.SystemRandom"):
                self._check_random_ctor(node, qualname)
        self.generic_visit(node)

    def _check_random_ctor(self, node: ast.Call, qualname: str) -> None:
        if not node.args and not node.keywords:
            self.report(
                node,
                f"`{qualname}()` without a seed is non-reproducible — "
                "derive the RNG from the experiment seed "
                "(simulation.rng.default_rng(purpose))",
            )
            return
        if node.args and isinstance(node.args[0], ast.Constant):
            self.report(
                node,
                f"`{qualname}({node.args[0].value!r})` hard-codes a seed; "
                "components sharing a literal seed emit correlated streams "
                "— use default_rng(purpose) / server.rng(purpose)",
            )


def _is_floatish(node: ast.expr) -> bool:
    """Expression statically known to produce a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.BinOp):
        return _is_floatish(node.left) or _is_floatish(node.right)
    return False


@register
class FloatEqualityRule(Rule):
    """SLK003: no ``==`` / ``!=`` against float quantities.

    Simulated latencies and rates accumulate rounding; exact equality
    flips on harmless reorderings and makes figures irreproducible.
    Compare with a tolerance (``math.isclose``) or restructure.
    """

    id = "SLK003"
    summary = "float equality comparison (== / != with a float operand)"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_floatish(left) or _is_floatish(right)
            ):
                self.report(
                    node,
                    "float equality comparison — use math.isclose or an "
                    "explicit tolerance",
                )
                break
        self.generic_visit(node)


_MUTABLE_CALLS = frozenset({"list", "dict", "set"})


@register
class MutableDefaultRule(Rule):
    """SLK004: no mutable default arguments.

    A mutable default is shared across calls, so state leaks between
    independently-constructed components — e.g. two experiments sharing
    one latency buffer.
    """

    id = "SLK004"
    summary = "mutable default argument ([], {}, set(), list(), dict())"

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ):
                self.report(default, "mutable default argument — default to None")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                self.report(default, "mutable default argument — default to None")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def _body_is_only_pass(body: list[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        for stmt in body
    )


@register
class SwallowedExceptionRule(Rule):
    """SLK005: no bare ``except:`` and no silently-swallowed ``Exception``.

    The simulation kernel deliberately crashes on unhandled event
    failures ("errors should never pass silently"); a swallowing handler
    upstream converts a correctness bug into a quietly-wrong figure.
    Narrow handlers (``except ValueError: pass``) are fine.
    """

    id = "SLK005"
    summary = "bare except / `except Exception: pass` swallowing"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` — catch a specific exception (a bare except "
                "hides kernel failures, including KeyboardInterrupt)",
            )
        else:
            qualname = self.ctx.imports.qualname(node.type)
            if qualname in ("Exception", "BaseException") and _body_is_only_pass(
                node.body
            ):
                self.report(
                    node,
                    f"`except {qualname}: pass` swallows simulation errors — "
                    "handle or re-raise",
                )
        self.generic_visit(node)


def _const_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


@register
class RawByteLiteralRule(Rule):
    """SLK006: raw byte-size literals must go through ``resources/units.py``.

    ``64 * 1024`` vs ``64 * 1000`` is exactly the MB-vs-MiB ambiguity the
    units module exists to remove; a literal ``1024`` in migration/DB
    code re-opens it.  Flags integer literals that are non-zero
    multiples of 1024 and constant ``1 << 20``-style shifts.
    """

    id = "SLK006"
    summary = "raw byte-size literal (1024 multiples) instead of units helpers"

    def applies_to(self, rel_path: str) -> bool:
        scope = self.ctx.config.units_scope
        if not scope:
            return True
        return any(
            rel_path.startswith(prefix) or f"/{prefix}" in f"/{rel_path}"
            for prefix in scope
        )

    def visit_Constant(self, node: ast.Constant) -> None:
        value = node.value
        # slackerlint: disable=SLK006 -- the 1024s here are the detector itself
        if type(value) is int and value >= 1024 and value % 1024 == 0:
            self.report(
                node,
                f"raw byte literal {value} — express it via resources.units "
                "(KB/MB/GB) so units stay auditable",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.LShift):
            left, right = _const_int(node.left), _const_int(node.right)
            if left is not None and right is not None and (left << right) >= 1024:
                self.report(
                    node,
                    f"raw byte literal {left} << {right} — use resources.units "
                    "(KB/MB/GB) helpers",
                )
                return  # don't also visit the operand constants
        self.generic_visit(node)


@register
class WallClockCallbackRule(Rule):
    """SLK007: simulator event callbacks must not read the wall clock.

    A callback registered on an :class:`~repro.simulation.core.Event`
    runs at event-processing time; if it captures wall time the recorded
    timestamps depend on host load rather than ``env.now``, which is how
    subtle non-determinism sneaks into traces.
    """

    id = "SLK007"
    summary = "event callback registered on the simulator reads the wall clock"

    def run(self):  # type: ignore[override]
        # Pass 1: local function defs / lambdas that touch the wall clock.
        tainted_names: set[str] = set()
        tainted_lambdas: set[int] = set()
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                if self._reads_wall_clock(node):
                    if isinstance(node, ast.Lambda):
                        tainted_lambdas.add(id(node))
                    else:
                        tainted_names.add(node.name)
        # Pass 2: registration sites.
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_callback_registration(node):
                continue
            for arg in node.args:
                if (isinstance(arg, ast.Lambda) and id(arg) in tainted_lambdas) or (
                    isinstance(arg, ast.Name) and arg.id in tainted_names
                ):
                    self.report(
                        node,
                        "event callback reads the wall clock — capture env.now "
                        "at registration or inside the callback instead",
                    )
                    break
        return self.findings

    def _reads_wall_clock(self, func: ast.AST) -> bool:
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _wall_clock_target(
                    self.ctx.imports.qualname(node.func)
                ):
                    return True
        return False

    def _is_callback_registration(self, node: ast.Call) -> bool:
        """True for ``<expr>.callbacks.append(...)`` registration calls."""
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "append"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "callbacks"
        )


#: Constructors whose result is a mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


@register
class SharedModuleStateRule(Rule):
    """SLK008: no shared mutable module-level state in worker-reachable code.

    Sweep workers import task modules independently, so module-level
    mutable state silently *forks*: each worker mutates its own copy,
    ``jobs=1`` and ``jobs=N`` diverge, and the serial/parallel
    bit-identity guarantee breaks.  Within ``worker_scope`` (default
    ``repro/parallel/``), module globals must be immutable constants
    (tuples, frozensets, strings, numbers); anything mutable must live
    on an instance or travel through task arguments.  ``global``
    statements are flagged for the same reason.
    """

    id = "SLK008"
    summary = "shared mutable module-level state in worker-reachable code"

    def applies_to(self, rel_path: str) -> bool:
        return any(
            rel_path.startswith(prefix) or f"/{prefix}" in f"/{rel_path}"
            for prefix in self.ctx.config.worker_scope
        )

    def run(self):  # type: ignore[override]
        tree = self.ctx.tree
        if isinstance(tree, ast.Module):
            for stmt in tree.body:
                self._check_module_stmt(stmt)
        for node in ast.walk(tree):
            if isinstance(node, ast.Global):
                self.report(
                    node,
                    "`global` rebinds module state — workers each mutate "
                    "their own interpreter's copy, so jobs=1 and jobs=N "
                    "diverge; pass state through task arguments instead",
                )
        return self.findings

    def _check_module_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if names and all(n.startswith("__") and n.endswith("__") for n in names):
            return  # module metadata (__all__ and friends) is fine
        if self._is_mutable(value):
            label = ", ".join(names) or "<target>"
            self.report(
                stmt,
                f"module-level mutable `{label}` is per-process state — "
                "each sweep worker gets an independent copy; use an "
                "immutable constant (tuple/frozenset) or pass it via "
                "task kwargs",
            )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            return self.ctx.imports.qualname(node.func) in _MUTABLE_FACTORIES
        return False


#: Loop-local names whose presence in a comparison marks a retry loop
#: as bounded (attempt counters, deadlines, budgets).
_BOUND_NAME_RE = re.compile(
    r"(attempt|retr|tries|try_count|deadline|budget|remaining)", re.IGNORECASE
)

#: Function names expected to produce retry jitter/backoff values.
_JITTER_NAME_RE = re.compile(r"(backoff|jitter)", re.IGNORECASE)

#: Constructors of process-seeded RNGs (non-replayable jitter sources).
_FRESH_RNG_CALLS = frozenset({"random.Random", "random.SystemRandom"})


@register
class UnboundedRetryRule(Rule):
    """SLK009: retry loops must be bounded, retry jitter must be seeded.

    Two failure patterns of hardened transports:

    * a ``while True:`` loop that re-enters from an ``except`` handler
      (``continue`` inside the handler) with no visible attempt counter,
      deadline, or budget in sight — under a fault plan that makes the
      operation *always* fail, such a loop spins forever and the chaos
      run wedges instead of aborting;
    * jitter/backoff helpers constructing a fresh ``random.Random`` —
      its seed differs per process, so ``jobs=1`` and ``jobs=N`` sweeps
      draw different backoff delays and the bit-identical replay
      guarantee breaks.  Jitter must come from a ``simulation.rng``
      stream passed in by the caller.

    Scoped to ``retry_scope`` (default ``repro/``); tests are exempt.
    """

    id = "SLK009"
    summary = "unbounded retry loop or process-seeded retry jitter"

    def applies_to(self, rel_path: str) -> bool:
        return any(
            rel_path.startswith(prefix) or f"/{prefix}" in f"/{rel_path}"
            for prefix in self.ctx.config.retry_scope
        )

    def run(self):  # type: ignore[override]
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.While) and self._is_forever(node):
                self._check_retry_loop(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _JITTER_NAME_RE.search(node.name):
                    self._check_jitter_function(node)
        return self.findings

    @staticmethod
    def _is_forever(loop: ast.While) -> bool:
        return isinstance(loop.test, ast.Constant) and bool(loop.test.value)

    def _scope_nodes(self, stmts):
        """Nodes within ``stmts``, not descending into nested loops or
        function definitions (a ``continue`` there belongs to *that*
        loop; a counter there does not bound *this* one)."""
        stack = list(stmts)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node,
                (
                    ast.While,
                    ast.For,
                    ast.AsyncFor,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                ),
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_retry_loop(self, loop: ast.While) -> None:
        if self._has_bound(loop):
            return
        for node in self._scope_nodes(loop.body):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                for stmt in self._scope_nodes(handler.body):
                    if isinstance(stmt, ast.Continue):
                        self.report(
                            stmt,
                            "`while True:` retries from an except handler "
                            "with no attempt counter, deadline, or budget "
                            "in sight — a permanent fault spins this loop "
                            "forever; bound it (e.g. `for attempt in "
                            "range(n)`) so exhaustion raises",
                        )
                        return

    def _has_bound(self, loop: ast.While) -> bool:
        for node in self._scope_nodes(loop.body):
            if not isinstance(node, ast.Compare):
                continue
            for sub in ast.walk(node):
                name = None
                if isinstance(sub, ast.Name):
                    name = sub.id
                elif isinstance(sub, ast.Attribute):
                    name = sub.attr
                if name is not None and _BOUND_NAME_RE.search(name):
                    return True
        return False

    def _check_jitter_function(self, func) -> None:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and self.ctx.imports.qualname(node.func) in _FRESH_RNG_CALLS
            ):
                self.report(
                    node,
                    "jitter/backoff constructs its own RNG — per-process "
                    "seeds break bit-identical replay; draw from a "
                    "simulation.rng stream passed in by the caller",
                )


#: Methods on observability objects whose first argument is an
#: instrument or span name.
_OBS_NAMING_METHODS = frozenset(
    {"counter", "gauge", "histogram", "span", "begin", "event"}
)

#: Receiver names (variable or attribute) treated as observability
#: handles; keeps the rule from firing on unrelated `.event(...)` calls.
_OBS_RECEIVERS = frozenset({"registry", "tracer", "obs", "metrics"})


@register
class DynamicMetricNameRule(Rule):
    """SLK010: metric/span names must be registered module-level constants.

    An f-string (or any expression built at the call site) as a metric
    or span name means string formatting on the hot path *and* an
    unbounded, undiscoverable name space — two different call sites can
    silently emit `"migration_phase"` and `"migration.phase"`.  Names
    must be constants from :mod:`repro.obs.names` (or an equally
    constant module-level reference); per-entity cardinality goes
    through the ``suffix=`` keyword, which keeps the *name* constant.
    """

    id = "SLK010"
    summary = "metric/span name built at the call site instead of a constant"

    def applies_to(self, rel_path: str) -> bool:
        scope = self.ctx.config.obs_scope
        return any(
            rel_path.startswith(prefix) or f"/{prefix}" in f"/{rel_path}"
            for prefix in scope
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _OBS_NAMING_METHODS
            and self._receiver_is_obs(func.value)
            and node.args
        ):
            name_arg = node.args[0]
            if not isinstance(name_arg, (ast.Name, ast.Attribute)):
                self.report(
                    name_arg,
                    f"`.{func.attr}(...)` name is built at the call site — "
                    "reference a module-level constant (repro.obs.names) "
                    "instead; per-entity labels go through suffix=",
                )
        self.generic_visit(node)

    @staticmethod
    def _receiver_is_obs(receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id in _OBS_RECEIVERS
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in _OBS_RECEIVERS
        return False


@register
class EagerPeriodicLoopRule(Rule):
    """SLK011: eager per-tick timeout loops in hot scopes.

    ``while True: yield env.timeout(interval)`` with a loop-invariant
    interval schedules one kernel event per tick whether or not the
    tick does anything — the pattern that made heartbeats, failure
    detectors, and token refills dominate fleet-scale event counts.
    Within ``periodic_scope`` such loops must go through
    :class:`repro.simulation.timers.PeriodicTicker` (whose chained
    tick clock keeps timestamps bit-identical while letting the
    process skip no-op ticks).

    Intervals computed fresh each iteration — RNG draws like
    ``timeout(rng.expovariate(...))``, or a name reassigned inside the
    loop — are *not* periodic and are exempt; so are one-shot timeouts
    outside ``while`` loops.  A loop whose every tick does real work
    can keep the ticker trivially (``yield ticker.tick()`` each pass),
    so the rule still points it at the API; suppress with
    ``# slackerlint: disable=SLK011`` where the eager form is load-
    bearing (e.g. the throttle's own ``coalesce=False`` reference
    path).
    """

    id = "SLK011"
    summary = "eager per-tick timeout loop instead of the coalesced timer API"

    def applies_to(self, rel_path: str) -> bool:
        scope = self.ctx.config.periodic_scope
        if not scope:
            return False
        return any(
            rel_path.startswith(prefix) or f"/{prefix}" in f"/{rel_path}"
            for prefix in scope
        )

    def visit_While(self, node: ast.While) -> None:
        rebound = self._rebound_names(node.body)
        for stmt in node.body:
            call = self._yielded_timeout(stmt)
            if call is not None and self._loop_invariant_interval(call, rebound):
                self.report(
                    stmt,
                    "periodic `yield <env>.timeout(<interval>)` loop — one "
                    "kernel event per tick; drive it with "
                    "simulation.timers.PeriodicTicker (tick()/skip()) so "
                    "no-op ticks coalesce while timestamps stay "
                    "bit-identical",
                )
        self.generic_visit(node)

    @staticmethod
    def _yielded_timeout(stmt: ast.stmt) -> Optional[ast.Call]:
        """The ``timeout`` call of a top-level ``yield X.timeout(...)``."""
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Yield):
            return None
        value = stmt.value.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("timeout", "timeout_at")
            and len(value.args) >= 1
        ):
            return value
        return None

    @staticmethod
    def _rebound_names(body: list) -> set:
        """Names and attributes assigned anywhere inside the loop body."""
        rebound: set = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                targets: list = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    targets = [sub.target]
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            rebound.add(leaf.id)
                        elif isinstance(leaf, ast.Attribute):
                            rebound.add(leaf.attr)
        return rebound

    def _loop_invariant_interval(self, call: ast.Call, rebound: set) -> bool:
        """True when the timeout argument cannot change across iterations.

        Constants are invariant; bare names and attribute chains are
        invariant unless the loop body reassigns them.  Anything
        computed per iteration (calls, arithmetic on calls) is treated
        as aperiodic.
        """
        interval = call.args[0]
        if isinstance(interval, ast.Constant):
            return isinstance(interval.value, (int, float))
        if isinstance(interval, ast.Name):
            return interval.id not in rebound
        if isinstance(interval, ast.Attribute):
            for leaf in ast.walk(interval):
                if isinstance(leaf, ast.Call):
                    return False
                if isinstance(leaf, ast.Attribute) and leaf.attr in rebound:
                    return False
                if isinstance(leaf, ast.Name) and leaf.id in rebound:
                    return False
            return True
        return False
