"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 clean, 1 findings, 2 usage/IO errors — so CI can gate on
the linter the same way it gates on pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from .config import LintConfig, find_pyproject, load_pyproject_config
from .framework import all_rules, iter_python_files, lint_paths

# Ensure rules are registered when the CLI is used directly.
from . import rules as _rules  # noqa: F401

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="slackerlint: determinism & units linter for the Slacker "
        "reproduction (rules SLK001-SLK007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip, e.g. SLK004,SLK006",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro.lint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    config: Optional[LintConfig] = None
    if not args.no_config:
        pyproject = find_pyproject()
        if pyproject is not None:
            config = load_pyproject_config(pyproject)
    config = config or LintConfig()
    extra = tuple(r.strip() for r in args.disable.split(",") if r.strip())
    if extra:
        config = config.with_extra_disabled(extra)
    return config


def main(argv: Optional[list[str]] = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Output was piped into e.g. `head` which closed early; that is
        # not a lint failure, but findings may have been truncated.
        return 1


def _run(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}  {rule_cls.summary}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    config = _resolve_config(args)
    files = list(iter_python_files(args.paths))
    findings = lint_paths(args.paths, config=config)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": len(files),
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} in {len(files)} files", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
