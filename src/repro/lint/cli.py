"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 clean, 1 findings (or stale pragmas with
``--show-unused-pragmas``), 2 usage/IO errors — so CI can gate on the
linter the same way it gates on pytest.

``--project`` adds the whole-program pass: the import/symbol/call
graph is built over the given paths and the cross-module SLK101-SLK105
rules run on it alongside the per-file rules.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from .config import LintConfig, find_pyproject, load_pyproject_config
from .framework import all_rules, iter_python_files
from .project import cache as result_cache
from .project.rules import all_project_rules
from .runner import run_lint
from .sarif import render_sarif

# Ensure rules are registered when the CLI is used directly.
from . import rules as _rules  # noqa: F401

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="slackerlint: determinism & units linter for the Slacker "
        "reproduction (per-file rules SLK001-SLK010, project rules "
        "SLK101-SLK105).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also build the project graph and run the cross-module "
        "SLK101-SLK105 rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip, e.g. SLK004,SLK104",
    )
    parser.add_argument(
        "--show-unused-pragmas",
        action="store_true",
        help="report suppression pragmas that no longer match anything "
        "(exit 1 if any; implies --no-cache)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoize results in a content-hash cache (see --cache-dir)",
    )
    parser.add_argument(
        "--cache-dir",
        default=result_cache.DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"cache location (default: {result_cache.DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro.lint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    config: Optional[LintConfig] = None
    if not args.no_config:
        pyproject = find_pyproject()
        if pyproject is not None:
            config = load_pyproject_config(pyproject)
    config = config or LintConfig()
    extra = tuple(r.strip() for r in args.disable.split(",") if r.strip())
    if extra:
        config = config.with_extra_disabled(extra)
    return config


def main(argv: Optional[list[str]] = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Output was piped into e.g. `head` which closed early; that is
        # not a lint failure, but findings may have been truncated.
        return 1


def _run(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}  {rule_cls.summary}")
        for rule_id, rule_cls in sorted(all_project_rules().items()):
            print(f"{rule_id}  {rule_cls.summary}  [--project]")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    config = _resolve_config(args)
    files = list(iter_python_files(args.paths))
    run = run_lint(
        args.paths,
        config=config,
        project=args.project,
        use_cache=args.cache,
        cache_dir=args.cache_dir,
        collect_unused=args.show_unused_pragmas,
    )
    findings = run.findings

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": len(files),
                    "cache_hit": run.cache_hit,
                    "findings": [f.to_dict() for f in findings],
                    "unused_pragmas": [
                        {"path": path, "line": line, "rule": rule_id}
                        for path, line, rule_id in run.unused_pragmas
                    ],
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        for finding in findings:
            print(finding.render())
        for path, line, rule_id in run.unused_pragmas:
            print(f"{path}:{line}: unused suppression pragma for {rule_id}")
        noun = "finding" if len(findings) == 1 else "findings"
        suffix = " (cached)" if run.cache_hit else ""
        print(
            f"{len(findings)} {noun} in {len(files)} files{suffix}",
            file=sys.stderr,
        )
        if run.unused_pragmas:
            print(
                f"{len(run.unused_pragmas)} unused suppression pragma(s)",
                file=sys.stderr,
            )

    if findings:
        return 1
    if args.show_unused_pragmas and run.unused_pragmas:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
