"""slackerlint: an AST-based determinism & units linter for this repo.

The headline claim of the reproduction — latency within 10 % of the PID
setpoint during live migration — is only checkable if the discrete-event
simulation is bit-for-bit deterministic under a fixed seed.  This
package machine-checks the conventions that make it so:

* sim-clock time (``env.now``) instead of wall clock,
* seeded per-purpose RNG streams instead of the global ``random`` module,
* ``resources/units.py`` helpers instead of raw byte literals,
* no float equality, mutable defaults, or swallowed exceptions.

Beyond the per-file rules, ``repro.lint.project`` builds a
whole-program import/symbol/call graph and runs the cross-module
SLK101-SLK105 family (sim-process blocking reachability, protocol
exhaustiveness, state-machine conformance, units dataflow, obs-name
resolution).

Usage::

    python -m repro.lint [paths...]        # lint, exit non-zero on findings
    python -m repro.lint --project src     # + cross-module SLK10x rules
    python -m repro.lint --format sarif src  # code-scanning output
    repro-lint src                          # console-script equivalent

Findings can be suppressed with pragmas (see ``docs/LINT.md``)::

    x = time.time()  # slackerlint: disable=SLK001   (this line only)
    # slackerlint: disable=SLK006                    (standalone: whole file)
"""

from __future__ import annotations

from .config import LintConfig, load_pyproject_config
from .framework import Finding, Rule, all_rules, lint_file, lint_paths, lint_source

# Importing the rules module registers every SLK rule with the registry.
from . import rules as _rules  # noqa: F401

from .project import ProjectGraph, all_project_rules, analyze_project
from .runner import LintRun, run_lint

__all__ = [
    "Finding",
    "Rule",
    "LintConfig",
    "LintRun",
    "ProjectGraph",
    "all_rules",
    "all_project_rules",
    "analyze_project",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_pyproject_config",
    "run_lint",
]
