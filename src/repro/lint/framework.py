"""Shared visitor framework, rule registry, and pragma handling.

A *rule* is an :class:`ast.NodeVisitor` subclass with a stable ``id``
(``SLK001`` ...), registered via the :func:`register` decorator.  The
runner parses each file once, hands the same tree to every enabled rule,
and merges the findings.

Suppression pragmas are read from comment tokens (via :mod:`tokenize`,
so strings that merely *contain* the pragma text are ignored):

* a trailing ``# slackerlint: disable=SLK001[,SLK002]`` suppresses those
  rules on that line only;
* a standalone comment line with the same syntax suppresses the rules
  for the whole file.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Type

from .config import LintConfig

__all__ = [
    "Finding",
    "FileContext",
    "ImportTracker",
    "Pragmas",
    "Rule",
    "register",
    "all_rules",
    "merge_findings",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "parse_pragmas",
]

#: Matches comments of the form ``slackerlint: disable=SLK001,SLK002``
#: (rule list is comma-separated).  Worded to not match itself: a doc
#: comment spelling out the full pragma syntax would register as a
#: real file-wide suppression in this very file.
_PRAGMA_RE = re.compile(r"#\s*slackerlint:\s*disable=([A-Z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, pointing at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Pragmas:
    """Suppressions extracted from a file's comments.

    Matched suppressions are recorded (``used_file`` / ``used_line``) so
    the CLI's ``--show-unused-pragmas`` can report pragmas that no longer
    suppress anything and would otherwise rot in place.
    """

    #: rule id -> line of the standalone pragma comment that disabled it.
    file_disabled: dict[str, int] = field(default_factory=dict)
    line_disabled: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids whose file-wide pragma suppressed at least one finding.
    used_file: set[str] = field(default_factory=set)
    #: (line, rule id) pairs whose line pragma suppressed a finding.
    used_line: set[tuple[int, str]] = field(default_factory=set)

    def suppresses(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_disabled:
            self.used_file.add(rule_id)
            return True
        if rule_id in self.line_disabled.get(line, ()):
            self.used_line.add((line, rule_id))
            return True
        return False

    def unused(self, ran_rules: set[str]) -> list[tuple[int, str]]:
        """(line, rule) of pragmas that suppressed nothing.

        Only rules in ``ran_rules`` (rules that actually executed on this
        file) are considered: a pragma for a rule the configuration
        scoped away is defensive, not stale.
        """
        stale: list[tuple[int, str]] = []
        for rule_id, line in self.file_disabled.items():
            if rule_id in ran_rules and rule_id not in self.used_file:
                stale.append((line, rule_id))
        for line, rules in self.line_disabled.items():
            for rule_id in rules:
                if rule_id in ran_rules and (line, rule_id) not in self.used_line:
                    stale.append((line, rule_id))
        return sorted(stale)


def parse_pragmas(source: str) -> Pragmas:
    """Extract slackerlint pragmas from ``source`` comment tokens."""
    pragmas = Pragmas()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        line_no = tok.start[0]
        before = tok.line[: tok.start[1]]
        if before.strip() == "":
            # Standalone comment line: file-wide suppression.
            for rule_id in rules:
                pragmas.file_disabled.setdefault(rule_id, line_no)
        else:
            pragmas.line_disabled.setdefault(line_no, set()).update(rules)
    return pragmas


class ImportTracker:
    """Map local names to the dotted names they import.

    >>> tree = ast.parse("import time as t\\nfrom random import Random")
    >>> tracker = ImportTracker.from_tree(tree)
    >>> tracker.resolve_name("t")
    'time'
    >>> tracker.resolve_name("Random")
    'random.Random'
    """

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportTracker":
        tracker = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        tracker._names[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        tracker._names[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    tracker._names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return tracker

    def resolve_name(self, name: str) -> Optional[str]:
        return self._names.get(name)

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a call target, resolved through imports.

        ``t.time`` with ``import time as t`` resolves to ``time.time``;
        unresolvable expressions (calls, subscripts, ...) return None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.resolve_name(node.id) or node.id
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule may need to know about the file being linted."""

    path: str
    rel_path: str
    source: str
    tree: ast.AST
    config: LintConfig
    imports: ImportTracker


#: Global registry of rule classes, keyed by rule id.
_REGISTRY: dict[str, Type["Rule"]] = {}


def register(rule_cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, Type["Rule"]]:
    """Registered rules, keyed by id (importing ``repro.lint`` populates it)."""
    return dict(_REGISTRY)


class Rule(ast.NodeVisitor):
    """Base class for lint rules: a visitor that accumulates findings."""

    #: Stable rule identifier, e.g. ``SLK001``.
    id: str = ""
    #: One-line human summary (shown by ``--list-rules`` and the docs).
    summary: str = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: list[Finding] = []

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on ``rel_path`` at all (default: yes)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings


def merge_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deduplicate exact-duplicate findings and impose the stable order.

    Multiple rules may legitimately fire on the same line (each keeps
    its own finding), but the same (path, line, col, rule, message)
    reported twice — e.g. by a per-file and a project pass sharing a
    detector — collapses to one.  Order is (path, line, col, rule,
    message), so output is reproducible across runs and pass order.
    """
    return sorted(dict.fromkeys(findings))


def lint_source(
    source: str,
    path: str = "<string>",
    rel_path: Optional[str] = None,
    config: Optional[LintConfig] = None,
    pragmas: Optional[Pragmas] = None,
    tree: Optional[ast.AST] = None,
    ran_rules: Optional[set[str]] = None,
) -> list[Finding]:
    """Lint python ``source`` text; the workhorse behind :func:`lint_file`.

    ``pragmas`` and ``tree`` let a caller that already parsed the file
    (the project engine) share its work — and, for pragmas, accumulate
    suppression usage across passes.  ``ran_rules``, when given, is
    filled with the ids of rules that actually executed on this file.
    """
    config = config or LintConfig()
    rel = rel_path if rel_path is not None else path
    rel = rel.replace("\\", "/")
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 0,
                    col=(exc.offset or 0),
                    rule="E000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
    if pragmas is None:
        pragmas = parse_pragmas(source)
    ctx = FileContext(
        path=path,
        rel_path=rel,
        source=source,
        tree=tree,
        config=config,
        imports=ImportTracker.from_tree(tree),
    )
    findings: list[Finding] = []
    for rule_id, rule_cls in sorted(_REGISTRY.items()):
        if rule_id in config.disable:
            continue
        rule = rule_cls(ctx)
        if not rule.applies_to(rel):
            continue
        if ran_rules is not None:
            ran_rules.add(rule_id)
        # File-disabled rules still run so pragma usage is recorded
        # (an unmatched file pragma is reportable as stale); their
        # findings are filtered below like line-level suppressions.
        for finding in rule.run():
            if not pragmas.suppresses(finding.rule, finding.line):
                findings.append(finding)
    return merge_findings(findings)


def lint_file(
    path: str | Path,
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=str(path),
                line=0,
                col=0,
                rule="E001",
                message=f"cannot read file: {exc}",
            )
        ]
    rel = _relative_to_root(path, root)
    return lint_source(source, path=str(path), rel_path=rel, config=config)


def _relative_to_root(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    candidates = [root] if root is not None else []
    candidates.append(Path.cwd())
    for base in candidates:
        try:
            return resolved.relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files listed directly always pass)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p for p in entry.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield entry


def lint_paths(
    paths: Iterable[str | Path],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` and merge the findings."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, config=config, root=root))
    return merge_findings(findings)
