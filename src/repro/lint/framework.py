"""Shared visitor framework, rule registry, and pragma handling.

A *rule* is an :class:`ast.NodeVisitor` subclass with a stable ``id``
(``SLK001`` ...), registered via the :func:`register` decorator.  The
runner parses each file once, hands the same tree to every enabled rule,
and merges the findings.

Suppression pragmas are read from comment tokens (via :mod:`tokenize`,
so strings that merely *contain* the pragma text are ignored):

* a trailing ``# slackerlint: disable=SLK001[,SLK002]`` suppresses those
  rules on that line only;
* a standalone comment line with the same syntax suppresses the rules
  for the whole file.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Type

from .config import LintConfig

__all__ = [
    "Finding",
    "FileContext",
    "ImportTracker",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]

#: ``# slackerlint: disable=SLK001,SLK002`` (rule list is comma-separated).
_PRAGMA_RE = re.compile(r"#\s*slackerlint:\s*disable=([A-Z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, pointing at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Pragmas:
    """Suppressions extracted from a file's comments."""

    file_disabled: set[str] = field(default_factory=set)
    line_disabled: dict[int, set[str]] = field(default_factory=dict)

    def suppresses(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_disabled:
            return True
        return rule_id in self.line_disabled.get(line, ())


def parse_pragmas(source: str) -> Pragmas:
    """Extract slackerlint pragmas from ``source`` comment tokens."""
    pragmas = Pragmas()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        line_no = tok.start[0]
        before = tok.line[: tok.start[1]]
        if before.strip() == "":
            # Standalone comment line: file-wide suppression.
            pragmas.file_disabled.update(rules)
        else:
            pragmas.line_disabled.setdefault(line_no, set()).update(rules)
    return pragmas


class ImportTracker:
    """Map local names to the dotted names they import.

    >>> tree = ast.parse("import time as t\\nfrom random import Random")
    >>> tracker = ImportTracker.from_tree(tree)
    >>> tracker.resolve_name("t")
    'time'
    >>> tracker.resolve_name("Random")
    'random.Random'
    """

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportTracker":
        tracker = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        tracker._names[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        tracker._names[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    tracker._names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return tracker

    def resolve_name(self, name: str) -> Optional[str]:
        return self._names.get(name)

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a call target, resolved through imports.

        ``t.time`` with ``import time as t`` resolves to ``time.time``;
        unresolvable expressions (calls, subscripts, ...) return None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.resolve_name(node.id) or node.id
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule may need to know about the file being linted."""

    path: str
    rel_path: str
    source: str
    tree: ast.AST
    config: LintConfig
    imports: ImportTracker


#: Global registry of rule classes, keyed by rule id.
_REGISTRY: dict[str, Type["Rule"]] = {}


def register(rule_cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, Type["Rule"]]:
    """Registered rules, keyed by id (importing ``repro.lint`` populates it)."""
    return dict(_REGISTRY)


class Rule(ast.NodeVisitor):
    """Base class for lint rules: a visitor that accumulates findings."""

    #: Stable rule identifier, e.g. ``SLK001``.
    id: str = ""
    #: One-line human summary (shown by ``--list-rules`` and the docs).
    summary: str = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: list[Finding] = []

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on ``rel_path`` at all (default: yes)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings


def lint_source(
    source: str,
    path: str = "<string>",
    rel_path: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> list[Finding]:
    """Lint python ``source`` text; the workhorse behind :func:`lint_file`."""
    config = config or LintConfig()
    rel = rel_path if rel_path is not None else path
    rel = rel.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                rule="E000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    pragmas = parse_pragmas(source)
    ctx = FileContext(
        path=path,
        rel_path=rel,
        source=source,
        tree=tree,
        config=config,
        imports=ImportTracker.from_tree(tree),
    )
    findings: list[Finding] = []
    for rule_id, rule_cls in sorted(_REGISTRY.items()):
        if rule_id in config.disable or rule_id in pragmas.file_disabled:
            continue
        rule = rule_cls(ctx)
        if not rule.applies_to(rel):
            continue
        for finding in rule.run():
            if not pragmas.suppresses(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def lint_file(
    path: str | Path,
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=str(path),
                line=0,
                col=0,
                rule="E001",
                message=f"cannot read file: {exc}",
            )
        ]
    rel = _relative_to_root(path, root)
    return lint_source(source, path=str(path), rel_path=rel, config=config)


def _relative_to_root(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    candidates = [root] if root is not None else []
    candidates.append(Path.cwd())
    for base in candidates:
        try:
            return resolved.relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files listed directly always pass)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p for p in entry.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield entry


def lint_paths(
    paths: Iterable[str | Path],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` and merge the findings."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, config=config, root=root))
    return sorted(findings)
