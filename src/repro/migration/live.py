"""Live migration: snapshot → delta rounds → freeze-and-handover.

The paper's three-step pipeline (Section 2.3.2):

1. **Snapshot transferring** — stream the XtraBackup snapshot to the
   target on-the-fly, then *prepare* it there (crash recovery) while
   the source keeps serving queries.  This step "is by a large margin
   the most time-consuming" and is the one the throttle meters.
2. **Delta updating** — apply rounds of deltas read from the source's
   binary log; each round catches the target up to the point where the
   round started, and the next round covers what executed meanwhile.
3. **Handover** — once deltas are "sufficiently small", a very brief
   (sub-second) freeze: the source blocks writes, the final delta is
   shipped, and the target becomes authoritative.

The snapshot path is pipelined source-side read → throttle → network →
target-side write through a bounded buffer, as a streamed ``xtrabackup
| pv | nc`` pipeline would be.

Failure semantics (Zephyr-style): until the handover freeze begins,
the migration can be aborted at any instant — the run process and all
its pipeline children are interrupted, the half-built target replica
is discarded, the source is thawed if frozen, and the tenant keeps
serving at the source as if the migration never happened.  Once the
handover has started the abort is refused: the target is (becoming)
authoritative and cancelling would lose writes.  The phase attribute
is a real state machine (:data:`_TRANSITIONS`); every run terminates
in ``COMPLETE`` or ``ABORTED``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..db.backup import DEFAULT_CHUNK_BYTES, HotBackup
from ..db.engine import DatabaseEngine, EngineState, FreezeMode
from ..resources.server import Server
from ..resources.units import KB
from ..simulation import Container, Environment, Interrupt, Process, Store

from .throttle import Throttle

__all__ = [
    "MigrationAborted",
    "MigrationPhase",
    "DeltaRound",
    "LiveMigrationResult",
    "LiveMigration",
]


class MigrationAborted(Exception):
    """Raised from :meth:`LiveMigration.run` when the migration is
    cancelled before handover.  The source remains authoritative and
    unfrozen; the partially-copied target is discarded."""

    def __init__(self, reason: str = ""):
        super().__init__(reason)
        self.reason = reason


class MigrationPhase(enum.Enum):
    """Where a live migration currently is in its pipeline."""

    PENDING = "pending"
    SNAPSHOT = "snapshot"
    PREPARE = "prepare"
    DELTA = "delta"
    HANDOVER = "handover"
    COMPLETE = "complete"
    ABORTED = "aborted"


#: Legal phase transitions.  ``HANDOVER`` deliberately has no edge to
#: ``ABORTED``: once the freeze begins the target is becoming
#: authoritative and the migration must run to completion.
_TRANSITIONS: dict[MigrationPhase, frozenset[MigrationPhase]] = {
    MigrationPhase.PENDING: frozenset(
        {MigrationPhase.SNAPSHOT, MigrationPhase.ABORTED}
    ),
    MigrationPhase.SNAPSHOT: frozenset(
        {MigrationPhase.PREPARE, MigrationPhase.ABORTED}
    ),
    MigrationPhase.PREPARE: frozenset({MigrationPhase.DELTA, MigrationPhase.ABORTED}),
    MigrationPhase.DELTA: frozenset(
        {MigrationPhase.HANDOVER, MigrationPhase.ABORTED}
    ),
    MigrationPhase.HANDOVER: frozenset({MigrationPhase.COMPLETE}),
    MigrationPhase.COMPLETE: frozenset(),
    MigrationPhase.ABORTED: frozenset(),
}

#: Phases from which an abort is refused.
_NO_ABORT_PHASES = frozenset(
    {MigrationPhase.HANDOVER, MigrationPhase.COMPLETE, MigrationPhase.ABORTED}
)


@dataclass(frozen=True)
class DeltaRound:
    """Bookkeeping for one delta-updating round."""

    index: int
    bytes_shipped: int
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class LiveMigrationResult:
    """Outcome of one live migration."""

    tenant: str
    started_at: float
    finished_at: float
    snapshot_bytes: int
    snapshot_seconds: float
    prepare_seconds: float
    delta_rounds: list[DeltaRound]
    #: Length of the freeze window (the only period writes stall).
    downtime: float
    target: DatabaseEngine

    @property
    def duration(self) -> float:
        """End-to-end migration time, seconds."""
        return self.finished_at - self.started_at

    @property
    def delta_bytes(self) -> int:
        return sum(round.bytes_shipped for round in self.delta_rounds)

    @property
    def total_bytes(self) -> int:
        return self.snapshot_bytes + self.delta_bytes

    @property
    def average_rate(self) -> float:
        """Mean transfer rate over the whole migration, bytes/second."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes / self.duration


class LiveMigration:
    """One live migration of a tenant engine to a target server."""

    #: Stop delta rounds once the pending binlog is this small.
    DEFAULT_DELTA_THRESHOLD = 64 * KB

    def __init__(
        self,
        env: Environment,
        source: DatabaseEngine,
        target_server: Server,
        throttle: Throttle,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        delta_threshold: int = DEFAULT_DELTA_THRESHOLD,
        max_delta_rounds: int = 8,
        pipeline_depth: int = 32,
        on_handover: Optional[Callable[[DatabaseEngine], None]] = None,
        fence: Optional[Callable[[], bool]] = None,
        obs=None,
    ):
        if delta_threshold < 0:
            raise ValueError(f"delta_threshold must be >= 0, got {delta_threshold}")
        if max_delta_rounds < 1:
            raise ValueError(f"max_delta_rounds must be >= 1, got {max_delta_rounds}")
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.env = env
        self.source = source
        self.target_server = target_server
        self.throttle = throttle
        self.chunk_bytes = chunk_bytes
        self.delta_threshold = delta_threshold
        self.max_delta_rounds = max_delta_rounds
        self.pipeline_depth = pipeline_depth
        self.on_handover = on_handover
        #: Optional fencing gate, consulted once immediately before the
        #: HANDOVER transition (the point of no return).  Returning
        #: ``False`` aborts with a full rollback instead of freezing —
        #: a node whose ownership lease has lapsed must never commit.
        #: ``None`` (the default) keeps the run path byte-identical.
        self.fence = fence
        #: Optional :class:`~repro.obs.Observability`; ``None`` keeps
        #: phase transitions free of span/metric work.
        self.obs = obs
        self.phase = MigrationPhase.PENDING
        #: (time, phase) log of every transition, for post-mortems.
        self.phase_history: list[tuple[float, MigrationPhase]] = []
        self.backup = HotBackup(env, source, chunk_bytes=chunk_bytes)
        self.target: Optional[DatabaseEngine] = None
        #: True once an abort has rolled state back (source thawed and
        #: authoritative, target discarded).
        self.rolled_back = False
        self._abort_reason: Optional[str] = None
        self._process: Optional[Process] = None
        self._children: list[Process] = []
        self._handover_done = False

    @property
    def abort_reason(self) -> Optional[str]:
        return self._abort_reason

    def _transition(self, phase: MigrationPhase) -> None:
        if phase not in _TRANSITIONS[self.phase]:
            raise RuntimeError(
                f"illegal migration transition {self.phase.value} -> {phase.value}"
            )
        self.phase = phase
        self.phase_history.append((self.env.now, phase))
        if self.obs is not None:
            self.obs.on_migration_phase(self, phase)

    def try_abort(self, reason: str = "cancelled") -> bool:
        """Request an abort; returns whether it was accepted.

        Accepted any time before the handover freeze: the run process
        is interrupted at its current instant (even while blocked on a
        fully-closed throttle), rolls the tenant back to a consistent
        source-resident state, and raises :class:`MigrationAborted`.
        Refused (returns ``False``) during ``HANDOVER`` and after
        ``COMPLETE``/``ABORTED``.
        """
        if self.phase in _NO_ABORT_PHASES:
            return False
        if self._abort_reason is None:
            self._abort_reason = reason
        proc = self._process
        if (
            proc is not None
            and proc.is_alive
            and proc is not self.env.active_process
        ):
            proc.interrupt(reason)
        return True

    def abort(self, reason: str = "operator cancelled") -> None:
        """Cancel the migration before handover.

        Safe at any time before the handover freeze; once the handover
        has begun (or completed) the abort is refused with
        :class:`RuntimeError` — the target is (becoming) authoritative
        and cancelling would lose writes.  Aborting an already-aborted
        migration is a no-op.
        """
        if self.phase is MigrationPhase.ABORTED:
            return
        if not self.try_abort(reason):
            raise RuntimeError(
                f"cannot abort a migration in phase {self.phase.value}"
            )

    def _check_abort(self) -> None:
        if self._abort_reason is not None and self.phase is not MigrationPhase.ABORTED:
            self._rollback()
            raise MigrationAborted(self._abort_reason)

    def _rollback(self) -> None:
        """Restore a consistent source-resident state (synchronous)."""
        active = self.env.active_process
        for child in self._children:
            if child.is_alive and child is not active:
                child.interrupt("migration aborted")
        self._children.clear()
        if self.source.is_frozen:
            self.source.thaw()
        if self.target is not None and self.target.state is not EngineState.STOPPED:
            self.target.stop()  # discard the half-built replica
        self._transition(MigrationPhase.ABORTED)
        self.rolled_back = True

    # -- pipeline pieces -----------------------------------------------------

    def _spawn(self, gen: Generator) -> Process:
        """Start a pipeline child that an abort can interrupt cleanly."""
        proc = self.env.process(self._interruptible(gen))
        self._children.append(proc)
        return proc

    def _interruptible(self, gen: Generator):
        """Run ``gen``; exit quietly when the migration is aborted."""
        try:
            return (yield from gen)
        except Interrupt:
            return None

    def _make_target(self) -> DatabaseEngine:
        return DatabaseEngine(
            self.env,
            self.target_server,
            self.source.layout,
            name=f"{self.source.name}@{self.target_server.name}",
            buffer_bytes=self.source.buffer_pool.capacity_pages
            * self.source.buffer_pool.page_size,
            costs=self.source.costs,
        )

    def _snapshot_producer(self, snapshot, chunks: Store, slots: Container):
        """Pace chunk shipments at the throttle rate.

        Each chunk's disk read is spawned asynchronously (bounded by
        the pipeline depth), modelling xtrabackup/OS readahead keeping
        the pipe full: a busy disk makes reads *queue*, it does not
        make the throttle back off.  Sustained pressure beyond the
        disk's capacity is exactly what overloads the server in the
        paper's Figure 6.
        """
        in_flight: list = []
        while not snapshot.complete and snapshot.streamed_bytes < snapshot.total_bytes:
            if self._abort_reason is not None:
                break
            remaining = snapshot.total_bytes - snapshot.streamed_bytes
            size = min(self.chunk_bytes, remaining)
            yield from self.throttle.acquire(size)
            yield slots.get(1)
            snapshot.streamed_bytes += size
            is_last = snapshot.streamed_bytes >= snapshot.total_bytes
            in_flight.append(
                self._spawn(self._ship_snapshot_chunk(snapshot, size, is_last, chunks))
            )
        for proc in in_flight:
            if proc.is_alive:
                yield proc
        chunks.put(None)  # end-of-stream marker

    def _ship_snapshot_chunk(
        self, snapshot, size: int, is_last: bool, chunks: Store
    ):
        """Read one chunk on the source and wire it to the target."""
        yield from self.source.server.disk.read(
            size, sequential=True, stream=f"{self.source.name}:backup"
        )
        snapshot.chunks += 1
        if is_last:
            # The consistent-scan endpoint: redo past this LSN is the
            # delta the prepare/delta phases must replay.
            snapshot.end_lsn = self.source.binlog.head_lsn
            snapshot.finished_at = self.env.now
        yield from self.source.server.nic_out.transfer(size)
        chunks.put(size)

    def _snapshot_consumer(self, chunks: Store, slots: Container, stream: str):
        """Write received chunks to the target disk."""
        while True:
            size = yield chunks.get()
            if size is None:
                return
            yield from self.target_server.disk.write(
                size, sequential=True, stream=stream
            )
            slots.put(1)

    def _ship_delta(self, nbytes: int, throttled: bool) -> Generator:
        """Read a binlog range on the source and wire it to the target."""
        stream = f"{self.source.name}:binlog-ship"
        shipped = 0
        while shipped < nbytes:
            size = min(self.chunk_bytes, nbytes - shipped)
            if throttled:
                yield from self.throttle.acquire(size)
            yield from self.source.server.disk.read(
                size, sequential=True, stream=stream
            )
            yield from self.source.server.nic_out.transfer(size)
            shipped += size

    def _delta_round(self, index: int, throttled: bool = True) -> Generator:
        """Ship and apply everything the target is currently behind by."""
        assert self.target is not None
        started_at = self.env.now
        from_lsn = self.target.replicated_lsn
        to_lsn = self.source.binlog.head_lsn
        pending = to_lsn - from_lsn
        if pending > 0:
            yield from self._ship_delta(pending, throttled=throttled)
            yield from self.target.apply_delta_bytes(pending, to_lsn)
        return DeltaRound(
            index=index,
            bytes_shipped=pending,
            started_at=started_at,
            finished_at=self.env.now,
        )

    # -- the migration ---------------------------------------------------------

    def run(self) -> Generator:
        """Process: run the full migration; returns the result record.

        Terminates in exactly one of two ways: returns a
        :class:`LiveMigrationResult` with phase ``COMPLETE``, or raises
        :class:`MigrationAborted` with phase ``ABORTED`` after rolling
        the tenant back to the source.
        """
        self._process = self.env.active_process
        started_at = self.env.now
        try:
            self._check_abort()

            # Step 1a: stream the snapshot (pipelined through a bounded buffer).
            self._transition(MigrationPhase.SNAPSHOT)
            snapshot = self.backup.begin()
            chunks = Store(self.env)
            slots = Container(
                self.env, capacity=self.pipeline_depth, init=self.pipeline_depth
            )
            stream = f"{self.source.name}:restore"
            producer = self._spawn(self._snapshot_producer(snapshot, chunks, slots))
            consumer = self._spawn(self._snapshot_consumer(chunks, slots, stream))
            yield self.env.all_of([producer, consumer])
            self._check_abort()
            snapshot_seconds = self.env.now - started_at

            # Step 1b: prepare (crash recovery) on the target.
            self._transition(MigrationPhase.PREPARE)
            prepare_started = self.env.now
            self.target = self._make_target()
            yield self._spawn(self.backup.prepare(snapshot, self.target))
            self._check_abort()
            prepare_seconds = self.env.now - prepare_started

            # Step 2: delta rounds until the pending log is small enough.
            self._transition(MigrationPhase.DELTA)
            rounds: list[DeltaRound] = []
            while len(rounds) < self.max_delta_rounds:
                self._check_abort()
                pending = self.source.binlog.head_lsn - self.target.replicated_lsn
                if pending <= self.delta_threshold:
                    break
                round_result = yield self._spawn(self._delta_round(len(rounds) + 1))
                rounds.append(round_result)
            self._check_abort()
        except Interrupt as interrupt:
            reason = self._abort_reason or str(interrupt.cause or "interrupted")
            self._abort_reason = reason
            self._rollback()
            raise MigrationAborted(reason) from None

        # Fencing gate: the last instant ownership can be checked before
        # the point of no return.  A lapsed lease means another node may
        # already own the tenant — roll back instead of freezing.
        if self.fence is not None and not self.fence():
            self._abort_reason = self._abort_reason or "fencing check failed at handover"
            self._rollback()
            raise MigrationAborted(self._abort_reason)

        # Step 3: freeze-and-handover (sub-second; final delta unthrottled).
        # Point of no return: aborts are refused from here on, so the
        # source is never left frozen and the handover runs exactly once.
        self._transition(MigrationPhase.HANDOVER)
        freeze_started = self.env.now
        self.source.freeze(FreezeMode.WRITES)
        try:
            yield self.source.write_quiesced()
            final_round = yield self._spawn(
                self._delta_round(len(rounds) + 1, throttled=False)
            )
            rounds.append(final_round)
        except BaseException:
            # Never leave the tenant frozen, whatever went wrong.
            if self.source.is_frozen:
                self.source.thaw()
            raise
        downtime = self.env.now - freeze_started
        if self.obs is not None:
            self.obs.on_migration_freeze(self, downtime)
        if self.on_handover is not None and not self._handover_done:
            self._handover_done = True
            self.on_handover(self.target)
        self.source.stop(successor=self.target)

        self._transition(MigrationPhase.COMPLETE)
        return LiveMigrationResult(
            tenant=self.source.name,
            started_at=started_at,
            finished_at=self.env.now,
            snapshot_bytes=snapshot.total_bytes,
            snapshot_seconds=snapshot_seconds,
            prepare_seconds=prepare_seconds,
            delta_rounds=rounds,
            downtime=downtime,
            target=self.target,
        )
