"""Live migration of one tenant out of a shared-process daemon.

The Section 6 / Section 8 extension: with table-level hot backup
available, Slacker's snapshot → delta → handover pipeline applies
unchanged to a consolidated (single-daemon) server — the snapshot scans
one tenant's tablespace, the deltas ship only that tenant's tagged
binlog records, and the handover freeze is a table write-lock that
leaves the other tenants' tables untouched.

The tenant lands in its own dedicated daemon on the target server
(process-level), i.e. this is also the "de-consolidation" path: pull a
noisy tenant out of a shared daemon into isolation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..db.backup import DEFAULT_CHUNK_BYTES
from ..db.engine import DatabaseEngine
from ..db.shared import SharedProcessEngine, TableLevelBackup
from ..resources.server import Server
from ..resources.units import KB, MB
from ..simulation import Environment
from .live import DeltaRound, MigrationPhase
from .throttle import Throttle

__all__ = ["SharedMigrationResult", "SharedTenantMigration"]


@dataclass
class SharedMigrationResult:
    """Outcome of migrating one tenant out of a shared daemon."""

    tenant_id: int
    started_at: float
    finished_at: float
    snapshot_bytes: int
    delta_rounds: list[DeltaRound]
    downtime: float
    target: DatabaseEngine

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def delta_bytes(self) -> int:
        return sum(r.bytes_shipped for r in self.delta_rounds)

    @property
    def total_bytes(self) -> int:
        return self.snapshot_bytes + self.delta_bytes

    @property
    def average_rate(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.total_bytes / self.duration


class SharedTenantMigration:
    """Snapshot → delta → handover for one tenant of a shared daemon."""

    DEFAULT_DELTA_THRESHOLD = 64 * KB

    def __init__(
        self,
        env: Environment,
        source: SharedProcessEngine,
        tenant_id: int,
        target_server: Server,
        throttle: Throttle,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        delta_threshold: int = DEFAULT_DELTA_THRESHOLD,
        max_delta_rounds: int = 8,
        target_buffer_bytes: int = 128 * MB,
        on_handover: Optional[Callable[[DatabaseEngine], None]] = None,
    ):
        if delta_threshold < 0:
            raise ValueError(f"delta_threshold must be >= 0, got {delta_threshold}")
        if max_delta_rounds < 1:
            raise ValueError(f"max_delta_rounds must be >= 1, got {max_delta_rounds}")
        self.env = env
        self.source = source
        self.tenant_id = tenant_id
        self.target_server = target_server
        self.throttle = throttle
        self.chunk_bytes = chunk_bytes
        self.delta_threshold = delta_threshold
        self.max_delta_rounds = max_delta_rounds
        self.target_buffer_bytes = target_buffer_bytes
        self.on_handover = on_handover
        self.backup = TableLevelBackup(env, source, tenant_id, chunk_bytes)
        self.phase = MigrationPhase.PENDING
        self.target: Optional[DatabaseEngine] = None

    def _ship(self, nbytes: int, stream: str, throttled: bool = True) -> Generator:
        """Move ``nbytes`` source-disk -> wire -> target-disk."""
        shipped = 0
        while shipped < nbytes:
            size = min(self.chunk_bytes, nbytes - shipped)
            if throttled:
                yield from self.throttle.acquire(size)
            yield from self.source.server.disk.read(
                size, sequential=True, stream=stream
            )
            yield from self.source.server.nic_out.transfer(size)
            yield from self.target_server.disk.write(
                size, sequential=True, stream=stream
            )
            shipped += size

    def run(self) -> Generator:
        """Process: migrate the tenant; returns the result record."""
        tenant = self.source._tenant(self.tenant_id)
        started_at = self.env.now

        # Step 1: table-level snapshot, streamed through the throttle.
        self.phase = MigrationPhase.SNAPSHOT
        snapshot = self.backup.begin()
        restore_stream = f"{self.source.name}:restore-t{self.tenant_id}"
        while not snapshot.complete:
            remaining = snapshot.total_bytes - snapshot.streamed_bytes
            size = min(self.chunk_bytes, remaining)
            yield from self.throttle.acquire(size)
            chunk = yield self.env.process(self.backup.read_chunk(snapshot))
            if chunk is None:
                break
            yield from self.source.server.nic_out.transfer(chunk)
            yield from self.target_server.disk.write(
                chunk, sequential=True, stream=restore_stream
            )

        # Step 1b: prepare the target daemon (replay this tenant's redo).
        self.phase = MigrationPhase.PREPARE
        self.target = DatabaseEngine(
            self.env,
            self.target_server,
            tenant.layout,
            name=f"tenant-{self.tenant_id}@{self.target_server.name}",
            buffer_bytes=self.target_buffer_bytes,
        )
        redo = self.backup.redo_bytes(snapshot)
        yield from self.target.apply_delta_bytes(redo, snapshot.end_lsn)

        # Step 2: tagged delta rounds.
        self.phase = MigrationPhase.DELTA
        rounds: list[DeltaRound] = []
        ship_stream = f"{self.source.name}:binlog-t{self.tenant_id}"
        while len(rounds) < self.max_delta_rounds:
            pending = self.backup.pending_delta(self.target.replicated_lsn)
            if pending <= self.delta_threshold:
                break
            round_started = self.env.now
            to_lsn = self.source.binlog.head_lsn
            yield from self._ship(pending, ship_stream)
            yield from self.target.apply_delta_bytes(pending, to_lsn)
            rounds.append(
                DeltaRound(
                    index=len(rounds) + 1,
                    bytes_shipped=pending,
                    started_at=round_started,
                    finished_at=self.env.now,
                )
            )

        # Step 3: freeze just this tenant's tables and hand over.
        self.phase = MigrationPhase.HANDOVER
        freeze_started = self.env.now
        self.source.freeze_tenant(self.tenant_id)
        yield self.source.write_quiesced(self.tenant_id)
        final_pending = self.backup.pending_delta(self.target.replicated_lsn)
        final_to = self.source.binlog.head_lsn
        if final_pending > 0:
            yield from self._ship(final_pending, ship_stream, throttled=False)
        yield from self.target.apply_delta_bytes(final_pending, final_to)
        self.target.data_version = tenant.data_version
        rounds.append(
            DeltaRound(
                index=len(rounds) + 1,
                bytes_shipped=final_pending,
                started_at=freeze_started,
                finished_at=self.env.now,
            )
        )
        downtime = self.env.now - freeze_started
        if self.on_handover is not None:
            self.on_handover(self.target)
        self.source.thaw_tenant(self.tenant_id)
        self.source.drop_tenant(self.tenant_id)

        self.phase = MigrationPhase.COMPLETE
        return SharedMigrationResult(
            tenant_id=self.tenant_id,
            started_at=started_at,
            finished_at=self.env.now,
            snapshot_bytes=snapshot.total_bytes,
            delta_rounds=rounds,
            downtime=downtime,
            target=self.target,
        )
