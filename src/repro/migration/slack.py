"""Migration slack: the paper's Section 3 resource model.

Equations 1–4 of the paper formalize slack.  Given server resources
R0 (the usable threshold), tenant demands T1..Tn, and a combining
function f, the migration workload M must keep ``f(T, M) <= R0``
(Eq. 2); the slack is the largest admissible M (Eq. 3), which under
the additive model observed by Curino et al. reduces to
``S = R0 - sum(T)`` (Eq. 4).

The paper then points out that slack need not be modelled explicitly —
latency observed under throttled migrations reveals it.  Both views
are implemented here:

* :class:`AdditiveSlackModel` — the analytical Eq. 4 model;
* :class:`EmpiricalSlackEstimator` — fits (rate, latency) observations
  to find the knee: the highest migration rate whose latency stays
  within a tolerance of a target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "AdditiveSlackModel",
    "RateLatencySample",
    "EmpiricalSlackEstimator",
]


@dataclass(frozen=True)
class AdditiveSlackModel:
    """Eq. 4: slack = R0 - sum(tenant demands), under additive f().

    Demands and capacity share an arbitrary but common unit (the paper
    uses CPU as its illustrative example; our experiments use disk
    utilization).
    """

    #: Usable resource threshold R0 (<= physical capacity R).
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    def combined_demand(self, demands: Iterable[float], migration: float = 0.0) -> float:
        """The additive f(T1..Tn, M)."""
        demands = list(demands)
        if any(d < 0 for d in demands) or migration < 0:
            raise ValueError("demands must be non-negative")
        return sum(demands) + migration

    def is_overloaded(self, demands: Iterable[float], migration: float = 0.0) -> bool:
        """Eq. 2 violated: the server will accumulate SLA violations."""
        return self.combined_demand(demands, migration) > self.capacity

    def slack(self, demands: Iterable[float]) -> float:
        """Eq. 4: resources available for migration (never negative)."""
        return max(0.0, self.capacity - self.combined_demand(demands))


@dataclass(frozen=True)
class RateLatencySample:
    """One observation: migration at ``rate`` produced ``latency``."""

    #: Migration rate, bytes/second.
    rate: float
    #: Mean transaction latency at that rate, seconds.
    latency: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")


class EmpiricalSlackEstimator:
    """Estimates slack from observed (rate, latency) pairs.

    Two notions are exposed, matching the paper's discussion:

    * :meth:`max_rate_within` — the highest observed rate whose latency
      stays under an SLA-derived bound (the "slack to be exploited",
      which depends on the SLA);
    * :meth:`knee_rate` — the rate where latency growth accelerates
      most sharply (the paper's "knee point", Figure 9), found by the
      maximum second difference of latency with respect to rate.
    """

    def __init__(self, samples: Optional[Sequence[RateLatencySample]] = None):
        self._samples: list[RateLatencySample] = list(samples or [])

    def add(self, rate: float, latency: float) -> None:
        """Record one observation."""
        self._samples.append(RateLatencySample(rate=rate, latency=latency))

    @property
    def samples(self) -> list[RateLatencySample]:
        """Observations sorted by rate."""
        return sorted(self._samples, key=lambda s: s.rate)

    def __len__(self) -> int:
        return len(self._samples)

    def max_rate_within(
        self, latency_bound: float, predicate: Optional[Callable[[float], bool]] = None
    ) -> Optional[float]:
        """Highest rate whose latency satisfies the bound (or predicate).

        Returns None when no observation qualifies.
        """
        if predicate is None:
            if latency_bound <= 0:
                raise ValueError(f"latency_bound must be positive, got {latency_bound}")
            predicate = lambda latency: latency <= latency_bound  # noqa: E731
        ok = [s.rate for s in self._samples if predicate(s.latency)]
        return max(ok) if ok else None

    def knee_rate(self) -> Optional[float]:
        """Rate of sharpest latency acceleration (needs >= 3 samples)."""
        ordered = self.samples
        if len(ordered) < 3:
            return None
        best_rate: Optional[float] = None
        best_curvature = float("-inf")
        for prev, mid, nxt in zip(ordered, ordered[1:], ordered[2:]):
            left_span = mid.rate - prev.rate
            right_span = nxt.rate - mid.rate
            if left_span <= 0 or right_span <= 0:
                continue
            left_slope = (mid.latency - prev.latency) / left_span
            right_slope = (nxt.latency - mid.latency) / right_span
            curvature = right_slope - left_slope
            if curvature > best_curvature:
                best_curvature = curvature
                best_rate = mid.rate
        return best_rate
