"""An on-demand-pull migration baseline (Zephyr-style, Section 7).

The paper's related work describes Zephyr [Elmore et al., SIGMOD'11]:
"transfers a minimal 'wireframe' of the database and then pulls pages
on demand from the source to the target", and makes a pointed
observation about throttling it: "one issue with on-demand approaches
... is that throttling is problematic, since slowing on-demand pulls
exacerbates latency rather than mitigating it as in a throttled
background transfer."

This module implements that baseline so the claim can be measured:

1. **Wireframe** — a small metadata transfer, after which ownership
   switches immediately to the target (near-zero blackout, like
   Zephyr).
2. **On-demand pulls** — the target starts cold; every buffer-pool
   miss on a page it does not yet hold becomes a *remote* fetch
   (source disk read + network + local write), paid inside the
   transaction's latency.
3. **Background pusher** — the source streams not-yet-pulled pages in
   the background through a throttle.  Slowing this throttle keeps the
   tenant in the painful cold phase longer — the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..db.engine import DatabaseEngine
from ..db.transactions import Transaction
from ..resources.server import Server
from ..resources.units import MB, PAGE_SIZE
from ..simulation import Environment
from .throttle import Throttle

__all__ = ["OnDemandMigrationResult", "PartialReplicaEngine", "OnDemandMigration"]

#: Size of the "wireframe" (schema + index metadata), bytes.
WIREFRAME_BYTES = 4 * MB


class PartialReplicaEngine(DatabaseEngine):
    """A target engine whose pages may still live on the source.

    A miss on a page not yet present locally triggers a remote fetch:
    a random read on the *source* disk, a network hop, and a local
    write — all inside the requesting transaction's latency.
    """

    def __init__(self, *args, source: DatabaseEngine, **kwargs):
        super().__init__(*args, **kwargs)
        self.source = source
        #: Pages already copied to the target (by pull or push).
        self.present: set[int] = set()
        self.remote_fetches = 0
        self.remote_fetch_time = 0.0
        #: Pulls that paid the transfer only to find the page had been
        #: delivered (by the pusher) while they were in flight.
        self.redundant_fetches = 0
        #: When the last page arrived (by pull or push).
        self.completed_at: Optional[float] = None

    @property
    def pages_missing(self) -> int:
        return self.layout.num_pages - len(self.present)

    def mark_present(self, page_id: int) -> None:
        """Record that ``page_id`` arrived (pull or background push)."""
        self.present.add(page_id)
        if self.completed_at is None and len(self.present) == self.layout.num_pages:
            self.completed_at = self.env.now

    def _access_page(self, txn: Transaction, page_id: int, write: bool) -> Generator:
        if page_id not in self.present:
            started = self.env.now
            # Remote pull: source-side random read, the wire, local write.
            yield from self.source.server.disk.read(PAGE_SIZE)
            yield from self.source.server.nic_out.transfer(PAGE_SIZE)
            yield from self.server.disk.write(PAGE_SIZE)
            self.remote_fetch_time += self.env.now - started
            if page_id not in self.present:
                self.mark_present(page_id)
                self.remote_fetches += 1
            else:
                # The pusher delivered it while our transfer was in
                # flight: the latency was paid, but the page must only
                # be counted once for conservation.
                self.redundant_fetches += 1
        yield from super()._access_page(txn, page_id, write)


@dataclass
class OnDemandMigrationResult:
    """Outcome of one on-demand migration."""

    tenant: str
    started_at: float
    #: When ownership switched to the target (end of wireframe).
    switched_at: float
    #: When the last page arrived at the target.
    finished_at: float
    remote_fetches: int
    pushed_pages: int
    target: "PartialReplicaEngine"

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def switch_latency(self) -> float:
        """Time until the target became authoritative."""
        return self.switched_at - self.started_at


class OnDemandMigration:
    """Wireframe → immediate switch → pulls + throttled background push."""

    def __init__(
        self,
        env: Environment,
        source: DatabaseEngine,
        target_server: Server,
        push_throttle: Optional[Throttle] = None,
        on_switch=None,
    ):
        self.env = env
        self.source = source
        self.target_server = target_server
        self.push_throttle = push_throttle
        self.on_switch = on_switch
        self.target: Optional[PartialReplicaEngine] = None

    def _make_target(self) -> PartialReplicaEngine:
        return PartialReplicaEngine(
            self.env,
            self.target_server,
            self.source.layout,
            name=f"{self.source.name}@{self.target_server.name}",
            buffer_bytes=self.source.buffer_pool.capacity_pages
            * self.source.buffer_pool.page_size,
            costs=self.source.costs,
            source=self.source,
        )

    def _background_pusher(self, target: PartialReplicaEngine) -> Generator:
        """Stream not-yet-present pages, oldest page id first."""
        pushed = 0
        stream = f"{self.source.name}:push"
        for page_id in range(target.layout.num_pages):
            if page_id in target.present:
                continue
            if self.push_throttle is not None:
                yield from self.push_throttle.acquire(PAGE_SIZE)
            if page_id in target.present:
                # A pull delivered the page while we were queued on the
                # throttle: re-check *before* paying the source read and
                # the wire, or the page's transfer is billed twice.
                continue
            yield from self.source.server.disk.read(
                PAGE_SIZE, sequential=True, stream=stream
            )
            yield from self.source.server.nic_out.transfer(PAGE_SIZE)
            if page_id in target.present:
                continue  # a pull raced us while we were in flight
            yield from self.target_server.disk.write(
                PAGE_SIZE, sequential=True, stream=stream
            )
            if page_id in target.present:
                continue  # a pull won during our local write
            target.mark_present(page_id)
            pushed += 1
        return pushed

    def run(self) -> Generator:
        """Process: run the migration; returns the result record."""
        started_at = self.env.now

        # 1. Wireframe: small, fast metadata transfer.
        yield from self.source.server.disk.read(
            WIREFRAME_BYTES, sequential=True, stream=f"{self.source.name}:wire"
        )
        yield from self.source.server.nic_out.transfer(WIREFRAME_BYTES)
        yield from self.target_server.disk.write(
            WIREFRAME_BYTES, sequential=True, stream=f"{self.source.name}:wire"
        )

        # 2. Immediate ownership switch: the cold target is authoritative.
        self.target = self._make_target()
        switched_at = self.env.now
        if self.on_switch is not None:
            self.on_switch(self.target)
        # The source stops accepting new work and forwards to the target
        # (which will pull whatever pages it needs back out of the source
        # data files).
        self.source.stop(successor=self.target)

        # 3. Background push until every page has moved.
        pushed = yield self.env.process(self._background_pusher(self.target))

        # The migration is over when the *last page arrived* — a pull
        # can complete the set while the pusher is still scanning past
        # already-present pages, so the pusher's return time overstates.
        finished_at = self.target.completed_at
        if finished_at is None:
            finished_at = self.env.now
        return OnDemandMigrationResult(
            tenant=self.source.name,
            started_at=started_at,
            switched_at=switched_at,
            finished_at=finished_at,
            remote_fetches=self.target.remote_fetches,
            pushed_pages=pushed,
            target=self.target,
        )
