"""Rate throttle — the ``pv`` equivalent.

Slacker throttles the snapshot stream by piping it through the Linux
utility ``pv``, which "allows for limiting the amount of data passing
through a Unix pipe ... [and] allows for changing the throttling rate
of an existing process ... on a second or even sub-second level
granularity" (Section 3.1).

:class:`Throttle` is the token-bucket equivalent: a refill process
deposits ``rate`` bytes/second of credit into a bounded bucket, and a
stream must withdraw credit for every chunk it pushes.  ``set_rate``
takes effect from the next refill tick; a rate of zero pauses the
stream entirely ("sometimes even pausing migration entirely to allow
the database to recover", Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..resources.units import MB
from ..simulation import Container, Environment

__all__ = ["ThrottleStats", "Throttle"]

#: Default refill tick, seconds (sub-second granularity, like pv's).
DEFAULT_TICK = 0.05

#: Default bucket depth: bounds burst after an idle period.
DEFAULT_BUCKET_BYTES = 4 * MB


@dataclass
class ThrottleStats:
    """Running counters for one throttle."""

    bytes_granted: int = 0
    grants: int = 0
    rate_changes: int = 0
    #: Time integral of the configured rate (for average-rate queries).
    rate_seconds: float = 0.0


class Throttle:
    """A dynamically adjustable token-bucket byte-rate limiter."""

    def __init__(
        self,
        env: Environment,
        rate: float,
        bucket_bytes: float = DEFAULT_BUCKET_BYTES,
        tick: float = DEFAULT_TICK,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self.env = env
        self.tick = tick
        self.stats = ThrottleStats()
        self._rate = float(rate)
        self._rate_since = env.now
        self._start_time = env.now
        self._bucket = Container(env, capacity=bucket_bytes, init=0.0)
        self._running = True
        env.process(self._refill_loop())

    @property
    def rate(self) -> float:
        """Configured rate, bytes/second."""
        return self._rate

    @property
    def level(self) -> float:
        """Unused credit currently in the bucket, bytes."""
        return self._bucket.level

    def set_rate(self, rate: float) -> None:
        """Change the rate on the fly (0 pauses the stream)."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._account_rate_time()
        if rate != self._rate:
            self.stats.rate_changes += 1
        self._rate = float(rate)

    def average_rate(self) -> float:
        """Time-averaged configured rate since construction, bytes/second."""
        self._account_rate_time()
        elapsed = self.env.now - self._start_time
        if elapsed <= 0:
            return self._rate
        return self.stats.rate_seconds / elapsed

    def acquire(self, nbytes: float) -> Generator:
        """Process: block until ``nbytes`` of credit is available.

        Requests larger than the bucket are split internally, so chunk
        sizes need not be bounded by the bucket depth.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        remaining = float(nbytes)
        while remaining > 0:
            piece = min(remaining, self._bucket.capacity)
            yield self._bucket.get(piece)
            remaining -= piece
        self.stats.bytes_granted += int(nbytes)
        self.stats.grants += 1

    def stop(self) -> None:
        """Shut down the refill process (end of migration)."""
        self._account_rate_time()
        self._running = False

    # -- internals ---------------------------------------------------------

    def _account_rate_time(self) -> None:
        now = self.env.now
        self.stats.rate_seconds += self._rate * (now - self._rate_since)
        self._rate_since = now

    def _refill_loop(self):
        while self._running:
            yield self.env.timeout(self.tick)
            if self._running and self._rate > 0:
                self._bucket.put(self._rate * self.tick)
