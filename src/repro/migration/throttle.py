"""Rate throttle — the ``pv`` equivalent.

Slacker throttles the snapshot stream by piping it through the Linux
utility ``pv``, which "allows for limiting the amount of data passing
through a Unix pipe ... [and] allows for changing the throttling rate
of an existing process ... on a second or even sub-second level
granularity" (Section 3.1).

:class:`Throttle` is the token-bucket equivalent: refill ticks deposit
``rate * tick`` bytes of credit into a bounded bucket, and a stream
must withdraw credit for every chunk it pushes.  ``set_rate`` takes
effect from the next refill tick; a rate of zero pauses the stream
entirely ("sometimes even pausing migration entirely to allow the
database to recover", Section 5.4).

Refill ticks are **coalesced**: instead of a kernel event every tick
(20/sec at the default 0.05 s tick, granted or not), the throttle
settles elapsed ticks analytically on every interaction and schedules
a real wakeup only at the tick where the oldest blocked request can
actually be granted.  A paused (rate 0) or idle throttle costs zero
kernel events.  The settlement replays the *exact* per-tick float
arithmetic of the eager loop — chained tick timestamps via
:class:`~repro.simulation.timers.PeriodicTicker` and per-tick
``min(capacity, level + rate * tick)`` deposits — so grant times,
amounts, and stats are identical to the eager loop's; the eager loop
is kept (``coalesce=False``) as the reference implementation for the
equivalence tests in ``tests/test_coalesced_timers.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..resources.units import MB
from ..simulation import Container, Environment, Interrupt, PeriodicTicker

__all__ = ["ThrottleStats", "Throttle"]

#: Default refill tick, seconds (sub-second granularity, like pv's).
DEFAULT_TICK = 0.05

#: Default bucket depth: bounds burst after an idle period.
DEFAULT_BUCKET_BYTES = 4 * MB


@dataclass
class ThrottleStats:
    """Running counters for one throttle."""

    bytes_granted: int = 0
    grants: int = 0
    rate_changes: int = 0
    #: Time integral of the configured rate (for average-rate queries).
    rate_seconds: float = 0.0


class Throttle:
    """A dynamically adjustable token-bucket byte-rate limiter."""

    def __init__(
        self,
        env: Environment,
        rate: float,
        bucket_bytes: float = DEFAULT_BUCKET_BYTES,
        tick: float = DEFAULT_TICK,
        coalesce: bool = True,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self.env = env
        self.tick = tick
        self.stats = ThrottleStats()
        self._rate = float(rate)
        self._rate_since = env.now
        self._start_time = env.now
        self._bucket = Container(env, capacity=bucket_bytes, init=0.0)
        self._running = True
        self._coalesce = coalesce
        if coalesce:
            #: Conceptual tick clock; ``next_time`` is the first
            #: *unsettled* tick.  Ticks strictly before ``env.now`` are
            #: always settled before any state is read or changed.
            self._ticker = PeriodicTicker(env, tick)
            #: Service process, alive only while requests are blocked
            #: and the rate is positive (see :meth:`_service_loop`).
            self._service = None
        else:
            env.process(self._refill_loop())

    @property
    def rate(self) -> float:
        """Configured rate, bytes/second."""
        return self._rate

    @property
    def level(self) -> float:
        """Unused credit currently in the bucket, bytes."""
        if self._coalesce:
            self._settle(inclusive=True)
        return self._bucket.level

    def set_rate(self, rate: float) -> None:
        """Change the rate on the fly (0 pauses the stream)."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if self._coalesce and self._running:
            # Ticks strictly before now accrued at the old rate; a tick
            # at exactly `now` uses the new rate (rate setters — the
            # PID controller, migration startup — run ahead of the tick
            # in event order because their timeouts are scheduled
            # further in advance, hence with earlier sequence numbers).
            self._settle(inclusive=False)
        self._account_rate_time()
        changed = rate != self._rate
        if changed:
            self.stats.rate_changes += 1
        self._rate = float(rate)
        if self._coalesce and self._running and changed:
            self._reschedule_service()

    def average_rate(self) -> float:
        """Time-averaged configured rate since construction, bytes/second."""
        self._account_rate_time()
        elapsed = self.env.now - self._start_time
        if elapsed <= 0:
            return self._rate
        return self.stats.rate_seconds / elapsed

    def acquire(self, nbytes: float) -> Generator:
        """Process: block until ``nbytes`` of credit is available.

        Requests larger than the bucket are split internally, so chunk
        sizes need not be bounded by the bucket depth.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        remaining = float(nbytes)
        while remaining > 0:
            piece = min(remaining, self._bucket.capacity)
            if self._coalesce:
                self._settle(inclusive=True)
                get_event = self._bucket.get(piece)
                if get_event.callbacks is not None and not self._service_alive():
                    # Blocked with no wakeup pending: start the service
                    # process.  (If it is already alive this request
                    # queued behind the head, whose wakeup is
                    # unchanged — FIFO serve order.)
                    self._reschedule_service()
                yield get_event
            else:
                yield self._bucket.get(piece)
            remaining -= piece
        self.stats.bytes_granted += int(nbytes)
        self.stats.grants += 1

    def stop(self) -> None:
        """Shut down the refill process (end of migration)."""
        if self._coalesce and self._running:
            self._settle(inclusive=False)
        self._account_rate_time()
        self._running = False

    # -- internals ---------------------------------------------------------

    def _account_rate_time(self) -> None:
        now = self.env.now
        self.stats.rate_seconds += self._rate * (now - self._rate_since)
        self._rate_since = now

    def _refill_loop(self):
        # Eager reference path (coalesce=False): one event per tick.
        # This loop IS the behaviour the coalesced path must reproduce
        # bit-for-bit, so it deliberately stays on the raw timeout API.
        while self._running:
            yield self.env.timeout(self.tick)  # slackerlint: disable=SLK011
            if self._running and self._rate > 0:
                self._bucket.put(self._rate * self.tick)

    # -- coalesced path ----------------------------------------------------

    def _settle(self, inclusive: bool) -> None:
        """Apply every refill tick due by ``env.now``.

        Replays the eager loop's exact per-tick action — ``put`` with
        the chained-addition deposit, clamp, and FIFO serve — at one
        conceptual tick per iteration.  ``inclusive`` controls whether
        a tick falling exactly on ``env.now`` is applied (reads and
        acquires) or left for after the caller's update (rate changes).
        The rate is constant across the settled span because every
        rate change settles first.
        """
        if not self._running:
            return
        now = self.env.now
        ticker = self._ticker
        rate = self._rate
        bucket = self._bucket
        if rate <= 0 or bucket._level >= bucket.capacity:
            # Paused or saturated: every due tick is a no-op (a waiting
            # request always wants more than the current level, so a
            # full bucket cannot have a grantable head).  Bulk-skip.
            ticker.skip_until(now, inclusive)
            return
        deposit = rate * self.tick
        while (ticker.next_time < now) or (inclusive and ticker.next_time == now):
            ticker.skip(1)
            bucket.put(deposit)

    def _service_alive(self) -> bool:
        return self._service is not None and self._service.is_alive

    def _reschedule_service(self) -> None:
        """Ensure the service process reflects the current queue/rate."""
        if self._service_alive():
            # Recompute the wakeup: the pending one may now be too late
            # (rate raised) or premature (rate lowered/zeroed).
            self._service.interrupt()
        elif self._bucket._getters and self._rate > 0:
            self._service = self.env.process(self._service_loop())

    def _ticks_until_grant(self) -> int:
        """Ticks (>= 1) until the queue head's request can be served.

        Walks the same chained float arithmetic the settlement will
        perform, so the predicted tick is exact.
        """
        amount = self._bucket._getters[0][1]
        level = self._bucket._level
        capacity = self._bucket.capacity
        deposit = self._rate * self.tick
        ticks = 0
        while True:
            ticks += 1
            before = level
            level = min(capacity, level + deposit)
            if level >= amount:
                return ticks
            if level == before:
                # Deposit vanished in float rounding: the eager loop
                # would tick forever without ever granting.  Report "no
                # grant tick"; the service loop parks until a rate
                # change makes progress possible again.
                return 0

    def _service_loop(self):
        """Wake exactly at ticks where the oldest blocked request is
        granted; all other ticks settle analytically."""
        env = self.env
        while self._running and self._rate > 0 and self._bucket._getters:
            ticks = self._ticks_until_grant()
            if ticks == 0:
                return  # rate too small to ever grant; set_rate restarts
            target = self._ticker.peek(ticks - 1)
            try:
                yield env.timeout_at(target)
            except Interrupt:
                # set_rate already settled and updated the rate; just
                # recompute (or exit, if paused) on the next pass.
                continue
            # Deposits through now; grants the head (and any queued
            # requests the remaining credit covers) at this tick.
            self._settle(inclusive=True)
