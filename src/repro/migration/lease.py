"""Migration ownership leases with fencing tokens.

A partition can leave the source and target of an in-flight migration
each believing it owns the tenant — the classic split-brain.  The fix
is the standard lease/fencing-token construction:

* the controller grants a **lease** per in-flight migration, tagged
  with a strictly **monotonic fencing token**;
* every migration protocol message carries the token, and receivers
  reject any token older than the newest they have seen for that
  tenant (stale writes from a paused/partitioned source bounce off);
* the lease must be **renewed over the bus** before it expires — a
  partition between source and controller starves renewals, the
  source's *local* knowledge of the lease expires, and the source
  self-fences by aborting (rolling back) *before* the handover point
  of no return.

The invariant this buys: at any simulated instant at most one node can
commit a handover for a tenant, no matter how links drop, flap, or
gray out.  :meth:`LeaseManager.record_commit` is the omniscient audit
hook the chaos fuzzer checks — a commit recorded under an expired or
superseded token is an invariant violation, full stop.

Everything here is sim-time (``env.now``): no wall clock, no threads.
Leases expire *lazily* — validity is a comparison against ``env.now``,
so an idle lease costs zero simulation events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..middleware.protocol import LeaseRenewReply, LeaseRenewRequest
from ..middleware.transport import DeliveryError
from ..simulation import Environment

__all__ = ["Lease", "LeaseManager", "LeaseService"]


@dataclass
class Lease:
    """One migration's ownership grant."""

    tenant_id: int
    token: int
    source: str
    target: str
    granted_at: float
    expires_at: float

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


@dataclass
class CommitRecord:
    """One handover commit as witnessed by the controller's audit log."""

    tenant_id: int
    token: int
    at: float
    #: True when the commit's token was the live, unexpired lease.
    valid: bool


@dataclass
class LeaseStats:
    granted: int = 0
    renewed: int = 0
    expired_renewals: int = 0
    released: int = 0
    stale_rejected: int = 0
    invalid_commits: int = 0

    def counters(self) -> dict[str, int]:
        return {
            "leases_granted": self.granted,
            "leases_renewed": self.renewed,
            "lease_expired_renewals": self.expired_renewals,
            "leases_released": self.released,
            "lease_stale_rejected": self.stale_rejected,
            "lease_invalid_commits": self.invalid_commits,
        }


class LeaseManager:
    """Controller-side lease table with monotonic fencing tokens.

    Grants are local calls (the controller initiates migrations, so it
    trivially reaches itself); renewals arrive over the bus via
    :class:`LeaseService` so partitions starve them realistically.
    ``crash()``/``restart()`` model a fail-stop controller: a dead
    manager answers nothing, so every outstanding lease runs out and
    its holder self-fences.
    """

    def __init__(self, env: Environment, ttl: float = 2.0):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.env = env
        self.ttl = ttl
        self.stats = LeaseStats()
        self.alive = True
        self._next_token = 1
        #: tenant_id -> live lease (lazily expired).
        self._leases: dict[int, Lease] = {}
        #: tenant_id -> newest token ever granted, for staleness checks
        #: that must survive lease release/regrant.
        self._max_token: dict[int, int] = {}
        #: Every handover commit ever reported, valid or not — the
        #: chaos fuzzer's split-brain audit trail.
        self.commit_log: list[CommitRecord] = []

    # -- grant / renew / release ------------------------------------------

    def grant(self, tenant_id: int, source: str, target: str) -> Lease:
        """Grant a fresh lease; supersedes any earlier lease's token."""
        token = self._next_token
        self._next_token += 1
        lease = Lease(
            tenant_id=tenant_id,
            token=token,
            source=source,
            target=target,
            granted_at=self.env.now,
            expires_at=self.env.now + self.ttl,
        )
        self._leases[tenant_id] = lease
        self._max_token[tenant_id] = token
        self.stats.granted += 1
        return lease

    def renew(self, tenant_id: int, token: int) -> Optional[Lease]:
        """Extend the lease iff ``token`` is its live, unexpired token."""
        lease = self._leases.get(tenant_id)
        if lease is None or lease.token != token:
            self.stats.stale_rejected += 1
            return None
        if not lease.valid_at(self.env.now):
            # Too late: the holder must already be self-fencing.
            self.stats.expired_renewals += 1
            return None
        lease.expires_at = self.env.now + self.ttl
        self.stats.renewed += 1
        return lease

    def release(self, tenant_id: int, token: int) -> bool:
        """Drop the lease after a clean completion or rollback."""
        lease = self._leases.get(tenant_id)
        if lease is None or lease.token != token:
            return False
        del self._leases[tenant_id]
        self.stats.released += 1
        return True

    def outstanding(self) -> list[int]:
        """Tenant ids with a lease still on the books (expired or not)."""
        return sorted(self._leases)

    def is_valid(self, tenant_id: int, token: int) -> bool:
        lease = self._leases.get(tenant_id)
        return (
            lease is not None
            and lease.token == token
            and lease.valid_at(self.env.now)
        )

    # -- audit -------------------------------------------------------------

    def record_commit(self, tenant_id: int, token: int) -> bool:
        """Log a handover commit; returns False when it was invalid.

        This is the omniscient check: the committing node only knows
        its *local* lease view, but the audit log judges the commit
        against the controller's ground truth.  A correct fencing
        implementation never produces an invalid commit; the chaos
        fuzzer asserts exactly that.
        """
        valid = self.is_valid(tenant_id, token)
        self.commit_log.append(
            CommitRecord(tenant_id=tenant_id, token=token, at=self.env.now, valid=valid)
        )
        if not valid:
            self.stats.invalid_commits += 1
        return valid

    # -- fail-stop ---------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: stop answering renewals (leases silently run out)."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True


class LeaseService:
    """Bus-facing lease endpoint: answers renewals on ``endpoint_name``.

    Owning a real endpoint means renewals pay NIC transfer time, suffer
    drops and partitions, and show up in transport counters — the lease
    protocol lives in the same failure domain as everything else.
    """

    def __init__(
        self,
        env: Environment,
        bus,
        manager: LeaseManager,
        endpoint_name: str = "controller",
    ):
        self.env = env
        self.manager = manager
        self.endpoint = bus.endpoint(endpoint_name)
        self.name = endpoint_name
        self.renew_requests = 0
        self.renew_refused = 0
        self.reply_send_failures = 0
        self._proc = env.process(self._lease_dispatch_loop())

    def _lease_dispatch_loop(self):
        """Dispatch loop for lease protocol messages."""
        while True:
            envelope = yield self.endpoint.receive()
            message = envelope.message
            if isinstance(message, LeaseRenewRequest):
                if not self.manager.alive:
                    # Crashed controller: renewals fall on deaf ears.
                    continue
                self.renew_requests += 1
                lease = self.manager.renew(message.tenant_id, message.token)
                if lease is None:
                    self.renew_refused += 1
                reply = LeaseRenewReply(
                    tenant_id=message.tenant_id,
                    token=message.token,
                    ok=lease is not None,
                    expires_at=lease.expires_at if lease is not None else 0.0,
                )
                try:
                    yield from self.endpoint.send(envelope.sender, reply)
                except DeliveryError:
                    # Best-effort: a lost reply is indistinguishable
                    # from a partition; the holder will retry or fence.
                    self.reply_send_failures += 1
            elif isinstance(message, LeaseRenewReply):
                # A stray reply routed back at us: idempotently ignore.
                pass
