"""The PID-driven dynamic throttle (the paper's Section 4).

:class:`DynamicThrottleController` closes the loop the paper's
Figure 8 draws:

* the **process variable** is the mean transaction latency over a
  3-second sliding window, sampled once per second;
* the **setpoint** is the target latency (chosen from the SLA);
* the **output** is the throttle speed, expressed as a percent of the
  maximum migration speed, driven by a velocity-form PID with the
  paper's gains (Kp = 0.025, Ki = 0.005, Kd = 0.015, error in ms).

The controller ramps migration up while latency sits below the
setpoint, and backs off — down to a full pause — when bursts push
latency above it.  For the Section 6 extension, feed it windows from
both the source and the target server with ``combine="max"``:
"whichever server has the least amount of slack will be responsible
for determining the throttling rate".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from ..control.pid import PAPER_GAINS, PidGains, VelocityPidController
from ..control.window import DEFAULT_TIMESTEP, DEFAULT_WINDOW, LatencyWindow
from ..resources.units import to_millis
from ..simulation import Environment, Event, Interrupt, PeriodicTicker, Trace
from .throttle import Throttle

__all__ = ["ControllerConfig", "DynamicThrottleController", "LatencyController"]


class LatencyController(Protocol):
    """The controller interface Slacker needs (PID or adaptive PID)."""

    output: float
    setpoint: float

    def update(self, process_variable: float, dt: float = 1.0) -> float:
        ...  # pragma: no cover


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the dynamic throttle loop."""

    #: Target mean transaction latency, seconds.
    setpoint: float
    #: Full-speed migration rate that 100 % output maps to, bytes/second.
    max_rate: float
    #: PID gains, interpreting error in milliseconds -> output in percent.
    gains: PidGains = PAPER_GAINS
    #: Sliding window over which latency is averaged, seconds.
    window: float = DEFAULT_WINDOW
    #: Controller timestep, seconds.
    timestep: float = DEFAULT_TIMESTEP
    #: Initial output, percent of max_rate.
    initial_output_pct: float = 0.0
    #: Floor on the output, percent of max_rate.  The paper's controller
    #: floors at 0 (it may pause migration entirely); a small positive
    #: floor guarantees forward progress even when the setpoint is
    #: unreachable — useful for emergency evacuations, where finishing
    #: the migration is itself the cure for the overload.
    min_output_pct: float = 0.0
    #: Combine rule when multiple latency windows are given.
    combine: str = "mean"

    def __post_init__(self) -> None:
        if self.setpoint <= 0:
            raise ValueError(f"setpoint must be positive, got {self.setpoint}")
        if self.max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {self.max_rate}")
        if self.window <= 0 or self.timestep <= 0:
            raise ValueError("window and timestep must be positive")
        if not 0 <= self.initial_output_pct <= 100:
            raise ValueError(
                f"initial_output_pct must be in [0, 100], got {self.initial_output_pct}"
            )
        if not 0 <= self.min_output_pct < 100:
            raise ValueError(
                f"min_output_pct must be in [0, 100), got {self.min_output_pct}"
            )
        if self.combine not in ("mean", "max"):
            raise ValueError(f"combine must be 'mean' or 'max', got {self.combine!r}")


class DynamicThrottleController:
    """Closes the latency → PID → throttle loop once per timestep."""

    def __init__(
        self,
        env: Environment,
        throttle: Throttle,
        windows: Sequence[LatencyWindow],
        config: ControllerConfig,
        controller: Optional[LatencyController] = None,
        trace: Optional[Trace] = None,
        name: str = "slacker-controller",
        obs=None,
    ):
        if not windows:
            raise ValueError("need at least one latency window")
        self.env = env
        self.throttle = throttle
        self.windows = list(windows)
        self.config = config
        self.trace = trace
        self.name = name
        #: Optional :class:`~repro.obs.Observability`; ``None`` keeps
        #: the step loop free of metric updates.
        self.obs = obs
        # The PID works in (ms error -> percent output) space, per paper.
        self.controller: LatencyController = controller or VelocityPidController(
            config.gains,
            setpoint=to_millis(config.setpoint),
            output_min=config.min_output_pct,
            output_max=100.0,
            initial_output=max(config.initial_output_pct, config.min_output_pct),
        )
        self.steps = 0
        self._stopped = False
        throttle.set_rate(config.initial_output_pct / 100.0 * config.max_rate)

    @property
    def output_pct(self) -> float:
        """Current controller output, percent of max rate."""
        return self.controller.output

    @property
    def stopped(self) -> bool:
        """True once the loop has been told to stop (idempotent)."""
        return self._stopped

    def stop(self) -> None:
        """Stop the control loop (migration finished or aborted).

        Idempotent: both the success path and the abort/rollback path
        may call it, in any order, any number of times.
        """
        self._stopped = True

    def _measure(self) -> Optional[float]:
        """Combined process variable across the windows, seconds."""
        samples = [w.sample(self.env.now) for w in self.windows]
        samples = [s for s in samples if s is not None]
        if not samples:
            return None
        if self.config.combine == "max":
            return max(samples)
        return sum(samples) / len(samples)

    def run(self, until: Optional[Event] = None):
        """Process: step the loop each timestep until stopped.

        ``until`` (typically the migration process) also terminates the
        loop when it fires — whether it *succeeds* (handover done) or
        *fails* (``MigrationAborted``); an aborted migration must not
        leave a controller stepping a dead throttle.  Interrupting the
        loop process stops it cleanly as well.
        """
        # Every step does real control work (PID update + set_rate), so
        # no tick can be elided; the ticker keeps the control grid on
        # the coalesced-timer API with exact chained timestamps.
        ticker = PeriodicTicker(self.env, self.config.timestep)
        try:
            while not self._stopped and not (until is not None and until.triggered):
                yield ticker.tick()
                if self._stopped or (until is not None and until.triggered):
                    break
                latency = self._measure()
                if latency is None:
                    continue  # no signal yet: hold the current rate
                output_pct = self.controller.update(
                    to_millis(latency), dt=self.config.timestep
                )
                rate = output_pct / 100.0 * self.config.max_rate
                self.throttle.set_rate(rate)
                self.steps += 1
                if self.obs is not None:
                    self.obs.on_controller_step(
                        self.controller.setpoint - to_millis(latency),
                        output_pct,
                        rate,
                    )
                if self.trace is not None:
                    now = self.env.now
                    self.trace.record(f"{self.name}:window_latency", now, latency)
                    self.trace.record(f"{self.name}:throttle_rate", now, rate)
                    self.trace.record(f"{self.name}:output_pct", now, output_pct)
        except Interrupt:
            pass
        self._stopped = True
