"""Fluid migration: chunked state handover with dual-resident routing.

Slacker (and :mod:`repro.migration.live`) moves a tenant as one
snapshot + delta rounds + a single freeze.  Megaphone [Hoffmann et
al., arXiv:1812.01371] shows that splitting the state into fine-
grained chunks, each with its own mini-handover, cuts the latency
impact by orders of magnitude: no transaction ever waits behind the
*whole* tenant's final delta — only behind one chunk's.

The tenant's page space is partitioned into ``num_chunks`` contiguous
chunks.  Per chunk the pipeline is:

1. **Copy** — stream the chunk's pages to the target through the
   migration throttle (the source keeps serving everything).
2. **Freeze** — block *new writers to that chunk only*, wait for
   in-flight writers on the chunk to drain, ship the chunk's write
   delta unthrottled (a window ~1/N the length of live migration's,
   hit by ~1/N of the traffic).
3. **Flip** — check the fencing token, flip the chunk's ownership in
   the :class:`ChunkMap`, announce it (``ChunkHandover`` to the
   target, ``ChunkOwnership`` broadcast via the frontend), thaw.

While any chunk has flipped and any chunk has not, the tenant is
*dual-resident*: the :class:`FluidRouter` (installed as the tenant's
engine for the duration) routes every page access to whichever engine
owns that page's chunk, paying a network hop for transactions that
span both residents.

Failure semantics ride the live-migration machinery: until the last
chunk has flipped (``FINALIZING``) the migration can be aborted at any
instant — frozen chunks are thawed, flipped chunks are flipped back to
the source (their writes shipped home, so nothing is lost), the
half-built target is discarded, and the router's ownership map ends
all-source.  Every chunk is exactly-once owned at every instant by
construction: ownership is a single map on the source side, and the
wire frames merely announce its transitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..db.backup import DEFAULT_CHUNK_BYTES
from ..db.engine import DatabaseEngine, EngineState
from ..db.transactions import OpType, Transaction
from ..resources.server import Server
from ..resources.units import PAGE_SIZE
from ..simulation import Environment, Event, Interrupt, Process
from .live import MigrationAborted
from .throttle import Throttle

__all__ = [
    "FluidPhase",
    "ChunkState",
    "ChunkMap",
    "FluidRouter",
    "FluidMigrationResult",
    "FluidMigration",
    "check_fluid_invariants",
]

#: Default number of chunks the page space is split into.
DEFAULT_NUM_CHUNKS = 16


class FluidPhase(enum.Enum):
    """Where a fluid migration currently is."""

    PENDING = "pending"
    MIGRATING = "migrating"
    FINALIZING = "finalizing"
    COMPLETE = "complete"
    ABORTED = "aborted"


#: Legal phase transitions.  ``FINALIZING`` (last chunk flipped, source
#: retiring) has no edge to ``ABORTED``: the target is authoritative
#: for every chunk and cancelling would lose writes.
_TRANSITIONS: dict[FluidPhase, frozenset[FluidPhase]] = {
    FluidPhase.PENDING: frozenset({FluidPhase.MIGRATING, FluidPhase.ABORTED}),
    FluidPhase.MIGRATING: frozenset({FluidPhase.FINALIZING, FluidPhase.ABORTED}),
    FluidPhase.FINALIZING: frozenset({FluidPhase.COMPLETE}),
    FluidPhase.COMPLETE: frozenset(),
    FluidPhase.ABORTED: frozenset(),
}

#: Phases from which an abort is refused.
_NO_ABORT_PHASES = frozenset(
    {FluidPhase.FINALIZING, FluidPhase.COMPLETE, FluidPhase.ABORTED}
)


class ChunkState(enum.Enum):
    """Per-chunk lifecycle within one fluid migration."""

    PENDING = "pending"
    COPYING = "copying"
    FROZEN = "frozen"
    MIGRATED = "migrated"
    ROLLED_BACK = "rolled-back"


#: Legal per-chunk transitions.  ``ROLLED_BACK`` is the abort-path
#: terminal (the chunk is source-owned again); ``MIGRATED`` chunks can
#: still be rolled back until the migration finalizes.
_CHUNK_TRANSITIONS: dict[ChunkState, frozenset[ChunkState]] = {
    ChunkState.PENDING: frozenset({ChunkState.COPYING}),
    ChunkState.COPYING: frozenset({ChunkState.FROZEN, ChunkState.ROLLED_BACK}),
    ChunkState.FROZEN: frozenset({ChunkState.MIGRATED, ChunkState.ROLLED_BACK}),
    ChunkState.MIGRATED: frozenset({ChunkState.ROLLED_BACK}),
    ChunkState.ROLLED_BACK: frozenset(),
}


class ChunkMap:
    """Exactly-once chunk ownership for one tenant's page space.

    This map is the single authority on who owns each chunk; the
    ``ChunkHandover``/``ChunkOwnership`` wire frames only *announce*
    its transitions.  Ownership flips must present the migration's
    fencing token (lint rule SLK108): a flip under a token below the
    highest one this map has committed is rejected and counted, the
    same monotonic-floor discipline nodes apply in ``check_fence``.
    """

    def __init__(self, num_pages: int, num_chunks: int):
        if num_pages < 1:
            raise ValueError(f"num_pages must be >= 1, got {num_pages}")
        if not 1 <= num_chunks <= num_pages:
            raise ValueError(
                f"num_chunks must be in [1, {num_pages}], got {num_chunks}"
            )
        self.num_pages = num_pages
        self.num_chunks = num_chunks
        self._owners: dict[int, str] = {c: "source" for c in range(num_chunks)}
        #: Highest fencing token a flip has committed under.
        self.token_floor = 0
        self.flips = 0
        self.stale_flips_rejected = 0
        #: (chunk, owner, token) log of committed flips, for audits.
        self.flip_log: list[tuple[int, str, int]] = []

    def chunk_of(self, page_id: int) -> int:
        """The chunk a page belongs to (contiguous, evenly split).

        Exact inverse of :meth:`page_range`: page ``p`` maps to chunk
        ``c`` iff ``page_range(c)[0] <= p < page_range(c)[1]``, also
        when ``num_pages % num_chunks != 0`` — routing and the chunk
        copier must agree on who owns every page.
        """
        return min(
            ((page_id + 1) * self.num_chunks - 1) // self.num_pages,
            self.num_chunks - 1,
        )

    def page_range(self, chunk_index: int) -> tuple[int, int]:
        """Half-open ``[lo, hi)`` page range of one chunk."""
        lo = chunk_index * self.num_pages // self.num_chunks
        hi = (chunk_index + 1) * self.num_pages // self.num_chunks
        return lo, hi

    def owner(self, chunk_index: int) -> str:
        """Current owner side of a chunk (``"source"``/``"target"``)."""
        return self._owners[chunk_index]

    def owners(self) -> dict[int, str]:
        """Snapshot of the whole ownership map."""
        return dict(self._owners)

    def flip_chunk(self, chunk_index: int, owner: str, *, token: int) -> bool:
        """Commit an ownership flip under a fencing token.

        Returns False (and counts the rejection) when ``token`` is
        below the committed floor — a migration holding a superseded
        lease must not move ownership.  All flips, including the abort
        path's flip-backs, go through here; there is no other writer
        of the ownership map.
        """
        if token < self.token_floor:
            self.stale_flips_rejected += 1
            return False
        self.token_floor = token
        self._owners[chunk_index] = owner
        self.flips += 1
        self.flip_log.append((chunk_index, owner, token))
        return True


class FluidRouter:
    """Dual-resident request router, installed as the tenant's engine.

    Implements the same ``execute(txn)`` generator contract as
    :class:`~repro.db.engine.DatabaseEngine` (the benchmark client
    resolves it per transaction), but routes every page access to the
    engine that owns the page's chunk *at access time*.  Writers that
    touch a frozen chunk block until the chunk thaws — a window ~1/N
    the length of a whole-tenant freeze, felt by ~1/N of the traffic.
    """

    def __init__(self, env: Environment, source: DatabaseEngine, chunk_map: ChunkMap):
        self.env = env
        self.chunk_map = chunk_map
        #: Owner side -> engine.  The migration adds ``"target"`` once
        #: the replica engine exists (no chunk flips before that).
        self.engines: dict[str, DatabaseEngine] = {"source": source}
        self.layout = source.layout
        self.costs = source.costs
        #: Per-chunk committed write-op counts (sizes the chunk delta).
        self.chunk_writes = [0] * chunk_map.num_chunks
        self._freeze_events: dict[int, Event] = {}
        self._inflight: dict[int, int] = {}
        self._quiesce_waiters: dict[int, list[Event]] = {}
        # -- accounting ----------------------------------------------------
        self.txns_routed = 0
        self.writes_committed = 0
        self.writes_to_source = 0
        self.writes_to_target = 0
        #: Transactions that stalled on a per-chunk freeze.
        self.writes_blocked = 0
        #: Extra network hops paid by transactions spanning both sides.
        self.cross_hops = 0
        #: Tripwire: page accesses served by a non-owner (must stay 0).
        self.foreign_serves = 0

    # -- per-chunk freeze / quiesce ---------------------------------------

    def freeze_chunk(self, chunk_index: int) -> None:
        """Block new writers to one chunk (reads keep flowing)."""
        if chunk_index in self._freeze_events:
            raise RuntimeError(f"chunk {chunk_index} is already frozen")
        self._freeze_events[chunk_index] = Event(self.env)

    def thaw_chunk(self, chunk_index: int) -> None:
        """Unblock writers to one chunk."""
        event = self._freeze_events.pop(chunk_index, None)
        if event is None:
            raise RuntimeError(f"chunk {chunk_index} is not frozen")
        event.succeed()

    def chunk_frozen(self, chunk_index: int) -> bool:
        return chunk_index in self._freeze_events

    @property
    def frozen_chunks(self) -> list[int]:
        return sorted(self._freeze_events)

    def chunk_write_quiesced(self, chunk_index: int) -> Event:
        """Event firing once no writer is in flight on the chunk."""
        event = Event(self.env)
        if self._inflight.get(chunk_index, 0) == 0:
            event.succeed()
        else:
            self._quiesce_waiters.setdefault(chunk_index, []).append(event)
        return event

    # -- transaction execution --------------------------------------------

    def _pages_of(self, op) -> list[int]:
        if op.op_type is OpType.SCAN:
            return self.layout.pages_of_scan(op.key, op.scan_length)
        return [self.layout.page_of(op.key)]

    def execute(self, txn: Transaction) -> Generator:
        """Process: run ``txn`` against whoever owns each touched page."""
        chunk_of = self.chunk_map.chunk_of
        write_chunks = sorted(
            {
                chunk_of(page)
                for op in txn.operations
                if op.op_type.is_write
                for page in self._pages_of(op)
            }
        )
        # Writers stall while any chunk they write is in its freeze
        # window — the fluid analogue of the whole-tenant write freeze.
        blocked = False
        while True:
            frozen = [c for c in write_chunks if c in self._freeze_events]
            if not frozen:
                break
            if not blocked:
                blocked = True
                self.writes_blocked += 1
            yield self._freeze_events[frozen[0]]
        if txn.started_at is None:
            txn.started_at = self.env.now
        for chunk in write_chunks:
            self._inflight[chunk] = self._inflight.get(chunk, 0) + 1
        self.txns_routed += 1
        try:
            written: dict[int, int] = {}
            for op in txn.operations:
                yield from self._execute_operation(txn, op, written)
            if txn.write_count > 0:
                yield from self._commit(txn, written)
        finally:
            for chunk in write_chunks:
                self._inflight[chunk] -= 1
                if self._inflight[chunk] == 0:
                    waiters = self._quiesce_waiters.pop(chunk, [])
                    for waiter in waiters:
                        waiter.succeed()
        txn.finished_at = self.env.now

    def _engine_for(self, chunk_index: int) -> tuple[str, DatabaseEngine]:
        side = self.chunk_map.owner(chunk_index)
        return side, self.engines[side]

    def _execute_operation(self, txn, op, written: dict[int, int]) -> Generator:
        pages = self._pages_of(op)
        anchor_side, anchor = self._engine_for(self.chunk_map.chunk_of(pages[0]))
        cpu_cost = self.costs.cpu_per_op
        if op.op_type.is_write:
            cpu_cost += self.costs.cpu_per_write
        yield from anchor.server.cpu.execute(cpu_cost)
        for page_id in pages:
            chunk = self.chunk_map.chunk_of(page_id)
            side, engine = self._engine_for(chunk)
            if engine is not anchor:
                # The op spans both residents: pay the hop to the other
                # side (the dual-residency tax Megaphone accepts).
                self.cross_hops += 1
                yield from anchor.server.nic_out.transfer(PAGE_SIZE)
            yield from engine._access_page(txn, page_id, op.op_type.is_write)
            if op.op_type.is_write:
                if self.chunk_map.owner(chunk) != side:
                    # Ownership moved under our feet: the write landed
                    # on a non-owner.  Cannot happen while flips wait
                    # for the chunk's writers to drain — tripwire only.
                    self.foreign_serves += 1
                engine.binlog.append(
                    size=self.costs.log_bytes_per_write,
                    time=self.env.now,
                    txn_id=txn.txn_id,
                )
                self.chunk_writes[chunk] += 1
                written[chunk] = written.get(chunk, 0) + 1
        anchor.stats.operations += 1

    def _commit(self, txn, written: dict[int, int]) -> Generator:
        """Group-commit on every engine this transaction wrote through."""
        for side in ("source", "target"):
            engine = self.engines.get(side)
            if engine is None:
                continue
            count = sum(
                n for chunk, n in written.items()
                if self.chunk_map.owner(chunk) == side
            )
            if count == 0:
                continue
            yield from engine.server.disk.write(
                self.costs.commit_flush_bytes,
                sequential=True,
                stream=engine._stream("binlog"),
                cached=True,
            )
            engine.stats.log_flushes += 1
            engine.stats.committed += 1
            engine.data_version += count
            self.writes_committed += count
            if side == "source":
                self.writes_to_source += count
            else:
                self.writes_to_target += count


@dataclass
class FluidMigrationResult:
    """Outcome of one fluid migration."""

    tenant: str
    started_at: float
    finished_at: float
    num_chunks: int
    copied_bytes: int
    delta_bytes: int
    #: Per-chunk freeze-window lengths, seconds.
    freeze_durations: list = field(default_factory=list)
    target: Optional[DatabaseEngine] = None

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def downtime(self) -> float:
        """Worst single stall any transaction could have seen."""
        return max(self.freeze_durations, default=0.0)

    @property
    def total_freeze_time(self) -> float:
        return sum(self.freeze_durations)

    @property
    def total_bytes(self) -> int:
        return self.copied_bytes + self.delta_bytes

    @property
    def average_rate(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.total_bytes / self.duration


class FluidMigration:
    """One fluid (chunked-handover) migration of a tenant engine."""

    def __init__(
        self,
        env: Environment,
        source: DatabaseEngine,
        target_server: Server,
        throttle: Throttle,
        num_chunks: int = DEFAULT_NUM_CHUNKS,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        on_handover: Optional[Callable[[DatabaseEngine], None]] = None,
        on_chunk_flip=None,
        fence: Optional[Callable[[], bool]] = None,
        token: int = 0,
        obs=None,
    ):
        if num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        self.env = env
        self.source = source
        self.target_server = target_server
        self.throttle = throttle
        self.chunk_bytes = chunk_bytes
        self.on_handover = on_handover
        #: Optional generator function ``(chunk_index, delta_bytes)``
        #: run on the migration path after each flip — the node uses it
        #: to send the ``ChunkHandover`` frame and update the frontend.
        self.on_chunk_flip = on_chunk_flip
        #: Fencing gate, consulted immediately before *every* chunk
        #: flip (each flip is a mini point-of-no-return for its chunk).
        self.fence = fence
        #: Fencing token every ownership flip commits under.
        self.token = token
        self.obs = obs
        self.chunk_map = ChunkMap(
            source.layout.num_pages, min(num_chunks, source.layout.num_pages)
        )
        self.num_chunks = self.chunk_map.num_chunks
        self.router = FluidRouter(env, source, self.chunk_map)
        self.phase = FluidPhase.PENDING
        self.phase_history: list[tuple[float, FluidPhase]] = []
        self.chunk_states = [ChunkState.PENDING] * self.num_chunks
        self.target: Optional[DatabaseEngine] = None
        self.rolled_back = False
        #: Writes the abort path shipped back from the target (none are
        #: lost: they land in the source's data version again).
        self.reclaimed_writes = 0
        self._abort_reason: Optional[str] = None
        self._process: Optional[Process] = None
        self._handover_done = False

    @property
    def abort_reason(self) -> Optional[str]:
        return self._abort_reason

    def _transition(self, phase: FluidPhase) -> None:
        if phase not in _TRANSITIONS[self.phase]:
            raise RuntimeError(
                f"illegal fluid migration transition {self.phase.value} -> {phase.value}"
            )
        self.phase = phase
        self.phase_history.append((self.env.now, phase))
        if self.obs is not None:
            self.obs.on_migration_phase(self, phase)

    def _chunk_transition(self, chunk_index: int, state: ChunkState) -> None:
        current = self.chunk_states[chunk_index]
        if state not in _CHUNK_TRANSITIONS[current]:
            raise RuntimeError(
                f"illegal chunk {chunk_index} transition "
                f"{current.value} -> {state.value}"
            )
        self.chunk_states[chunk_index] = state

    # -- abort machinery (mirrors LiveMigration) ---------------------------

    def try_abort(self, reason: str = "cancelled") -> bool:
        """Request an abort; returns whether it was accepted.

        Accepted any time before the last chunk has flipped
        (``FINALIZING``): in-flight chunk work is interrupted, frozen
        chunks thaw, already-flipped chunks flip back to the source
        with their writes shipped home.
        """
        if self.phase in _NO_ABORT_PHASES:
            return False
        if self._abort_reason is None:
            self._abort_reason = reason
        proc = self._process
        if proc is not None and proc.is_alive and proc is not self.env.active_process:
            proc.interrupt(reason)
        return True

    def abort(self, reason: str = "operator cancelled") -> None:
        """Cancel before finalization; raises once finalizing/complete."""
        if self.phase is FluidPhase.ABORTED:
            return
        if not self.try_abort(reason):
            raise RuntimeError(
                f"cannot abort a fluid migration in phase {self.phase.value}"
            )

    def _check_abort(self) -> None:
        if self._abort_reason is not None and self.phase is not FluidPhase.ABORTED:
            self._rollback()
            raise MigrationAborted(self._abort_reason)

    def _rollback(self) -> None:
        """Restore an all-source-owned, unfrozen state (synchronous)."""
        for chunk in list(self.router.frozen_chunks):
            self.router.thaw_chunk(chunk)
        for chunk in range(self.num_chunks):
            if self.chunk_map.owner(chunk) != "source":
                # Flip-backs carry the same token the flips committed
                # under; the floor admits equal tokens, so the abort of
                # the lease holder itself always succeeds.
                self.chunk_map.flip_chunk(chunk, "source", token=self.token)
            if self.chunk_states[chunk] is not ChunkState.PENDING:
                self._chunk_transition(chunk, ChunkState.ROLLED_BACK)
        # Ship the target-resident writes home (instantaneous in the
        # rollback, like live migration's discard): nothing is lost.
        reclaim = self.router.writes_to_target - self.reclaimed_writes
        if reclaim > 0:
            self.reclaimed_writes += reclaim
            self.source.data_version += reclaim
        if self.target is not None and self.target.state is not EngineState.STOPPED:
            self.target.stop()
        self._transition(FluidPhase.ABORTED)
        self.rolled_back = True

    # -- pipeline pieces ---------------------------------------------------

    def _make_target(self) -> DatabaseEngine:
        return DatabaseEngine(
            self.env,
            self.target_server,
            self.source.layout,
            name=f"{self.source.name}@{self.target_server.name}",
            buffer_bytes=self.source.buffer_pool.capacity_pages
            * self.source.buffer_pool.page_size,
            costs=self.source.costs,
        )

    def _copy_chunk(self, chunk_index: int) -> Generator:
        """Stream one chunk's pages through the throttle to the target."""
        lo, hi = self.chunk_map.page_range(chunk_index)
        nbytes = (hi - lo) * PAGE_SIZE
        read_stream = self.source._stream("fluid")
        write_stream = self.source._stream("fluid-restore")
        shipped = 0
        while shipped < nbytes:
            size = min(self.chunk_bytes, nbytes - shipped)
            yield from self.throttle.acquire(size)
            yield from self.source.server.disk.read(
                size, sequential=True, stream=read_stream
            )
            yield from self.source.server.nic_out.transfer(size)
            yield from self.target_server.disk.write(
                size, sequential=True, stream=write_stream
            )
            shipped += size
        return nbytes

    def _ship_chunk_delta(self, nbytes: int) -> Generator:
        """Ship + apply one chunk's write delta, unthrottled (frozen)."""
        assert self.target is not None
        yield from self.source.server.disk.read(
            nbytes, sequential=True, stream=self.source._stream("binlog-ship")
        )
        yield from self.source.server.nic_out.transfer(nbytes)
        yield from self.target.apply_delta_bytes(
            nbytes, self.target.replicated_lsn + nbytes
        )

    # -- the migration -----------------------------------------------------

    def run(self) -> Generator:
        """Process: run the full chunked migration.

        Terminates either returning a :class:`FluidMigrationResult`
        with phase ``COMPLETE`` (every chunk target-owned), or raising
        :class:`MigrationAborted` with phase ``ABORTED`` (every chunk
        source-owned again).
        """
        self._process = self.env.active_process
        started_at = self.env.now
        copied_bytes = 0
        delta_bytes_total = 0
        freeze_durations: list[float] = []
        try:
            self._check_abort()
            self._transition(FluidPhase.MIGRATING)
            self.target = self._make_target()
            self.router.engines["target"] = self.target

            for chunk in range(self.num_chunks):
                self._check_abort()
                self._chunk_transition(chunk, ChunkState.COPYING)
                write_baseline = self.router.chunk_writes[chunk]
                copied_bytes += yield from self._copy_chunk(chunk)
                self._check_abort()

                # Mini-handover: freeze just this chunk, drain its
                # writers, ship its delta, check the fence, flip.
                self._chunk_transition(chunk, ChunkState.FROZEN)
                freeze_started = self.env.now
                self.router.freeze_chunk(chunk)
                try:
                    yield self.router.chunk_write_quiesced(chunk)
                    delta_writes = (
                        self.router.chunk_writes[chunk] - write_baseline
                    )
                    chunk_delta = (
                        delta_writes * self.source.costs.log_bytes_per_write
                    )
                    if chunk_delta > 0:
                        yield from self._ship_chunk_delta(chunk_delta)
                        delta_bytes_total += chunk_delta
                    if self.fence is not None and not self.fence():
                        self._abort_reason = (
                            self._abort_reason
                            or "fencing check failed at chunk flip"
                        )
                        self._rollback()
                        raise MigrationAborted(self._abort_reason)
                    if not self.chunk_map.flip_chunk(
                        chunk, "target", token=self.token
                    ):
                        self._abort_reason = (
                            self._abort_reason or "stale fencing token at chunk flip"
                        )
                        self._rollback()
                        raise MigrationAborted(self._abort_reason)
                finally:
                    # Never leave a chunk frozen, whatever went wrong
                    # (the rollback thaws before this runs on aborts).
                    if self.router.chunk_frozen(chunk):
                        self.router.thaw_chunk(chunk)
                self._chunk_transition(chunk, ChunkState.MIGRATED)
                freeze_durations.append(self.env.now - freeze_started)
                if self.obs is not None:
                    self.obs.on_migration_freeze(self, freeze_durations[-1])
                if self.on_chunk_flip is not None:
                    yield from self.on_chunk_flip(
                        chunk, chunk_delta if delta_writes else 0
                    )
                self._check_abort()
        except Interrupt as interrupt:
            reason = self._abort_reason or str(interrupt.cause or "interrupted")
            self._abort_reason = reason
            self._rollback()
            raise MigrationAborted(reason) from None

        # Every chunk is target-owned: retire the source.  Aborts are
        # refused from here on (flipping back would lose writes).
        self._transition(FluidPhase.FINALIZING)
        if self.on_handover is not None and not self._handover_done:
            self._handover_done = True
            self.on_handover(self.target)
        self.source.stop(successor=self.target)
        self._transition(FluidPhase.COMPLETE)
        return FluidMigrationResult(
            tenant=self.source.name,
            started_at=started_at,
            finished_at=self.env.now,
            num_chunks=self.num_chunks,
            copied_bytes=copied_bytes,
            delta_bytes=delta_bytes_total,
            freeze_durations=freeze_durations,
            target=self.target,
        )


def check_fluid_invariants(migration: FluidMigration) -> list[str]:
    """Audit one terminal fluid migration; returns violation strings.

    The battery the chaos fuzzer asserts after every fluid schedule:
    exactly-once chunk ownership consistent with the terminal phase, no
    page ever served by a non-owner, no chunk left frozen, and write
    conservation across both residents (nothing double-counted by the
    router, nothing lost by the rollback).
    """
    violations: list[str] = []
    router = migration.router
    owners = migration.chunk_map.owners()
    if len(owners) != migration.num_chunks:
        violations.append(
            f"chunk map holds {len(owners)} entries for "
            f"{migration.num_chunks} chunks"
        )
    if router.foreign_serves:
        violations.append(
            f"{router.foreign_serves} page writes served by a non-owner"
        )
    if router.frozen_chunks:
        violations.append(f"chunks left frozen: {router.frozen_chunks}")
    if migration.phase is FluidPhase.COMPLETE:
        wrong = sorted(c for c, side in owners.items() if side != "target")
        if wrong:
            violations.append(f"completed migration left chunks {wrong} on source")
        unmigrated = [
            c
            for c, state in enumerate(migration.chunk_states)
            if state is not ChunkState.MIGRATED
        ]
        if unmigrated:
            violations.append(
                f"completed migration left chunks {unmigrated} unmigrated"
            )
    elif migration.phase is FluidPhase.ABORTED:
        wrong = sorted(c for c, side in owners.items() if side != "source")
        if wrong:
            violations.append(f"aborted migration left chunks {wrong} on target")
        if migration.reclaimed_writes != router.writes_to_target:
            violations.append(
                f"abort reclaimed {migration.reclaimed_writes} writes but "
                f"{router.writes_to_target} were routed to the target"
            )
    else:
        violations.append(
            f"migration not terminal: phase {migration.phase.value}"
        )
    if router.writes_to_source + router.writes_to_target != router.writes_committed:
        violations.append(
            "router write conservation broken: "
            f"{router.writes_to_source} + {router.writes_to_target} != "
            f"{router.writes_committed}"
        )
    return violations
