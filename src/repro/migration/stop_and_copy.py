"""Stop-and-copy migration (the paper's Section 2.3.1 baseline).

Two variants, both of which incur downtime proportional to database
size (which is why the paper abandons them for live migration):

* **file-level copy** — Slacker's optimized variant: acquire a global
  read lock, copy the tenant's data directory byte-for-byte, start a
  new daemon on the target pointing at the copied directory.  No
  export/import cost because "the data stays in the internal format
  used by MySQL".
* **dump-and-reimport** — the naive ``mysqldump`` pipeline: export all
  data as SQL, ship it, re-execute it on the target.  "This approach is
  very slow ... largely due to the overhead of reimporting the data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..db.backup import DEFAULT_CHUNK_BYTES
from ..db.engine import DatabaseEngine, FreezeMode
from ..resources.server import Server
from ..resources.units import PAGE_SIZE
from ..simulation import Environment
from .throttle import Throttle

__all__ = ["StopAndCopyResult", "StopAndCopyMigration", "DumpReimportMigration"]


@dataclass
class StopAndCopyResult:
    """Outcome of a stop-and-copy migration."""

    method: str
    started_at: float
    finished_at: float
    bytes_copied: int
    target: DatabaseEngine

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def downtime(self) -> float:
        """The tenant is down for the entire copy: downtime == duration."""
        return self.duration


class StopAndCopyMigration:
    """File-level stop-and-copy of one tenant to a target server."""

    method = "file-copy"

    def __init__(
        self,
        env: Environment,
        source: DatabaseEngine,
        target_server: Server,
        throttle: Optional[Throttle] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ):
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.env = env
        self.source = source
        self.target_server = target_server
        self.throttle = throttle
        self.chunk_bytes = chunk_bytes

    def _make_target(self) -> DatabaseEngine:
        return DatabaseEngine(
            self.env,
            self.target_server,
            self.source.layout,
            name=f"{self.source.name}@{self.target_server.name}",
            buffer_bytes=self.source.buffer_pool.capacity_pages
            * self.source.buffer_pool.page_size,
            costs=self.source.costs,
        )

    def _ship_chunk(self, size: int, stream: str) -> Generator:
        """Read one chunk on the source, wire it over, write it down."""
        if self.throttle is not None:
            yield from self.throttle.acquire(size)
        yield from self.source.server.disk.read(size, sequential=True, stream=stream)
        yield from self.source.server.nic_out.transfer(size)
        yield from self.target_server.disk.write(size, sequential=True, stream=stream)

    def run(self) -> Generator:
        """Process: perform the migration; returns a result record."""
        started_at = self.env.now
        self.source.freeze(FreezeMode.ALL)
        yield self.source.write_quiesced()

        total = self.source.data_bytes
        copied = 0
        stream = f"{self.source.name}:stop-and-copy"
        while copied < total:
            size = min(self.chunk_bytes, total - copied)
            yield from self._ship_chunk(size, stream)
            copied += size

        target = self._make_target()
        # The copied files are already current: no writes ran since the
        # freeze, so the target starts at the source's exact LSN.
        target.replicated_lsn = self.source.binlog.head_lsn
        target.data_version = self.source.data_version
        self.source.stop(successor=target)
        return StopAndCopyResult(
            method=self.method,
            started_at=started_at,
            finished_at=self.env.now,
            bytes_copied=copied,
            target=target,
        )


class DumpReimportMigration(StopAndCopyMigration):
    """Naive mysqldump stop-and-copy: export, ship, re-import.

    The re-import re-executes every row insert on the target: a CPU
    burst plus page write per row batch, which dominates the cost
    exactly as reported in the paper and in Elmore et al.'s
    measurements.
    """

    method = "dump-reimport"

    #: Rows re-inserted per batched import statement.
    import_batch_rows = 64

    def _ship_chunk(self, size: int, stream: str) -> Generator:
        yield from super()._ship_chunk(size, stream)
        # Re-import: re-execute the inserts carried by this chunk.
        rows = max(1, size // self.source.layout.row_size)
        batches = -(-rows // self.import_batch_rows)  # ceil division
        for _ in range(batches):
            yield from self.target_server.cpu.execute(
                self.source.costs.cpu_per_op + self.source.costs.cpu_per_write
            )
            yield from self.target_server.disk.write(PAGE_SIZE)
