"""Migration engine: throttle, slack model, stop-and-copy, live migration,
and the PID-driven dynamic throttle controller."""

from .controller import ControllerConfig, DynamicThrottleController, LatencyController
from .fluid import (
    ChunkMap,
    ChunkState,
    FluidMigration,
    FluidMigrationResult,
    FluidPhase,
    FluidRouter,
    check_fluid_invariants,
)
from .lease import Lease, LeaseManager, LeaseService
from .live import (
    DeltaRound,
    LiveMigration,
    LiveMigrationResult,
    MigrationAborted,
    MigrationPhase,
)
from .on_demand import (
    OnDemandMigration,
    OnDemandMigrationResult,
    PartialReplicaEngine,
)
from .shared_live import SharedMigrationResult, SharedTenantMigration
from .slack import AdditiveSlackModel, EmpiricalSlackEstimator, RateLatencySample
from .stop_and_copy import (
    DumpReimportMigration,
    StopAndCopyMigration,
    StopAndCopyResult,
)
from .throttle import Throttle, ThrottleStats

__all__ = [
    "AdditiveSlackModel",
    "ChunkMap",
    "ChunkState",
    "ControllerConfig",
    "DeltaRound",
    "DumpReimportMigration",
    "DynamicThrottleController",
    "EmpiricalSlackEstimator",
    "FluidMigration",
    "FluidMigrationResult",
    "FluidPhase",
    "FluidRouter",
    "LatencyController",
    "check_fluid_invariants",
    "Lease",
    "LeaseManager",
    "LeaseService",
    "LiveMigration",
    "LiveMigrationResult",
    "MigrationAborted",
    "MigrationPhase",
    "OnDemandMigration",
    "OnDemandMigrationResult",
    "PartialReplicaEngine",
    "RateLatencySample",
    "SharedMigrationResult",
    "SharedTenantMigration",
    "StopAndCopyMigration",
    "StopAndCopyResult",
    "Throttle",
    "ThrottleStats",
]
