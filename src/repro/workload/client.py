"""The benchmark client: MPL-limited execution of arriving transactions.

Mirrors the paper's harness (Section 5.1.2): transactions arrive from
an open Poisson process, a fixed multiprogramming level (MPL 10) of
client threads executes them against the tenant database, and arrivals
that find no free thread queue FIFO.  "The latency of a transaction is
simply the sum of the time spent in queue and the transaction execution
time" — which is exactly what :class:`BenchmarkClient` records.

A closed-mode client (each virtual user issues its next transaction
when the previous completes, plus think time) is included for the
open-vs-closed ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..db.engine import DatabaseEngine
from ..simulation import Environment, Store, Trace
from .generator import ArrivalProcess, TransactionFactory

__all__ = ["ClientStats", "BenchmarkClient", "ClosedBenchmarkClient"]

#: Paper default multiprogramming level.
DEFAULT_MPL = 10


def _resolve_engine(target):
    """Resolve what to execute transactions against.

    Accepts a :class:`DatabaseEngine`, anything with an ``engine``
    attribute (a middleware ``Tenant``), or any duck-typed object with
    a single-argument ``execute`` generator (a shared-process tenant
    session).  Resolving per transaction means clients automatically
    follow a tenant across a migration handover, like applications
    receiving the frontend's location updates.
    """
    if isinstance(target, DatabaseEngine):
        return target
    engine = getattr(target, "engine", None)
    if isinstance(engine, DatabaseEngine):
        return engine
    # A duck-typed executor installed as a tenant's engine — e.g. the
    # fluid migration's dual-resident router — is followed the same way.
    if engine is not None and callable(getattr(engine, "execute", None)):
        return engine
    if callable(getattr(target, "execute", None)):
        return target
    raise TypeError(f"{target!r} is neither an engine nor a tenant")


@dataclass
class ClientStats:
    """Running counters for one benchmark client."""

    arrived: int = 0
    completed: int = 0
    peak_queue_length: int = 0

    @property
    def in_system(self) -> int:
        """Transactions arrived but not yet completed."""
        return self.arrived - self.completed


class BenchmarkClient:
    """Open-workload client: Poisson arrivals, MPL worker threads."""

    def __init__(
        self,
        env: Environment,
        engine: DatabaseEngine,
        factory: TransactionFactory,
        arrivals: ArrivalProcess,
        mpl: int = DEFAULT_MPL,
        trace: Optional[Trace] = None,
        series: str = "latency",
    ):
        if mpl <= 0:
            raise ValueError(f"mpl must be positive, got {mpl}")
        self.env = env
        self.engine = engine
        self.factory = factory
        self.arrivals = arrivals
        self.mpl = mpl
        self.trace = trace if trace is not None else Trace()
        self.series = series
        self.stats = ClientStats()
        self._queue = Store(env)
        self._running = False

    @property
    def latencies(self):
        """The recorded latency series (seconds, indexed by finish time)."""
        return self.trace.series(self.series)

    @property
    def queue_length(self) -> int:
        """Transactions waiting for a free client thread."""
        return len(self._queue.items)

    def start(self) -> None:
        """Spawn the arrival process and the MPL worker threads."""
        if self._running:
            raise RuntimeError("client already started")
        self._running = True
        self.env.process(self._arrival_loop())
        for _ in range(self.mpl):
            self.env.process(self._worker_loop())

    def stop(self) -> None:
        """Stop generating new arrivals (in-flight work completes)."""
        self._running = False

    def _arrival_loop(self):
        # Hottest loop in every experiment: one iteration per arriving
        # transaction.  Bind the per-arrival call chain once; the gap
        # draws themselves come from the arrival process's pre-generated
        # batches (see PoissonArrivals.next_interarrival).
        env = self.env
        timeout = env.timeout
        next_interarrival = self.arrivals.next_interarrival
        build = self.factory.build
        stats = self.stats
        put = self._queue.put
        while self._running:
            yield timeout(next_interarrival())
            if not self._running:
                break
            txn = build(arrived_at=env.now)
            stats.arrived += 1
            put(txn)
            queued = self.queue_length
            if queued > stats.peak_queue_length:
                stats.peak_queue_length = queued

    def _worker_loop(self):
        while True:
            txn = yield self._queue.get()
            engine = _resolve_engine(self.engine)
            yield self.env.process(engine.execute(txn))
            self.stats.completed += 1
            self.trace.record(self.series, self.env.now, txn.latency)


class ClosedBenchmarkClient:
    """Closed-workload client: MPL virtual users, optional think time.

    Used only by the open-vs-closed ablation — the paper argues (via
    Schroeder et al.) that closed generators mask overload because
    "a new query arrives each time one completes".
    """

    def __init__(
        self,
        env: Environment,
        engine: DatabaseEngine,
        factory: TransactionFactory,
        mpl: int = DEFAULT_MPL,
        think_time: float = 0.0,
        trace: Optional[Trace] = None,
        series: str = "latency",
    ):
        if mpl <= 0:
            raise ValueError(f"mpl must be positive, got {mpl}")
        if think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {think_time}")
        self.env = env
        self.engine = engine
        self.factory = factory
        self.mpl = mpl
        self.think_time = think_time
        self.trace = trace if trace is not None else Trace()
        self.series = series
        self.stats = ClientStats()
        self._running = False

    @property
    def latencies(self):
        """The recorded latency series (seconds, indexed by finish time)."""
        return self.trace.series(self.series)

    def start(self) -> None:
        """Spawn the MPL virtual users."""
        if self._running:
            raise RuntimeError("client already started")
        self._running = True
        for _ in range(self.mpl):
            self.env.process(self._user_loop())

    def stop(self) -> None:
        """Stop users after their current transaction."""
        self._running = False

    def _user_loop(self):
        while self._running:
            txn = self.factory.build(arrived_at=self.env.now)
            self.stats.arrived += 1
            engine = _resolve_engine(self.engine)
            yield self.env.process(engine.execute(txn))
            self.stats.completed += 1
            self.trace.record(self.series, self.env.now, txn.latency)
            if self.think_time > 0:
                yield self.env.timeout(self.think_time)
