"""Operation mixes: which operations a transaction draws from.

The paper's primary benchmark selects each of a transaction's 10
operations "at random with 85% reads and 15% writes".  We represent a
mix as weights over :class:`~repro.db.OpType` and ship the paper's mix
plus the standard YCSB core workload mixes (A–F) for multi-tenant
scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from ..db.transactions import OpType

__all__ = [
    "OperationMix",
    "SLACKER_MIX",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "YCSB_E",
    "YCSB_F",
]


@dataclass(frozen=True)
class OperationMix:
    """A normalized weighting over operation types.

    >>> mix = OperationMix({OpType.SELECT: 85, OpType.UPDATE: 15})
    >>> round(mix.weight(OpType.SELECT), 2)
    0.85
    """

    weights: Mapping[OpType, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("mix must contain at least one operation type")
        total = sum(self.weights.values())
        if total <= 0:
            raise ValueError(f"mix weights must sum to > 0, got {total}")
        if any(w < 0 for w in self.weights.values()):
            raise ValueError("mix weights must be non-negative")
        # Store normalized weights (frozen dataclass: use object.__setattr__).
        normalized = {op: w / total for op, w in self.weights.items()}
        object.__setattr__(self, "weights", normalized)

    def weight(self, op_type: OpType) -> float:
        """Normalized probability of ``op_type`` in this mix."""
        return self.weights.get(op_type, 0.0)

    @property
    def write_fraction(self) -> float:
        """Total probability mass on write operations."""
        return sum(w for op, w in self.weights.items() if op.is_write)

    def sample(self, rng: random.Random) -> OpType:
        """Draw one operation type."""
        u = rng.random()
        acc = 0.0
        ops = list(self.weights.items())
        for op_type, weight in ops:
            acc += weight
            if u < acc:
                return op_type
        return ops[-1][0]  # guard against floating-point shortfall


#: The paper's primary workload: 85 % reads, 15 % writes (Section 5.1.2).
SLACKER_MIX = OperationMix({OpType.SELECT: 0.85, OpType.UPDATE: 0.15})

#: YCSB workload A — update heavy (50/50 read/update).
YCSB_A = OperationMix({OpType.SELECT: 0.50, OpType.UPDATE: 0.50})

#: YCSB workload B — read mostly (95/5).
YCSB_B = OperationMix({OpType.SELECT: 0.95, OpType.UPDATE: 0.05})

#: YCSB workload C — read only.
YCSB_C = OperationMix({OpType.SELECT: 1.0})

#: YCSB workload D — read latest (95 % read, 5 % insert).
YCSB_D = OperationMix({OpType.SELECT: 0.95, OpType.INSERT: 0.05})

#: YCSB workload E — short ranges (95 % scan, 5 % insert).
YCSB_E = OperationMix({OpType.SCAN: 0.95, OpType.INSERT: 0.05})

#: YCSB workload F — read-modify-write (50 % read, 50 % RMW as update).
YCSB_F = OperationMix({OpType.SELECT: 0.50, OpType.UPDATE: 0.50})
