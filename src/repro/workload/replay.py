"""Workload recording and replay.

For debugging and A/B comparisons ("run the exact same arrival pattern
against two configurations"), an arrival process can be *recorded* to a
trace of timestamps and *replayed* bit-exactly later — e.g. comparing a
fixed and a dynamic throttle against the identical burst pattern rather
than two different random draws.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from .generator import ArrivalProcess

__all__ = ["RecordingArrivals", "ReplayArrivals", "save_trace", "load_trace"]


class RecordingArrivals:
    """Wraps an arrival process and records every inter-arrival gap."""

    def __init__(self, inner: ArrivalProcess):
        self.inner = inner
        self.gaps: list[float] = []

    def next_interarrival(self) -> float:
        gap = self.inner.next_interarrival()
        self.gaps.append(gap)
        return gap

    # rate controls pass through, so Figure-13a-style surges still work
    def set_rate(self, rate: float) -> None:
        self.inner.set_rate(rate)

    def scale_rate(self, factor: float) -> None:
        self.inner.scale_rate(factor)

    @property
    def rate(self) -> float:
        return self.inner.rate


class ReplayArrivals:
    """Replays a recorded gap sequence, then optionally falls back.

    With no fallback, exhausting the recording raises — replay runs
    should not silently drift into fresh randomness.
    """

    def __init__(
        self,
        gaps: Iterable[float],
        fallback: Optional[ArrivalProcess] = None,
    ):
        self.gaps = list(gaps)
        if any(g < 0 for g in self.gaps):
            raise ValueError("recorded gaps must be non-negative")
        self.fallback = fallback
        self._index = 0

    @property
    def remaining(self) -> int:
        """Recorded gaps not yet replayed."""
        return len(self.gaps) - self._index

    def next_interarrival(self) -> float:
        if self._index < len(self.gaps):
            gap = self.gaps[self._index]
            self._index += 1
            return gap
        if self.fallback is not None:
            return self.fallback.next_interarrival()
        raise RuntimeError(
            f"replay exhausted after {len(self.gaps)} arrivals and no "
            "fallback was provided"
        )


def save_trace(path: str, gaps: Iterable[float]) -> None:
    """Persist a recorded gap sequence as JSON."""
    with open(path, "w") as f:
        json.dump({"format": "repro-arrivals-v1", "gaps": list(gaps)}, f)


def load_trace(path: str) -> list[float]:
    """Load a gap sequence saved by :func:`save_trace`."""
    with open(path) as f:
        payload = json.load(f)
    if payload.get("format") != "repro-arrivals-v1":
        raise ValueError(f"{path} is not a repro arrivals trace")
    return [float(g) for g in payload["gaps"]]
