"""Transaction factories and arrival processes.

Two halves of the benchmark's load model:

* :class:`TransactionFactory` builds the paper's 10-operation
  transactions from an operation mix and a key chooser.
* Arrival processes decide *when* transactions arrive.  The paper
  replaces YCSB's closed generator with an **open** one: "we instead
  generate queries according to a Poisson distribution ... By adjusting
  λ, we control the query arrival rate" (Section 5.1.2, citing
  Schroeder et al.'s open-vs-closed cautionary tale).  The open
  generator is what lets latency grow without bound when slack is
  exceeded (Figure 6); a closed generator would self-throttle.  Both
  are provided, and the ablation bench contrasts them.

:class:`PoissonArrivals` supports changing the rate mid-run, which the
Figure 13a experiment uses (+40 % arrival rate at t = 60 s).
"""

from __future__ import annotations

import itertools
import random
from math import log as _log
from typing import Optional, Protocol

from ..db.pages import TableLayout
from ..db.transactions import Operation, OpType, Transaction
from .distributions import KeyChooser
from .mix import OperationMix, SLACKER_MIX

__all__ = [
    "TransactionFactory",
    "ArrivalProcess",
    "BurstModulator",
    "PoissonArrivals",
    "MarkovModulatedArrivals",
    "FixedIntervalArrivals",
]

#: Paper default: "10-operation transactions".
DEFAULT_OPS_PER_TXN = 10

#: YCSB workload-E style scan lengths.
DEFAULT_MAX_SCAN_LENGTH = 100


class TransactionFactory:
    """Builds transactions from a mix and a key chooser."""

    def __init__(
        self,
        layout: TableLayout,
        chooser: KeyChooser,
        rng: random.Random,
        mix: OperationMix = SLACKER_MIX,
        ops_per_txn: int = DEFAULT_OPS_PER_TXN,
        max_scan_length: int = DEFAULT_MAX_SCAN_LENGTH,
    ):
        if ops_per_txn <= 0:
            raise ValueError(f"ops_per_txn must be positive, got {ops_per_txn}")
        if max_scan_length <= 0:
            raise ValueError(
                f"max_scan_length must be positive, got {max_scan_length}"
            )
        self.layout = layout
        self.chooser = chooser
        self.rng = rng
        self.mix = mix
        self.ops_per_txn = ops_per_txn
        self.max_scan_length = max_scan_length
        self._ids = itertools.count(1)

    def build_operation(self) -> Operation:
        """Draw one operation from the mix."""
        op_type = self.mix.sample(self.rng)
        key = self.chooser.choose() % self.layout.num_rows
        if op_type is OpType.SCAN:
            length = self.rng.randint(1, self.max_scan_length)
            length = min(length, self.layout.num_rows - key)
            return Operation(op_type, key, scan_length=max(1, length))
        return Operation(op_type, key)

    def build(self, arrived_at: Optional[float] = None) -> Transaction:
        """Build one transaction of ``ops_per_txn`` operations."""
        operations = [self.build_operation() for _ in range(self.ops_per_txn)]
        return Transaction(next(self._ids), operations, arrived_at=arrived_at)


class ArrivalProcess(Protocol):
    """Anything that can produce the next inter-arrival gap."""

    def next_interarrival(self) -> float:
        """Seconds until the next transaction arrives."""
        ...  # pragma: no cover


class PoissonArrivals:
    """Open, Poisson arrivals at ``rate`` transactions/second.

    The rate can be changed while the simulation runs; the change
    takes effect from the next draw.

    Draws are batched: ``expovariate(rate)`` is ``-log(1 - U) / rate``,
    whose numerator does not depend on the rate, so the generator
    pre-computes numerators a block at a time (amortizing the per-draw
    method-call overhead on the workload hot path) and divides by the
    *current* rate at use.  The underlying uniform stream is consumed
    in exactly the order and count of per-call ``expovariate``, and
    ``(-log(1-U)) / rate`` is bit-identical to CPython's
    ``-(log(1-U) / rate)``, so interarrival sequences are unchanged —
    under any mid-run ``set_rate`` schedule.  This requires the ``rng``
    to be exclusively this process's stream (true for the per-tenant
    ``<tag>:arrivals`` streams the harness builds); a shared stream
    would see its draws reordered.
    """

    #: Numerators pre-drawn per refill.
    BATCH = 256

    def __init__(self, rate: float, rng: random.Random):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = rate
        self.rng = rng
        self._batch: list[float] = []
        self._next = 0

    @property
    def rate(self) -> float:
        """Current mean arrival rate, transactions/second."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the arrival rate (e.g. a +40 % workload surge)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = rate

    def scale_rate(self, factor: float) -> None:
        """Multiply the current rate by ``factor``."""
        self.set_rate(self._rate * factor)

    def next_interarrival(self) -> float:
        i = self._next
        if i >= len(self._batch):
            uniform = self.rng.random
            self._batch = [-_log(1.0 - uniform()) for _ in range(self.BATCH)]
            i = 0
        self._next = i + 1
        return self._batch[i] / self._rate


class BurstModulator:
    """A two-state (normal/burst) Markov chain advanced in simulated time.

    One modulator can drive several arrival processes: server-level
    burst causes (flash crowds hitting the whole application tier,
    checkpoint storms on the shared disk) are correlated across the
    tenants of one server, so multi-tenant experiments share a single
    modulator by default.
    """

    def __init__(
        self,
        env,
        rng: random.Random,
        mean_normal: float = 20.0,
        mean_burst: float = 5.0,
    ):
        if mean_normal <= 0 or mean_burst <= 0:
            raise ValueError("state dwell times must be positive")
        self.env = env
        self.rng = rng
        self.mean_normal = mean_normal
        self.mean_burst = mean_burst
        self._bursting = False
        self.transitions = 0
        env.process(self._run())

    @property
    def bursting(self) -> bool:
        """True while in the burst state."""
        return self._bursting

    def _run(self):
        while True:
            dwell = self.mean_burst if self._bursting else self.mean_normal
            yield self.env.timeout(self.rng.expovariate(1.0 / dwell))
            self._bursting = not self._bursting
            self.transitions += 1


class MarkovModulatedArrivals:
    """Bursty open arrivals: a two-state Markov-modulated Poisson process.

    Real tenant workloads "are rarely static, where there may be both
    long-term shifts and short-term bursts" (Section 4.1) — flash
    crowds, diurnal shifts, neighbours' activity.  This process
    alternates between a *normal* state at ``base_rate`` and a *burst*
    state at ``base_rate * burst_factor``, with exponentially
    distributed dwell times.  The bursts are what a fixed throttle
    cannot absorb and the PID controller exploits (slowing migration
    during bursts, speeding up in the lulls between them).

    ``set_rate``/``scale_rate`` adjust the base rate, preserving the
    burst structure (used by the Figure 13a +40 % surge).  Pass a
    shared :class:`BurstModulator` to correlate bursts across tenants.
    """

    def __init__(
        self,
        env,
        base_rate: float,
        rng: random.Random,
        burst_factor: float = 2.5,
        mean_normal: float = 20.0,
        mean_burst: float = 5.0,
        modulator: Optional[BurstModulator] = None,
    ):
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {base_rate}")
        if burst_factor < 1:
            raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
        self.env = env
        self.rng = rng
        self.burst_factor = burst_factor
        self._base_rate = base_rate
        self.modulator = modulator or BurstModulator(
            env, rng, mean_normal=mean_normal, mean_burst=mean_burst
        )

    @property
    def rate(self) -> float:
        """Current instantaneous arrival rate, transactions/second."""
        if self.modulator.bursting:
            return self._base_rate * self.burst_factor
        return self._base_rate

    @property
    def base_rate(self) -> float:
        """The normal-state arrival rate."""
        return self._base_rate

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate across both states."""
        normal = self.modulator.mean_normal
        burst = self.modulator.mean_burst
        weight = (normal + burst * self.burst_factor) / (normal + burst)
        return self._base_rate * weight

    @property
    def bursting(self) -> bool:
        """True while the process is in its burst state."""
        return self.modulator.bursting

    def set_rate(self, rate: float) -> None:
        """Change the base (normal-state) rate."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._base_rate = rate

    def scale_rate(self, factor: float) -> None:
        """Multiply the base rate by ``factor``."""
        self.set_rate(self._base_rate * factor)

    def next_interarrival(self) -> float:
        return self.rng.expovariate(self.rate)


class FixedIntervalArrivals:
    """Deterministic arrivals every ``1/rate`` seconds (for tests)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = rate

    @property
    def rate(self) -> float:
        return self._rate

    def set_rate(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = rate

    def next_interarrival(self) -> float:
        return 1.0 / self._rate
