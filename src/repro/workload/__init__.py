"""YCSB-style transactional benchmark (the paper's modified YCSB).

Key distributions, operation mixes, transaction factories, open
(Poisson) and closed arrival processes, and MPL-limited clients.
"""

from .client import DEFAULT_MPL, BenchmarkClient, ClientStats, ClosedBenchmarkClient
from .distributions import (
    HotspotChooser,
    KeyChooser,
    LatestChooser,
    UniformChooser,
    ZipfianChooser,
)
from .generator import (
    DEFAULT_OPS_PER_TXN,
    ArrivalProcess,
    BurstModulator,
    FixedIntervalArrivals,
    MarkovModulatedArrivals,
    PoissonArrivals,
    TransactionFactory,
)
from .replay import (
    RecordingArrivals,
    ReplayArrivals,
    load_trace,
    save_trace,
)
from .mix import (
    SLACKER_MIX,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_E,
    YCSB_F,
    OperationMix,
)

__all__ = [
    "ArrivalProcess",
    "BenchmarkClient",
    "BurstModulator",
    "ClientStats",
    "ClosedBenchmarkClient",
    "DEFAULT_MPL",
    "DEFAULT_OPS_PER_TXN",
    "FixedIntervalArrivals",
    "HotspotChooser",
    "KeyChooser",
    "MarkovModulatedArrivals",
    "LatestChooser",
    "OperationMix",
    "PoissonArrivals",
    "RecordingArrivals",
    "ReplayArrivals",
    "SLACKER_MIX",
    "TransactionFactory",
    "UniformChooser",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "YCSB_E",
    "YCSB_F",
    "ZipfianChooser",
    "load_trace",
    "save_trace",
]
