"""Key-choice distributions for the YCSB-style benchmark.

YCSB selects target records via pluggable distributions; the paper's
primary workload applies operations "to random table rows" (uniform).
We implement the standard YCSB family so multi-tenant experiments can
mix access patterns:

* :class:`UniformChooser` — every row equally likely (paper default);
* :class:`ZipfianChooser` — Gray et al.'s zipfian generator with the
  YCSB hash-scramble so hot keys are spread across the keyspace;
* :class:`LatestChooser` — zipfian over recency (hot = newest);
* :class:`HotspotChooser` — a hot set absorbing a fixed fraction of
  accesses.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "LatestChooser",
    "HotspotChooser",
]

#: Standard YCSB zipfian skew constant.
ZIPFIAN_CONSTANT = 0.99

#: Knuth-style 64-bit FNV prime/offset used by YCSB's key scrambling.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1  # slackerlint: disable=SLK006 -- 64-bit hash mask, not a byte size


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 bytes (YCSB's key scrambler)."""
    h = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h ^= octet
        h = (h * _FNV_PRIME) & _MASK
    return h


class KeyChooser(Protocol):
    """Anything that can pick a row key in [0, num_keys)."""

    def choose(self) -> int:
        """Return the next key."""
        ...  # pragma: no cover


class UniformChooser:
    """Uniformly random keys — the paper's primary workload."""

    def __init__(self, num_keys: int, rng: random.Random):
        if num_keys <= 0:
            raise ValueError(f"num_keys must be positive, got {num_keys}")
        self.num_keys = num_keys
        self.rng = rng

    def choose(self) -> int:
        return self.rng.randrange(self.num_keys)


class ZipfianChooser:
    """YCSB's zipfian generator (Gray et al., "Quickly generating
    billion-record synthetic databases") with hash scrambling.

    Popularity rank follows a zipfian law; ranks are then scattered
    over the keyspace with FNV so that hot keys do not cluster in
    adjacent pages.
    """

    def __init__(
        self,
        num_keys: int,
        rng: random.Random,
        theta: float = ZIPFIAN_CONSTANT,
        scramble: bool = True,
    ):
        if num_keys <= 0:
            raise ValueError(f"num_keys must be positive, got {num_keys}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.num_keys = num_keys
        self.rng = rng
        self.theta = theta
        self.scramble = scramble
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(num_keys, theta)
        self._zeta2 = self._zeta(2, theta)
        denominator = 1 - self._zeta2 / self._zetan
        if denominator == 0:  # degenerate keyspace (num_keys <= 2)
            self._eta = 1.0
        else:
            self._eta = (1 - (2.0 / num_keys) ** (1 - theta)) / denominator

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i**theta) for i in range(1, n + 1))

    def _next_rank(self) -> int:
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.num_keys * (self._eta * u - self._eta + 1) ** self._alpha)

    def choose(self) -> int:
        rank = min(self._next_rank(), self.num_keys - 1)
        if not self.scramble:
            return rank
        return fnv1a_64(rank) % self.num_keys


class LatestChooser:
    """Zipfian over recency: key N-1 is hottest (YCSB workload D).

    ``advance()`` grows the keyspace as inserts land.
    """

    def __init__(self, num_keys: int, rng: random.Random):
        self.num_keys = num_keys
        self._zipf = ZipfianChooser(num_keys, rng, scramble=False)

    def advance(self, new_keys: int = 1) -> None:
        """Grow the keyspace (new hottest keys) by ``new_keys``."""
        if new_keys < 0:
            raise ValueError(f"new_keys must be >= 0, got {new_keys}")
        self.num_keys += new_keys

    def choose(self) -> int:
        rank = self._zipf.choose()
        return max(0, self.num_keys - 1 - (rank % self.num_keys))


class HotspotChooser:
    """A hot fraction of the keyspace gets a fixed fraction of accesses."""

    def __init__(
        self,
        num_keys: int,
        rng: random.Random,
        hot_fraction: float = 0.2,
        hot_access_fraction: float = 0.8,
    ):
        if num_keys <= 0:
            raise ValueError(f"num_keys must be positive, got {num_keys}")
        if not 0 < hot_fraction < 1:
            raise ValueError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
        if not 0 < hot_access_fraction < 1:
            raise ValueError(
                f"hot_access_fraction must be in (0, 1), got {hot_access_fraction}"
            )
        self.num_keys = num_keys
        self.rng = rng
        self.hot_keys = max(1, math.floor(num_keys * hot_fraction))
        self.hot_access_fraction = hot_access_fraction

    def choose(self) -> int:
        if self.rng.random() < self.hot_access_fraction:
            return self.rng.randrange(self.hot_keys)
        if self.hot_keys >= self.num_keys:
            return self.rng.randrange(self.num_keys)
        return self.rng.randrange(self.hot_keys, self.num_keys)
