"""Per-run observability reports.

A :class:`RunReport` is the portable end-of-run artifact: the metrics
snapshot, the closed spans, the path of the JSONL trace (if one was
written), and a fingerprint of the (config, spec) pair that produced
it — enough to tell two reports apart and to line a report up with the
sweep point that generated it.

Reports are plain data (dicts, tuples, floats, strings), so they
pickle across the parallel runner's process boundary and serialize to
JSON without custom encoders.

The fingerprint helper intentionally does **not** reuse
:func:`repro.parallel.cache.point_key`: importing ``repro.parallel``
from here would close an import cycle (``parallel`` → runner →
experiment harness → ``obs``), and the report only needs a stable
identity, not cache semantics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["RunReport", "config_fingerprint"]


def _plain(value: Any) -> Any:
    """Recursively reduce configs/specs to JSON-encodable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(config: Any = None, spec: Any = None) -> str:
    """Stable short hash of an experiment's (config, spec) pair."""
    payload = json.dumps(_plain({"config": config, "spec": spec}), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunReport:
    """One run's observability snapshot, ready to serialize."""

    #: Short hash of the (config, spec) pair (see :func:`config_fingerprint`).
    config_fingerprint: str
    #: Simulation time when the report was taken, seconds.
    sim_end: float
    #: ``MetricsRegistry.snapshot()`` output.
    metrics: dict = field(default_factory=dict)
    #: Closed spans/events, in closing order (JSON-ready dicts).
    spans: tuple = ()
    #: Path of the JSONL trace, when one was written.
    trace_path: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "config_fingerprint": self.config_fingerprint,
            "sim_end": self.sim_end,
            "metrics": self.metrics,
            "spans": list(self.spans),
            "trace_path": self.trace_path,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunReport":
        return cls(
            config_fingerprint=data["config_fingerprint"],
            sim_end=data["sim_end"],
            metrics=data.get("metrics", {}),
            spans=tuple(data.get("spans", ())),
            trace_path=data.get("trace_path"),
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def read(cls, path: str) -> "RunReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    # -- convenience accessors -------------------------------------------

    def counter(self, name: str) -> int:
        """A counter's value, 0 if never registered."""
        return self.metrics.get("counters", {}).get(name, 0)

    def histogram(self, name: str) -> Optional[dict]:
        """A histogram summary dict, or None if never registered."""
        return self.metrics.get("histograms", {}).get(name)

    def spans_named(self, name: str) -> list[dict]:
        """All closed spans/events with the given registered name."""
        return [s for s in self.spans if s.get("name") == name]
