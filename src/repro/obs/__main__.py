"""Entry point: ``python -m repro.obs summarize <reports...>``."""

import sys

from .cli import main

sys.exit(main())
