"""Observability layer: deterministic metrics + sim-time span tracing.

See ``docs/OBSERVABILITY.md``.  The public surface:

* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — wall-clock-free instruments;
* :class:`Tracer` — sim-time spans and events, JSONL output;
* :class:`Observability` — the pre-bound runtime the hot layers hook
  (``attach(cluster)``), zero-cost when absent;
* :class:`RunReport` — the portable per-run artifact, summarized by
  ``python -m repro.obs summarize``.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import RunReport, config_fingerprint
from .runtime import Observability
from .tracer import Span, Tracer, read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RunReport",
    "Span",
    "Tracer",
    "config_fingerprint",
    "read_jsonl",
]
