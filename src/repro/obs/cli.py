"""``python -m repro.obs summarize`` — render RunReports for humans.

Accepts report JSON files (written by :meth:`RunReport.write`) and/or
directories, in which every ``*.report.json`` file is summarized.  The
summary surfaces what the instrumentation exists for: per-phase
migration spans, handover freeze durations, controller-step metrics,
transport retry/drop counters, fault activations, and resource
utilization.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import Optional

from . import names
from .report import RunReport

__all__ = ["summarize_text", "main"]


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.4g}{unit}"


def _histogram_line(label: str, summary: Optional[dict], unit: str = "") -> str:
    if not summary or not summary.get("count"):
        return f"  {label:<24} (no samples)"
    count = summary["count"]
    mean = summary["sum"] / count
    return (
        f"  {label:<24} n={count:<6} mean={_fmt(mean, unit)} "
        f"min={_fmt(summary.get('min'), unit)} max={_fmt(summary.get('max'), unit)}"
    )


def _phase_lines(report: RunReport) -> list[str]:
    groups: dict[str, list[float]] = {}
    for span in report.spans_named(names.MIGRATION_PHASE_SPAN):
        phase = span.get("attrs", {}).get("phase", "?")
        groups.setdefault(phase, []).append(span["end"] - span["start"])
    lines = []
    for phase in sorted(groups):
        durations = groups[phase]
        total = sum(durations)
        lines.append(
            f"  phase {phase:<12} n={len(durations):<4} total={_fmt(total, 's')} "
            f"mean={_fmt(total / len(durations), 's')}"
        )
    return lines


def summarize_text(report: RunReport, label: str = "") -> str:
    """Human-readable multi-section summary of one report."""
    lines = [
        f"RunReport {label or report.config_fingerprint} "
        f"(config={report.config_fingerprint}, sim_end={report.sim_end:.3f}s, "
        f"{len(report.spans)} spans"
        + (f", trace={report.trace_path}" if report.trace_path else "")
        + ")"
    ]

    lines.append("migration:")
    phase_lines = _phase_lines(report)
    lines.extend(phase_lines or ["  (no migration phases recorded)"])
    lines.append(
        f"  transitions={report.counter(names.MIGRATION_PHASES_TOTAL)} "
        f"aborts={report.counter(names.MIGRATION_ABORTS_TOTAL)}"
    )
    lines.append(
        _histogram_line(
            "handover freeze", report.histogram(names.MIGRATION_FREEZE_SECONDS), "s"
        )
    )

    lines.append("controller:")
    lines.append(f"  steps={report.counter(names.CONTROLLER_STEPS_TOTAL)}")
    lines.append(
        _histogram_line("error", report.histogram(names.CONTROLLER_ERROR_MS), "ms")
    )
    lines.append(
        _histogram_line("output", report.histogram(names.CONTROLLER_OUTPUT_PCT), "%")
    )

    lines.append("transport:")
    lines.append(
        "  sends={} delivered={} retries={} timeouts={} drops={} failures={}".format(
            report.counter(names.TRANSPORT_SENDS_TOTAL),
            report.counter(names.TRANSPORT_DELIVERED_TOTAL),
            report.counter(names.TRANSPORT_RETRIES_TOTAL),
            report.counter(names.TRANSPORT_TIMEOUTS_TOTAL),
            report.counter(names.TRANSPORT_DROPS_TOTAL),
            report.counter(names.TRANSPORT_FAILURES_TOTAL),
        )
    )

    activations = report.counter(names.FAULT_ACTIVATIONS_TOTAL)
    if activations:
        lines.append("faults:")
        lines.append(f"  activations={activations}")
        for event in report.spans_named(names.FAULT_EVENT):
            attrs = event.get("attrs", {})
            lines.append(
                f"  t={event['start']:.3f}s {attrs.get('kind', '?')} "
                f"on {attrs.get('node', '?')}"
            )

    lines.append("resources:")
    lines.append(
        _histogram_line(
            "disk utilization", report.histogram(names.DISK_UTILIZATION_DIST)
        )
    )
    lines.append(
        _histogram_line(
            "nic utilization", report.histogram(names.NIC_UTILIZATION_DIST)
        )
    )
    return "\n".join(lines)


def _collect(paths: list[str]) -> list[tuple[str, Path]]:
    found: list[tuple[str, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.glob("*.report.json")):
                found.append((child.stem.replace(".report", ""), child))
        else:
            found.append((path.stem.replace(".report", ""), path))
    return found


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summarize = sub.add_parser(
        "summarize", help="summarize RunReport JSON files or directories"
    )
    summarize.add_argument(
        "paths", nargs="+", help="report files or directories of *.report.json"
    )
    args = parser.parse_args(argv)

    targets = _collect(args.paths)
    if not targets:
        print("no reports found", file=sys.stderr)
        return 2
    failures = 0
    for index, (label, path) in enumerate(targets):
        if index:
            print()
        try:
            report = RunReport.read(str(path))
        except (OSError, ValueError, KeyError) as exc:
            print(f"{path}: unreadable report ({exc})", file=sys.stderr)
            failures += 1
            continue
        print(summarize_text(report, label=label))
    return 2 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
