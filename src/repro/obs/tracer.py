"""Sim-time span tracing with structured JSONL output.

A :class:`Tracer` records *spans* — named intervals of simulation time
with small attribute dicts — and zero-length *events*.  Timestamps are
``env.now`` only; the tracer never touches the wall clock, so traces
from bit-identical runs are byte-identical.

Span names must be module-level constants (lint rule SLK010, see
:mod:`repro.obs.names`); per-span variation goes in the attributes.

The JSONL schema is one object per line, keys sorted::

    {"attrs": {...}, "end": 12.5, "name": "migration.phase", "start": 3.0}

Events are spans whose ``end`` equals ``start``.  Lines appear in span
*closing* order (the order the simulation finished them), which is
deterministic for a deterministic run.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

__all__ = ["Span", "Tracer", "read_jsonl"]


class Span:
    """One open interval; call :meth:`end` exactly once to record it."""

    __slots__ = ("name", "start", "attrs", "_tracer", "_closed")

    def __init__(self, tracer: "Tracer", name: str, start: float, attrs: dict):
        self.name = name
        self.start = start
        self.attrs = attrs
        self._tracer = tracer
        self._closed = False

    def end(self, **extra_attrs) -> None:
        """Close the span at the current simulation time.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if extra_attrs:
            self.attrs.update(extra_attrs)
        self._tracer._close(self)


class Tracer:
    """Collects spans and events against one simulation clock."""

    def __init__(self, env):
        self.env = env
        #: Closed spans as JSON-ready dicts, in closing order.
        self.records: list[dict] = []
        self._open: list[Span] = []

    def begin(self, name: str, **attrs) -> Span:
        """Open a span at ``env.now``; the caller must ``end()`` it."""
        span = Span(self, name, self.env.now, attrs)
        self._open.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """Context manager: span covering the ``with`` block's sim time."""
        handle = self.begin(name, **attrs)
        try:
            yield handle
        finally:
            handle.end()

    def event(self, name: str, **attrs) -> None:
        """Record a zero-length span at ``env.now``."""
        now = self.env.now
        self.records.append(
            {"name": name, "start": now, "end": now, "attrs": attrs}
        )

    def _close(self, span: Span) -> None:
        try:
            self._open.remove(span)
        except ValueError:
            pass
        self.records.append(
            {
                "name": span.name,
                "start": span.start,
                "end": self.env.now,
                "attrs": span.attrs,
            }
        )

    def finish(self) -> None:
        """Close any spans still open (e.g. a wedged migration's phase)."""
        for span in list(self._open):
            span.end(unfinished=True)

    def to_dicts(self) -> list[dict]:
        """All closed records (shared list; treat as read-only)."""
        return self.records

    def write_jsonl(self, path: str) -> None:
        """Write one sorted-keys JSON object per closed record."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str) -> list[dict]:
    """Load a trace written by :meth:`Tracer.write_jsonl`."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
