"""Deterministic in-simulation metrics: counters, gauges, histograms.

The registry is the numeric half of the observability layer (the span
tracer is the temporal half).  Three rules keep it safe to leave
enabled in any experiment:

* **No wall clock.**  Instruments never read host time; anything
  time-shaped comes from the caller as simulation seconds.
* **Deterministic snapshots.**  ``snapshot()`` sorts by instrument
  name, so two bit-identical runs serialize byte-identical reports.
* **Fixed buckets.**  Histograms use immutable upper-bound buckets
  chosen at registration (see :mod:`repro.obs.names`), never adaptive
  ones — adaptive buckets would make reports incomparable across runs.

Hot paths hold direct references to pre-registered instruments (the
:class:`~repro.obs.runtime.Observability` object binds them once), so
an instrumented increment is one attribute call, and a disabled run
pays only an ``is not None`` check — the same discipline as the fault
injector's bus hook.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summaries.

    ``buckets`` are inclusive upper bounds in strictly increasing
    order; one implicit overflow bucket catches everything above the
    last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name}: need at least one bucket")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: buckets must strictly increase")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def summary(self) -> dict:
        """JSON-ready summary (deterministic; no wall-clock fields)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": [
                [bound, count] for bound, count in zip(self.bounds, self.counts)
            ]
            + [["+Inf", self.counts[-1]]],
        }


class MetricsRegistry:
    """Named instruments with get-or-create registration.

    Per-entity instruments (one gauge per node, say) pass the entity as
    ``suffix=`` — the registered *name* stays a module-level constant
    (lint rule SLK010) and the full instrument name becomes
    ``"<name>:<suffix>"``.
    """

    def __init__(self):
        self._instruments: dict[str, object] = {}

    @staticmethod
    def _full_name(name: str, suffix: Optional[str]) -> str:
        return name if suffix is None else f"{name}:{suffix}"

    def _get(self, cls, full_name: str, *args):
        instrument = self._instruments.get(full_name)
        if instrument is None:
            instrument = cls(full_name, *args)
            self._instruments[full_name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"{full_name!r} is already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, suffix: Optional[str] = None) -> Counter:
        return self._get(Counter, self._full_name(name, suffix))

    def gauge(self, name: str, suffix: Optional[str] = None) -> Gauge:
        return self._get(Gauge, self._full_name(name, suffix))

    def histogram(
        self, name: str, buckets: Sequence[float], suffix: Optional[str] = None
    ) -> Histogram:
        return self._get(Histogram, self._full_name(name, suffix), buckets)

    def snapshot(self) -> dict:
        """All instruments as plain JSON-ready data, sorted by name."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for full_name in sorted(self._instruments):
            instrument = self._instruments[full_name]
            if isinstance(instrument, Counter):
                counters[full_name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[full_name] = instrument.value
            else:
                histograms[full_name] = instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
