"""The observability runtime: one object, pre-bound instruments.

:class:`Observability` is the single handle the instrumented layers
see.  It follows the fault injector's zero-cost discipline exactly:

* every hookable object (bus, node, migration, controller, injector)
  carries an ``obs`` attribute that defaults to ``None``;
* hot paths guard with ``if obs is not None`` — a disabled run pays
  one attribute read and a ``None`` comparison, nothing else;
* when enabled, each hook touches *pre-bound* instruments (bound once
  at construction), so no name lookup or string formatting happens on
  the hot path — lint rule SLK010 enforces that metric/span names at
  call sites are module-level constants from :mod:`repro.obs.names`.

Observation never perturbs the simulation: the resource sampler only
*reads* accumulated busy-time counters (interval-differenced, like
heartbeats and the placement monitor), draws no random numbers, and
acquires no resources — so a run with observability enabled is
bit-identical to the same run without it.
"""

from __future__ import annotations

from typing import Optional

from . import names
from ..simulation import PeriodicTicker
from .metrics import MetricsRegistry
from .report import RunReport, config_fingerprint
from .tracer import Tracer

__all__ = ["Observability"]

#: Migration phases after which no further phase span opens.
_TERMINAL_PHASES = frozenset({"complete", "aborted"})


class Observability:
    """Metrics registry + tracer + the hooks the hot layers call."""

    def __init__(
        self,
        env,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        sample_interval: float = 1.0,
    ):
        if sample_interval < 0:
            raise ValueError(
                f"sample_interval must be >= 0, got {sample_interval}"
            )
        self.env = env
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(env)
        #: Resource sampling period, seconds; 0 disables the sampler.
        self.sample_interval = sample_interval

        # Pre-bound instruments: hooks below touch these directly.
        self.migration_phases = self.registry.counter(names.MIGRATION_PHASES_TOTAL)
        self.migration_aborts = self.registry.counter(names.MIGRATION_ABORTS_TOTAL)
        self.migration_freeze_seconds = self.registry.histogram(
            names.MIGRATION_FREEZE_SECONDS, buckets=names.FREEZE_SECONDS_BUCKETS
        )
        self.controller_steps = self.registry.counter(names.CONTROLLER_STEPS_TOTAL)
        self.controller_error_ms = self.registry.histogram(
            names.CONTROLLER_ERROR_MS, buckets=names.ERROR_MS_BUCKETS
        )
        self.controller_output_pct = self.registry.histogram(
            names.CONTROLLER_OUTPUT_PCT, buckets=names.PERCENT_BUCKETS
        )
        self.controller_rate = self.registry.gauge(names.CONTROLLER_RATE_BPS)
        self.transport_sends = self.registry.counter(names.TRANSPORT_SENDS_TOTAL)
        self.transport_delivered = self.registry.counter(
            names.TRANSPORT_DELIVERED_TOTAL
        )
        self.transport_retries = self.registry.counter(names.TRANSPORT_RETRIES_TOTAL)
        self.transport_timeouts = self.registry.counter(
            names.TRANSPORT_TIMEOUTS_TOTAL
        )
        self.transport_drops = self.registry.counter(names.TRANSPORT_DROPS_TOTAL)
        self.transport_failures = self.registry.counter(
            names.TRANSPORT_FAILURES_TOTAL
        )
        self.fault_activations = self.registry.counter(names.FAULT_ACTIVATIONS_TOTAL)
        self.fleet_waves = self.registry.counter(names.FLEET_WAVES_TOTAL)
        self.fleet_wave_size = self.registry.histogram(
            names.FLEET_WAVE_SIZE, buckets=names.WAVE_SIZE_BUCKETS
        )
        self.fleet_migrations = self.registry.counter(names.FLEET_MIGRATIONS_TOTAL)
        self.fleet_aborts = self.registry.counter(names.FLEET_ABORTS_TOTAL)
        self.fleet_migration_seconds = self.registry.histogram(
            names.FLEET_MIGRATION_SECONDS, buckets=names.MIGRATION_SECONDS_BUCKETS
        )
        self.fleet_p99_latency = self.registry.gauge(
            names.FLEET_P99_LATENCY_SECONDS
        )
        self.fleet_migrations_per_hour = self.registry.gauge(
            names.FLEET_MIGRATIONS_PER_HOUR
        )
        self.disk_utilization_dist = self.registry.histogram(
            names.DISK_UTILIZATION_DIST, buckets=names.UTILIZATION_BUCKETS
        )
        self.nic_utilization_dist = self.registry.histogram(
            names.NIC_UTILIZATION_DIST, buckets=names.UTILIZATION_BUCKETS
        )

        #: id(migration) -> currently-open phase span.
        self._phase_spans: dict[int, object] = {}
        self._sampler = None

    # -- wiring ----------------------------------------------------------

    def attach(self, cluster) -> "Observability":
        """Hook this runtime into a cluster; returns self.

        Sets the ``obs`` attribute on the bus, every node, and (if one
        is attached) the fault injector, and starts the read-only
        resource sampler.  Safe to call before any workload starts.
        """
        cluster.bus.obs = self
        for node in cluster.nodes.values():
            node.obs = self
        faults = getattr(cluster.bus, "faults", None)
        if faults is not None:
            faults.obs = self
        if self.sample_interval > 0 and self._sampler is None:
            self._sampler = self.env.process(self._sample_resources(cluster))
        return self

    # -- migration hooks -------------------------------------------------

    def on_migration_phase(self, migration, phase) -> None:
        """Called by :meth:`LiveMigration._transition` on every edge."""
        self.migration_phases.inc()
        key = id(migration)
        open_span = self._phase_spans.pop(key, None)
        if open_span is not None:
            open_span.end()
        value = phase.value
        if value == "aborted":
            self.migration_aborts.inc()
        if value not in _TERMINAL_PHASES:
            self._phase_spans[key] = self.tracer.begin(
                names.MIGRATION_PHASE_SPAN,
                phase=value,
                tenant=migration.source.name,
            )

    def on_migration_freeze(self, migration, seconds: float) -> None:
        """Called once per handover with the freeze (downtime) length."""
        self.migration_freeze_seconds.observe(seconds)

    # -- controller hooks ------------------------------------------------

    def on_controller_step(
        self, error_ms: float, output_pct: float, rate: float
    ) -> None:
        """Called by the dynamic throttle loop once per applied step."""
        self.controller_steps.inc()
        self.controller_error_ms.observe(error_ms)
        self.controller_output_pct.observe(output_pct)
        self.controller_rate.set(rate)

    # -- fleet hooks -----------------------------------------------------

    def on_wave(self, size: int) -> None:
        """Called by the wave executor when a wave launches migrations."""
        self.fleet_waves.inc()
        self.fleet_wave_size.observe(float(size))

    def on_fleet_migration(
        self, aborted: bool, seconds: Optional[float] = None
    ) -> None:
        """Called by the wave executor once per finished migration."""
        if aborted:
            self.fleet_aborts.inc()
            return
        self.fleet_migrations.inc()
        if seconds is not None:
            self.fleet_migration_seconds.observe(seconds)

    def on_drain_complete(self, node: str, seconds: float) -> None:
        """Called by the placement manager when a node fully drains."""
        self.registry.gauge(
            names.FLEET_TIME_TO_DRAIN_SECONDS, suffix=node
        ).set(seconds)

    def set_fleet_slos(
        self,
        p99_latency_seconds: Optional[float] = None,
        migrations_per_hour: Optional[float] = None,
    ) -> None:
        """Record end-of-run fleet SLO values into the report metrics."""
        if p99_latency_seconds is not None:
            self.fleet_p99_latency.set(p99_latency_seconds)
        if migrations_per_hour is not None:
            self.fleet_migrations_per_hour.set(migrations_per_hour)

    # -- fault hooks -----------------------------------------------------

    def on_scheduled_fault(self, fault) -> None:
        """Called by the injector when a scheduled fault fires."""
        self.fault_activations.inc()
        self.tracer.event(
            names.FAULT_EVENT,
            kind=fault.kind,
            node=fault.node,
            duration=fault.duration,
        )

    # -- resource sampling -----------------------------------------------

    def _sample_resources(self, cluster):
        """Process: interval-difference disk/NIC busy time per server.

        Pure reads of the accumulated ``stats.busy_time`` counters —
        the sampler cannot change any trajectory.
        """
        server_names = sorted(cluster.servers)
        disk_gauges = {}
        nic_gauges = {}
        last: dict[str, tuple[float, float]] = {}
        for name in server_names:
            disk_gauges[name] = self.registry.gauge(
                names.DISK_UTILIZATION, suffix=name
            )
            nic_gauges[name] = self.registry.gauge(
                names.NIC_UTILIZATION, suffix=name
            )
            last[name] = cluster.servers[name].io_snapshot()
        last_time = self.env.now
        # Every tick reads and records, so no tick can be elided; the
        # ticker keeps the sample grid on the coalesced-timer API.
        ticker = PeriodicTicker(self.env, self.sample_interval)
        while True:
            yield ticker.tick()
            now = self.env.now
            span = now - last_time
            last_time = now
            if span <= 0:
                continue
            for name in server_names:
                disk_busy, nic_busy = cluster.servers[name].io_snapshot()
                prev_disk, prev_nic = last[name]
                last[name] = (disk_busy, nic_busy)
                disk_util = min(1.0, max(0.0, (disk_busy - prev_disk) / span))
                # Two full-duplex directions share the denominator.
                nic_util = min(1.0, max(0.0, (nic_busy - prev_nic) / (2.0 * span)))
                disk_gauges[name].set(disk_util)
                nic_gauges[name].set(nic_util)
                self.disk_utilization_dist.observe(disk_util)
                self.nic_utilization_dist.observe(nic_util)

    # -- reporting -------------------------------------------------------

    def finish(self) -> None:
        """Close dangling spans (wedged migrations) at the current time."""
        self.tracer.finish()

    def run_report(
        self,
        config=None,
        spec=None,
        trace_path: Optional[str] = None,
    ) -> RunReport:
        """Snapshot everything into a portable :class:`RunReport`."""
        self.finish()
        return RunReport(
            config_fingerprint=config_fingerprint(config, spec),
            sim_end=self.env.now,
            metrics=self.registry.snapshot(),
            spans=tuple(self.tracer.to_dicts()),
            trace_path=trace_path,
        )
